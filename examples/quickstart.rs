//! Quickstart: the paper's introductory example (§1).
//!
//! Two graduate students, Tony and Jan, alternate meetings with their common
//! advisor. The least fixpoint of the scheduling rule is infinite — it
//! contains `Meets(n, …)` for every day `n` — yet it is finitely represented
//! by a relational specification with two deep clusters (even days, odd
//! days).
//!
//! Run with: `cargo run --example quickstart`

use fundb_core::{analysis, EqSpec, QuotientModel};
use fundb_parser::Workspace;

fn main() {
    let mut ws = Workspace::new();
    ws.parse(
        "% The meetings of graduate students with their common advisor:
         Meets(t, x), Next(x, y) -> Meets(t+1, y).

         Meets(0, Tony).
         Next(Tony, Jan).
         Next(Jan, Tony).",
    )
    .expect("the program is well-formed");

    // Graph specification (Algorithm Q, Figure 1).
    let spec = ws.graph_spec().expect("domain-independent program");
    println!("=== Graph specification (B, F) ===");
    print!("{}", spec.render(&ws.interner));
    println!(
        "clusters: {} (of which {} deep), primary database: {} tuples",
        spec.cluster_count(),
        spec.active_count,
        spec.primary_size()
    );

    // The fixpoint is infinite — the [RBS87] baseline would reject the query.
    let report = analysis::analyze(&spec);
    println!(
        "\nleast fixpoint finite? {} (witness cluster: {:?})",
        report.finite, report.infinite_witness
    );

    // Yes-no queries over arbitrarily distant days, via the Link walk.
    println!("\n=== Yes-no queries ===");
    for fact in [
        "Meets(0, Tony)",
        "Meets(1, Jan)",
        "Meets(2, Tony)",
        "Meets(1000000, Tony)",
        "Meets(1000001, Tony)",
    ] {
        println!("{fact:>22}  ->  {}", ws.holds(&spec, fact).unwrap());
    }

    // Equational specification (§3.5): same answers via congruence closure.
    let mut eq = EqSpec::from_graph(&spec);
    println!("\n=== Equational specification (B, R) ===");
    for line in eq.render_equations(&ws.interner) {
        println!("R: {line}");
    }
    println!(
        "Meets(40, Tony) via congruence closure: {}",
        ws.holds_eq(&mut eq, "Meets(40, Tony)").unwrap()
    );

    // The quotient interpretation is a model (Proposition 3.2).
    let mut engine = ws.engine().unwrap();
    engine.solve().unwrap();
    let model = QuotientModel::new(&spec);
    println!(
        "\nquotient interpretation is a model of Z ∧ D: {}",
        model.is_model_of(engine.compiled()).unwrap()
    );

    // The infinite answer to {(t,x) : Meets(t,x)} as an incremental spec.
    let q = ws.parse_query("Meets(t, x)").unwrap();
    let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
    println!(
        "\nincremental answer to {{(t,x) : Meets(t,x)}}: {} tuples over clusters; first 6 concrete answers:",
        ans.size()
    );
    for (path, tuple) in ans.enumerate_terms(&spec, 6) {
        let day = path.len();
        let who = ws.interner.resolve(tuple[0].sym());
        println!("  Meets({day}, {who})");
    }
}
