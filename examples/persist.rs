//! Persisting specifications — "the original deductive rules may be
//! forgotten" (§1).
//!
//! Compile a functional deductive database once, serialize its relational
//! specification to disk, then answer membership and queries from the file
//! alone, in a fresh process state without the rules.
//!
//! Run with: `cargo run --example persist`

use fundb_core::{read_spec, write_spec, EqSpec};
use fundb_parser::Workspace;
use fundb_term::Interner;

fn main() {
    // --- Phase 1: compile and persist. --------------------------------
    let mut ws = Workspace::new();
    ws.parse(
        "In(t, g, r1), Rotates(g, r1, r2) -> In(t+1, g, r2).
         In(0, Alpha, Lab).
         Rotates(Alpha, Lab, Aud). Rotates(Alpha, Aud, Sem). Rotates(Alpha, Sem, Lab).",
    )
    .expect("well-formed schedule");
    let bundle = ws.spec_bundle().expect("domain-independent program");
    let text = write_spec(&bundle, &ws.interner).expect("serializable symbols");
    let path = std::env::temp_dir().join("fundb-persist-example.fspec");
    std::fs::write(&path, &text).expect("writable temp dir");
    println!(
        "compiled {} clusters / {} tuples; wrote {} bytes to {}",
        bundle.spec.cluster_count(),
        bundle.spec.primary_size(),
        text.len(),
        path.display()
    );

    // --- Phase 2: a "different process" — fresh interner, no rules. ----
    let loaded_text = std::fs::read_to_string(&path).expect("file just written");
    let mut fresh = Interner::new();
    let loaded = read_spec(&loaded_text, &mut fresh).expect("valid spec file");
    println!(
        "\nreloaded without the rules: {} clusters, {} tuples",
        loaded.spec.cluster_count(),
        loaded.spec.primary_size()
    );

    // Membership straight off the file.
    let in_pred = fundb_term::Pred(fresh.get("In").expect("In is in the spec"));
    let plus1 = fundb_term::Func(fresh.get("+1").expect("+1 is in the spec"));
    let alpha = fundb_term::Cst(fresh.get("Alpha").unwrap());
    let lab = fundb_term::Cst(fresh.get("Lab").unwrap());
    println!("\nIn(n, Alpha, Lab) from the loaded specification:");
    for n in [0usize, 1, 2, 3, 99, 300] {
        println!(
            "  day {n:>3}: {}",
            loaded.spec.holds(in_pred, &vec![plus1; n], &[alpha, lab])
        );
    }

    // Even the equational view is recoverable: B with the merge equations.
    let mut eq = EqSpec::from_graph(&loaded.spec);
    println!(
        "\nequational view recovered from the file: |R| = {}, sample:",
        eq.equation_count()
    );
    for line in eq.render_equations(&fresh).iter().take(3) {
        println!("  {line}");
    }
    println!(
        "congruent(day 1, day 4)? {} (period 3)",
        eq.congruent(&[plus1; 1], &[plus1; 4])
    );

    std::fs::remove_file(&path).ok();
}
