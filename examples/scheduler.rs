//! A periodic-scheduling application on the temporal fragment.
//!
//! Several seminar groups rotate through rooms with different periods; the
//! question "who is where on day N" must be answerable for arbitrarily
//! large N. A conventional engine can only materialize a bounded horizon
//! (the [RBS87] baseline); the temporal lasso specification answers in
//! O(1) after a one-off computation, and its equational form is a single
//! pair (§4: "the relation R contains just one pair capturing the
//! periodicity of the least fixpoint").
//!
//! Run with: `cargo run --example scheduler`

use fundb_core::{normalize, to_pure, BoundedMaterialization};
use fundb_parser::Workspace;
use fundb_temporal::{classify, TemporalClass, TemporalSpec};

fn main() {
    let mut ws = Workspace::new();
    ws.parse(
        "% Group rotations: Alpha cycles through three rooms, Beta through two.
         In(t, g, r1), Rotates(g, r1, r2) -> In(t+1, g, r2).

         % Room maintenance happens every fourth day starting day 2.
         Maint(t) -> Maint(t+4).

         % A clash: some group is in the lab while it is under maintenance.
         In(t, g, Lab), Maint(t) -> Clash(t, g).

         In(0, Alpha, Lab).
         Rotates(Alpha, Lab, Aud). Rotates(Alpha, Aud, Sem). Rotates(Alpha, Sem, Lab).
         In(0, Beta, Aud).
         Rotates(Beta, Aud, Sem). Rotates(Beta, Sem, Aud).
         Maint(2).",
    )
    .expect("well-formed schedule");

    println!(
        "temporal class: {:?}",
        classify(&ws.program, &ws.db, &ws.interner)
    );
    assert_eq!(
        classify(&ws.program, &ws.db, &ws.interner),
        TemporalClass::Forward
    );

    let spec =
        TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).expect("temporal program");
    let (a, b) = spec.equation();
    println!(
        "lasso: prefix ρ = {}, period λ = {}; equational spec R = {{({a}, {b})}}; B holds {} tuples",
        spec.rho(),
        spec.lambda(),
        spec.primary_size()
    );

    // Who is in the lab on some far-away days? O(1) per query.
    let in_pred = fundb_term::Pred(ws.interner.get("In").unwrap());
    let clash = fundb_term::Pred(ws.interner.get("Clash").unwrap());
    let alpha = fundb_term::Cst(ws.interner.get("Alpha").unwrap());
    let lab = fundb_term::Cst(ws.interner.get("Lab").unwrap());
    println!("\nAlpha in the Lab on day n (n = 0, 3, 6, 999999999999):");
    for n in [0u64, 3, 6, 999_999_999_999] {
        println!("  day {n}: {}", spec.holds(in_pred, n, &[alpha, lab]));
    }

    // Clashes repeat with period lcm(3, 4) = 12.
    println!("\nclash days within one hyper-period (Alpha in Lab during maintenance):");
    for n in 0..24u64 {
        if spec.holds(clash, n, &[alpha]) {
            println!("  day {n}");
        }
    }

    // The baseline: bounded materialization diverges with the horizon.
    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
    println!("\n[RBS87-style baseline] bounded materialization growth:");
    for depth in [8usize, 16, 32, 64] {
        let mat = BoundedMaterialization::run(&pure, depth, &mut ws.interner).unwrap();
        println!(
            "  horizon {depth:>3}: {:>5} facts ({} ground rule instances)",
            mat.fact_count(),
            mat.ground_rules
        );
    }
    println!(
        "\nlasso specification: {} tuples, valid for every day — no horizon.",
        spec.primary_size()
    );
}
