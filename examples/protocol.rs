//! Protocol verification over an infinite run space.
//!
//! The paper motivates functional rules with "state transitions" and
//! "construction of plans" (§1). This example checks a *safety property* of
//! a two-intersection traffic-light controller: although the set of runs
//! (operator sequences) is infinite, its relational specification is
//! finite, so the safety question "is there any reachable run in which both
//! lights are green?" is decidable — it is an (incremental) query whose
//! answer set is empty exactly when the protocol is safe.
//!
//! Run with: `cargo run --example protocol`

use fundb_core::analysis;
use fundb_parser::Workspace;

fn check(src: &str, label: &str) {
    let mut ws = Workspace::new();
    ws.parse(src).expect("well-formed protocol");
    let spec = ws.graph_spec().expect("domain-independent rules");
    let report = analysis::analyze(&spec);
    println!("--- {label} ---");
    println!(
        "run space: {} clusters ({}), {} primary tuples",
        spec.cluster_count(),
        if report.finite {
            "finite"
        } else {
            "INFINITE runs"
        },
        spec.primary_size()
    );

    // Safety: ∃ run s with Green(s, L1) ∧ Green(s, L2)?
    let q = ws.parse_query("Green(s, L1), Green(s, L2)").unwrap();
    let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
    if ans.size() == 0 {
        println!("SAFE: no reachable run has both lights green (checked over ALL runs)");
    } else {
        println!(
            "UNSAFE: {} violating cluster(s); shortest witnesses:",
            ans.size()
        );
        for (path, _) in ans.enumerate_terms(&spec, 3) {
            let ops: Vec<&str> = path.iter().map(|f| ws.interner.resolve(f.sym())).collect();
            println!("  init -> {}", ops.join(" -> "));
        }
    }
    println!();
}

fn main() {
    // A correct interlocked controller: switching L1 to green requires L2
    // red, and vice versa. Operators: g1/g2 (turn green), r1/r2 (turn red).
    check(
        "% Initial state: both red.
         Red(0, L1). Red(0, L2).

         % Turn a light green only while the other is red — and keep the
         % other red in the successor state.
         Red(s, L1), Red(s, L2) -> Green(go1(s), L1).
         Red(s, L1), Red(s, L2) -> Red(go1(s), L2).
         Red(s, L1), Red(s, L2) -> Green(go2(s), L2).
         Red(s, L1), Red(s, L2) -> Red(go2(s), L1).

         % Turn a green light back to red; the other keeps its colour.
         Green(s, L1) -> Red(stop1(s), L1).
         Green(s, L1), Red(s, L2) -> Red(stop1(s), L2).
         Green(s, L2) -> Red(stop2(s), L2).
         Green(s, L2), Red(s, L1) -> Red(stop2(s), L1).",
        "interlocked controller",
    );

    // A buggy controller: go2 forgets to require L1 red.
    check(
        "Red(0, L1). Red(0, L2).

         Red(s, L1), Red(s, L2) -> Green(go1(s), L1).
         Red(s, L1), Red(s, L2) -> Red(go1(s), L2).

         % BUG: L2 may turn green regardless of L1.
         Red(s, L2) -> Green(go2(s), L2).
         Green(s, L1) -> Green(go2(s), L1).
         Red(s, L1) -> Red(go2(s), L1).

         Green(s, L1) -> Red(stop1(s), L1).
         Green(s, L1), Red(s, L2) -> Red(stop1(s), L2).
         Green(s, L1), Green(s, L2) -> Green(stop1(s), L2).
         Green(s, L2) -> Red(stop2(s), L2).
         Green(s, L2), Red(s, L1) -> Red(stop2(s), L1).
         Green(s, L2), Green(s, L1) -> Green(stop2(s), L1).",
        "buggy controller",
    );
}
