//! Situation-calculus planning (§1).
//!
//! "Here the functional variable s plays the role of a state (situation).
//! Function symbols correspond to operators available to a robot [Gre69]."
//! The robot moves between connected positions; the answer to
//! `{y : At(y, P)}` — all sequences of moves that lead the robot to `P` —
//! is infinite but finitely representable, "because there are only finitely
//! many positions that the robot can assume. … On every possible infinite
//! path, there must be a cycle."
//!
//! Run with: `cargo run --example planner`

use fundb_parser::Workspace;

fn main() {
    let mut ws = Workspace::new();
    // A small office floor: P0 — P1 — P2, with a side room P3 off P1.
    ws.parse(
        "At(s, p1), Connected(p1, p2) -> At(move(s, p1, p2), p2).

         At(0, P0).
         Connected(P0, P1). Connected(P1, P0).
         Connected(P1, P2). Connected(P2, P1).
         Connected(P1, P3). Connected(P3, P1).",
    )
    .expect("well-formed planning program");

    let spec = ws.graph_spec().expect("domain-independent program");
    println!("=== Plan-space specification ===");
    println!(
        "clusters: {} ({} deep), successor edges: {}, primary database: {} tuples",
        spec.cluster_count(),
        spec.active_count,
        spec.edge_count(),
        spec.primary_size()
    );

    // Yes-no plan checks: does a concrete sequence of moves reach P2?
    println!("\n=== Plan verification ===");
    for plan in [
        "At(move(move(0, P0, P1), P1, P2), P2)",
        "At(move(move(0, P0, P1), P1, P3), P2)",
        "At(move(move(move(move(0, P0, P1), P1, P0), P0, P1), P1, P2), P2)",
    ] {
        println!("{}\n  -> {}", plan, ws.holds(&spec, plan).unwrap());
    }

    // The infinite answer {y : At(y, P2)}: enumerate the shortest plans.
    let q = ws.parse_query("At(y, P2)").unwrap();
    let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
    println!(
        "\n=== All plans reaching P2 (infinite; finitely specified by {} cluster tuples) ===",
        ans.size()
    );
    println!("shortest plans (breadth-first):");
    for (path, _) in ans.enumerate_terms(&spec, 5) {
        let moves: Vec<String> = path
            .iter()
            .map(|f| ws.interner.resolve(f.sym()).to_string())
            .collect();
        println!("  0 -> {}", moves.join(" -> "));
    }

    // Once the robot returns to a visited position, the congruence collapses
    // the plans: representing one cycle traversal is enough.
    let plan_a = "At(move(move(0, P0, P1), P1, P0), P0)"; // back at P0
    let plan_b = "At(0, P0)"; // never moved
    println!(
        "\nplan-A at P0: {}, plan-B at P0: {} (their states coincide — the cycle is collapsed)",
        ws.holds(&spec, plan_a).unwrap(),
        ws.holds(&spec, plan_b).unwrap()
    );
}
