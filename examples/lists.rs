//! Simple list processing — the paper's running example (§1, §2.4, §3.4).
//!
//! `ext(s, x)` extends list `s` with element `x` (a "cons" with reversed
//! arguments); `Member` relates a list to its elements. The mixed symbol
//! `ext` is eliminated by the §2.4 transformation into the unary symbols
//! `ext[A]` and `ext[B]` (the paper's `exta`/`extb`), and Algorithm Q
//! computes exactly the specification worked out at the end of §3.4:
//! representative terms `0, a, b, ab` with their slices and successor
//! mappings.
//!
//! Run with: `cargo run --example lists`

use fundb_core::{normalize, to_pure, EqSpec};
use fundb_parser::Workspace;

fn main() {
    let mut ws = Workspace::new();
    ws.parse(
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         P(y), Member(s, x) -> Member(ext(s, y), x).

         P(A). P(B).",
    )
    .expect("well-formed list program");

    // Show the §2.4 mixed→pure transformation.
    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).expect("domain-independent");
    println!("=== Mixed→pure transformation (§2.4) ===");
    println!(
        "mixed symbol `ext` instantiated into {} unary symbols:",
        pure.sym_map.len()
    );
    let mut names: Vec<String> = pure
        .sym_map
        .values()
        .map(|f| ws.interner.resolve(f.sym()).to_string())
        .collect();
    names.sort();
    for n in &names {
        println!("  {n}");
    }
    println!("transformed rules: {}", pure.program.rules.len());

    // Algorithm Q: the paper's §3.4 worked example.
    let full = ws.graph_spec().expect("domain-independent program");
    println!(
        "\n=== Graph specification (Algorithm Q, {} clusters) ===",
        full.cluster_count()
    );
    // The bisimulation quotient reproduces the paper's four representatives
    // 0, a, b, ab exactly.
    let spec = full.minimized();
    println!("after minimization (the paper's §3.4 output):");
    print!("{}", spec.render(&ws.interner));
    println!(
        "representative terms: {} (paper: 0, a, b, ab — four clusters)",
        spec.cluster_count()
    );

    // Lists with the same element set are congruent: [a,b] vs [b,a].
    println!("\n=== Membership over deep lists ===");
    for fact in [
        "Member(ext(ext(0, A), B), A)",
        "Member(ext(ext(0, B), A), A)",
        "Member(ext(ext(ext(0, A), B), A), B)",
        "Member(ext(0, A), B)",
    ] {
        println!("{fact:>36}  ->  {}", ws.holds(&spec, fact).unwrap());
    }

    // Equational view: [a,b] ≅ [b,a] in Cl(R).
    let eq = EqSpec::from_graph(&spec);
    println!("\n=== Equations R (from Algorithm Q's merges) ===");
    for line in eq.render_equations(&ws.interner) {
        println!("R: {line}");
    }
}
