#!/usr/bin/env python3
"""Validate a committed bench trajectory against the fundb-bench-v1 schema.

Usage: check_bench.py BENCH_prN.json [--require E11,E14,...]

Fails (exit 1) when the file is absent, is not valid JSON, or does not
follow the fundb-bench-v1 shape: a top-level object with
  schema  == "fundb-bench-v1"
  pr      -- positive integer
  records -- non-empty list of flat objects, each carrying string
             "experiment" and "workload" keys plus numeric measurements.

With --require, additionally fails when any of the named experiments has
no record in the trajectory — the gate CI uses to make sure a freshly
added experiment family cannot silently drop out of the committed file.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    argv = sys.argv[1:]
    required: set[str] = set()
    if "--require" in argv:
        at = argv.index("--require")
        if at + 1 >= len(argv):
            fail("--require needs a comma-separated experiment list")
        required = {e.strip() for e in argv[at + 1].split(",") if e.strip()}
        argv = argv[:at] + argv[at + 2:]
    if len(argv) != 1:
        fail("usage: check_bench.py BENCH_prN.json [--require E11,E14,...]")
    path = argv[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(f"{path} is missing — regenerate it with "
             f"`cargo run --release -p fundb-bench --bin experiments` and commit it")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != "fundb-bench-v1":
        fail(f"{path}: schema must be \"fundb-bench-v1\", got {doc.get('schema')!r}")
    pr = doc.get("pr")
    if not isinstance(pr, int) or isinstance(pr, bool) or pr < 1:
        fail(f"{path}: pr must be a positive integer, got {pr!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records must be a non-empty list")
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            fail(f"{path}: records[{i}] is not an object")
        for key in ("experiment", "workload"):
            if not isinstance(rec.get(key), str) or not rec[key]:
                fail(f"{path}: records[{i}] lacks a non-empty string {key!r}")
        measurements = {k: v for k, v in rec.items()
                        if k not in ("experiment", "workload")}
        if not measurements:
            fail(f"{path}: records[{i}] carries no measurements")
        for k, v in measurements.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                fail(f"{path}: records[{i}].{k} must be numeric, got {v!r}")

    experiments = sorted({r["experiment"] for r in records})
    missing = sorted(required - set(experiments))
    if missing:
        fail(f"{path}: required experiments absent: {', '.join(missing)} "
             f"(present: {', '.join(experiments)})")
    print(f"check_bench: OK: {path} (pr {pr}, {len(records)} records, "
          f"experiments: {', '.join(experiments)})")


if __name__ == "__main__":
    main()
