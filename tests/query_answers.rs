//! §5 query answering, cross-checked between the incremental and
//! by-extension strategies (Theorem 5.1) and against direct membership.

mod common;

use common::{all_paths, random_program, GenConfig};
use fundb_core::program::{Atom, FTerm, NTerm};
use fundb_core::{Engine, GraphSpec, Query};
use fundb_parser::Workspace;
use proptest::prelude::*;

/// Theorem 5.1 on random programs: for the canonical uniform query
/// `{(s, x) : P(s, x)}`, incremental and by-extension answers agree on
/// every term up to the test depth.
#[test]
fn theorem_5_1_on_random_programs() {
    for seed in 0..30u64 {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let s = fundb_term::Var(gen.interner.intern("qs"));
        let x = fundb_term::Var(gen.interner.intern("qx"));
        for &p in &gen.preds {
            let q = Query {
                out_fvar: Some(s),
                out_nvars: vec![x],
                body: vec![Atom::Functional {
                    pred: p,
                    fterm: FTerm::Var(s),
                    args: vec![NTerm::Var(x)],
                }],
            };
            assert!(q.is_uniform());
            let inc = q.answer_incremental(&spec, &gen.interner).unwrap();
            let (ext, qp) = q
                .answer_by_extension(&gen.program, &gen.db, &mut gen.interner)
                .unwrap();
            for path in all_paths(&gen.funcs, 3) {
                for &c in &gen.consts {
                    assert_eq!(
                        inc.holds_term(&spec, &path, &[c]),
                        ext.holds(qp, &path, &[c]),
                        "seed {seed} pred {p:?} path {path:?}"
                    );
                }
            }
        }
    }
}

/// Enumerated answers (a) all hold, (b) come in breadth-first order, and
/// (c) cover every holding term up to the enumerated horizon.
#[test]
fn enumeration_is_sound_and_ordered() {
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    let q = ws.parse_query("Meets(t, x)").unwrap();
    let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
    let listed = ans.enumerate_terms(&spec, 12);
    assert_eq!(listed.len(), 12);
    // Sound and ordered by depth.
    let mut last_depth = 0;
    for (path, tuple) in &listed {
        assert!(ans.holds_term(&spec, path, tuple));
        assert!(path.len() >= last_depth);
        last_depth = path.len();
    }
    // Complete on the horizon: every day 0..12 appears exactly once.
    let days: Vec<usize> = listed.iter().map(|(p, _)| p.len()).collect();
    assert_eq!(days, (0..12).collect::<Vec<_>>());
}

/// Projection queries (∃s) and fully relational queries.
#[test]
fn projection_and_relational_queries() {
    let mut ws = Workspace::new();
    ws.parse(
        "In(t, g, r1), Rotates(g, r1, r2) -> In(t+1, g, r2).
         In(0, Alpha, Lab).
         Rotates(Alpha, Lab, Aud). Rotates(Alpha, Aud, Lab).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();

    // {r : ∃t In(t, Alpha, r)} = {Lab, Aud}.
    let q = ws.parse_query("In(t, Alpha, r)").unwrap();
    // Keep only the relational output (drop the functional one).
    let q = Query {
        out_fvar: None,
        ..q
    };
    let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
    let lab = fundb_term::Cst(ws.interner.get("Lab").unwrap());
    let aud = fundb_term::Cst(ws.interner.get("Aud").unwrap());
    assert!(ans.holds_tuple(&[lab]));
    assert!(ans.holds_tuple(&[aud]));
    assert_eq!(ans.size(), 2);

    // Fully relational: {r2 : Rotates(Alpha, Lab, r2)}.
    let q2 = ws.parse_query("Rotates(Alpha, Lab, r2)").unwrap();
    let ans2 = q2.answer_incremental(&spec, &ws.interner).unwrap();
    assert!(ans2.holds_tuple(&[aud]));
    assert_eq!(ans2.size(), 1);
}

/// Conjunctive queries joining functional and relational atoms at one
/// functional variable.
#[test]
fn conjunctive_join_queries() {
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).
         Senior(Tony).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    // {t : Meets(t, x), Senior(x)} — the days a senior student meets.
    let q = ws.parse_query("Meets(t, x), Senior(x)").unwrap();
    let q = Query {
        out_fvar: q.out_fvar,
        out_nvars: vec![],
        body: q.body,
    };
    let inc = q.answer_incremental(&spec, &ws.interner).unwrap();
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    for n in 0..20usize {
        assert_eq!(
            inc.holds_term(&spec, &vec![plus1; n], &[]),
            n % 2 == 0,
            "day {n}"
        );
    }
}

/// The paper's incremental example (§5): "In the list processing example …
/// assume the query is Member(s,a) → QUERY(s). The incremental graph
/// specification of the query contains the same representative terms … The
/// successor mappings are unchanged. However, the primary database is now:
/// QUERY(a). QUERY(ab)."
#[test]
fn section_5_lists_incremental_example() {
    let mut ws = Workspace::new();
    ws.parse(
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         P(y), Member(s, x) -> Member(ext(s, y), x).
         P(A). P(B).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap().minimized();
    let q = ws.parse_query("Member(s, A)").unwrap();
    let ans = q.answer_incremental(&spec, &ws.interner).unwrap();

    let exta = fundb_term::Func(ws.interner.get("ext[A]").unwrap());
    let extb = fundb_term::Func(ws.interner.get("ext[B]").unwrap());
    // QUERY(a) and QUERY(ab) — and nothing else (two clusters).
    assert_eq!(ans.size(), 2);
    assert!(ans.holds_term(&spec, &[exta], &[]));
    assert!(ans.holds_term(&spec, &[exta, extb], &[]));
    assert!(ans.holds_term(&spec, &[extb, exta], &[])); // ba ≅ ab
    assert!(!ans.holds_term(&spec, &[extb], &[]));
    assert!(!ans.holds_term(&spec, &[], &[]));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Incremental answers agree with direct membership: for every term t,
    /// t ∈ answer({s : P(s, C)}) iff P(t, C) ∈ LFP.
    #[test]
    fn incremental_answers_match_membership(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let s = fundb_term::Var(gen.interner.intern("qs"));
        let c = gen.consts[0];
        for &p in &gen.preds {
            let q = Query {
                out_fvar: Some(s),
                out_nvars: vec![],
                body: vec![Atom::Functional {
                    pred: p,
                    fterm: FTerm::Var(s),
                    args: vec![NTerm::Const(c)],
                }],
            };
            let ans = q.answer_incremental(&spec, &gen.interner).unwrap();
            for path in all_paths(&gen.funcs, 3) {
                prop_assert_eq!(
                    ans.holds_term(&spec, &path, &[]),
                    engine.holds(p, &path, &[c])
                );
            }
        }
    }
}
