//! Cross-crate pipeline tests: parse → validate → normalize → mixed→pure →
//! compile → solve → specify → answer, with stress and edge cases.

use fundb_core::{analysis, normalize, to_pure, BoundedMaterialization, EqSpec};
use fundb_parser::Workspace;
use fundb_temporal::TemporalSpec;

/// Very deep query terms must work without stack overflow or quadratic
/// blowup (regression: the derived recursive Drop/Clone on FTerm).
#[test]
fn million_deep_terms() {
    let mut ws = Workspace::new();
    ws.parse("Even(t) -> Even(t+2).\nEven(0).").unwrap();
    let spec = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec, "Even(1000000)").unwrap());
    assert!(!ws.holds(&spec, "Even(1000001)").unwrap());
    // Temporal spec answers O(1) at any distance.
    let tspec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    let even = fundb_term::Pred(ws.interner.get("Even").unwrap());
    assert!(tspec.holds(even, u64::MAX - 1, &[]));
    assert!(!tspec.holds(even, u64::MAX, &[]));
}

/// Rules with several functional variables are projected correctly.
#[test]
fn multiple_functional_variables() {
    let mut ws = Workspace::new();
    // Win(x) holds if x occurs in SOME list (s) and SOME other list has B
    // (unrelated functional variables in one rule body).
    ws.parse(
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         Member(s, x), Member(u, B) -> Win(x).
         P(A). P(B).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec, "Win(A)").unwrap());
    assert!(ws.holds(&spec, "Win(B)").unwrap());
}

/// Deep non-ground terms in heads and bodies are normalized away (depth 3).
#[test]
fn deep_rule_terms() {
    let mut ws = Workspace::new();
    ws.parse("Tick(t) -> Tick(t+3).\nTick(t+3) -> Seen(t).\nTick(0).")
        .unwrap();
    let spec = ws.graph_spec().unwrap();
    // Tick at multiples of 3.
    for n in 0..15usize {
        assert_eq!(
            ws.holds(&spec, &format!("Tick({n})")).unwrap(),
            n % 3 == 0,
            "Tick({n})"
        );
        // Seen(t) iff Tick(t+3) iff t multiple of 3.
        assert_eq!(
            ws.holds(&spec, &format!("Seen({n})")).unwrap(),
            n % 3 == 0,
            "Seen({n})"
        );
    }
}

/// An empty program and database still produce a (trivial) specification.
#[test]
fn empty_everything() {
    let mut ws = Workspace::new();
    let spec = ws.graph_spec().unwrap();
    assert_eq!(spec.cluster_count(), 1);
    let report = analysis::analyze(&spec);
    assert!(report.finite);
    assert_eq!(report.functional_fact_count, Some(0));
}

/// Pure Datalog programs (no function symbols at all) work end to end:
/// the extension degenerates gracefully to its base.
#[test]
fn plain_datalog_degenerates() {
    let mut ws = Workspace::new();
    ws.parse(
        "Edge(x, y) -> Path(x, y).
         Path(x, y), Edge(y, z) -> Path(x, z).
         Edge(A, B). Edge(B, C). Edge(C, D).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec, "Path(A, D)").unwrap());
    assert!(!ws.holds(&spec, "Path(D, A)").unwrap());
    assert_eq!(spec.cluster_count(), 1); // only the root term 0
    let report = analysis::analyze(&spec);
    assert!(report.finite);
}

/// Facts deeper than every rule term enlarge the top region (c tracks the
/// database too).
#[test]
fn deep_facts_extend_top_region() {
    let mut ws = Workspace::new();
    ws.parse("Hot(t) -> Warm(t+1).\nHot(5).").unwrap();
    let spec = ws.graph_spec().unwrap();
    assert_eq!(spec.c, 5);
    assert!(ws.holds(&spec, "Warm(6)").unwrap());
    assert!(!ws.holds(&spec, "Warm(5)").unwrap());
    let report = analysis::analyze(&spec);
    assert!(report.finite);
    assert_eq!(report.functional_fact_count, Some(2));
}

/// The engine, both specifications and the baseline agree on a program
/// mixing every feature: mixed symbols, relational predicates, backward
/// rules, ground terms.
#[test]
fn kitchen_sink_agreement() {
    let mut ws = Workspace::new();
    ws.parse(
        "Obj(x) -> Has(put(0, x), x).
         Obj(y), Has(s, x) -> Has(put(s, y), x).
         Obj(y), Has(s, x) -> Has(put(s, y), y).
         Has(put(s, x), x) -> WasPut(x).
         Obj(A). Obj(B).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    let mut eq = EqSpec::from_graph(&spec);

    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
    let mat = BoundedMaterialization::run(&pure, 4, &mut ws.interner).unwrap();

    // WasPut is derived through a backward rule.
    assert!(ws.holds(&spec, "WasPut(A)").unwrap());
    assert!(ws.holds(&spec, "WasPut(B)").unwrap());

    // Graph and equational spec agree with the bounded materialization on
    // its horizon.
    let has = fundb_term::Pred(ws.interner.get("Has").unwrap());
    let puta = fundb_term::Func(ws.interner.get("put[A]").unwrap());
    let putb = fundb_term::Func(ws.interner.get("put[B]").unwrap());
    let a = fundb_term::Cst(ws.interner.get("A").unwrap());
    let b = fundb_term::Cst(ws.interner.get("B").unwrap());
    let mut paths: Vec<Vec<fundb_term::Func>> = vec![vec![]];
    let mut frontier = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for p in &frontier {
            for &f in &[puta, putb] {
                let mut q = p.clone();
                q.push(f);
                next.push(q);
            }
        }
        paths.extend(next.iter().cloned());
        frontier = next;
    }
    for path in &paths {
        for &c in &[a, b] {
            let g = spec.holds(has, path, &[c]);
            assert_eq!(g, eq.holds(has, path, &[c]), "eq vs graph at {path:?}");
            if mat.holds(has, path, &[c]) {
                assert!(g, "naive derived a fact the spec misses at {path:?}");
            }
            if path.len() <= 3 {
                // Forward program: the baseline is exact within horizon-1.
                assert_eq!(g, mat.holds(has, path, &[c]), "exactness at {path:?}");
            }
        }
    }
}

/// Incremental workspace building: parse in several fragments, ask between
/// fragments, then extend.
#[test]
fn incremental_workspace() {
    let mut ws = Workspace::new();
    ws.parse("Run(t) -> Run(t+2).").unwrap();
    ws.parse("Run(0).").unwrap();
    let spec1 = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec1, "Run(4)").unwrap());
    assert!(!ws.holds(&spec1, "Run(1)").unwrap());
    // Add a second seed shifting the parity coverage.
    ws.parse("Run(1).").unwrap();
    let spec2 = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec2, "Run(4)").unwrap());
    assert!(ws.holds(&spec2, "Run(7)").unwrap());
}

/// Errors carry enough context to act on.
#[test]
fn error_reporting() {
    let mut ws = Workspace::new();
    let err = ws.parse("P(0").unwrap_err();
    assert!(matches!(err, fundb_core::Error::Parse { .. }));

    let mut ws2 = Workspace::new();
    ws2.parse("functional Q/1.\nR(x) -> Q(s).\nR(A).").unwrap();
    let err = ws2.graph_spec().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("range-restricted"), "got: {msg}");
}

/// Incremental fact updates: monotone re-solving matches a full rebuild.
#[test]
fn incremental_updates_match_rebuild() {
    use fundb_core::Engine;
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan).",
    )
    .unwrap();
    let mut engine = ws.engine().unwrap();
    let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
    let next = fundb_term::Pred(ws.interner.get("Next").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    let tony = fundb_term::Cst(ws.interner.get("Tony").unwrap());
    let jan = fundb_term::Cst(ws.interner.get("Jan").unwrap());

    // Without Next(Jan, Tony) the rotation stops at day 1.
    assert!(engine.holds(meets, &[plus1], &[jan]));
    assert!(!engine.holds(meets, &[plus1, plus1], &[tony]));

    // Add the missing relational fact incrementally and re-solve.
    engine
        .add_fact_relational(next, &[jan, tony], &ws.interner)
        .unwrap();
    engine.solve().unwrap();
    assert!(engine.holds(meets, &[plus1, plus1], &[tony]));
    for n in 0..20usize {
        let who = if n % 2 == 0 { tony } else { jan };
        assert!(engine.holds(meets, &vec![plus1; n], &[who]), "day {n}");
    }

    // Adding a functional fact at the root also works.
    engine
        .add_fact_functional(meets, &[], &[jan], &ws.interner)
        .unwrap();
    engine.solve().unwrap();
    assert!(
        engine.holds(meets, &[plus1], &[tony]),
        "Jan day 0 ⇒ Tony day 1"
    );

    // The incrementally updated engine equals a fresh rebuild.
    let mut ws2 = Workspace::new();
    ws2.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Meets(0, Jan). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let fresh = ws2.engine().unwrap();
    let meets2 = fundb_term::Pred(ws2.interner.get("Meets").unwrap());
    let plus2 = fundb_term::Func(ws2.interner.get("+1").unwrap());
    let tony2 = fundb_term::Cst(ws2.interner.get("Tony").unwrap());
    let jan2 = fundb_term::Cst(ws2.interner.get("Jan").unwrap());
    for n in 0..15usize {
        for (w, w2) in [(tony, tony2), (jan, jan2)] {
            assert_eq!(
                engine.holds(meets, &vec![plus1; n], &[w]),
                fresh.holds(meets2, &vec![plus2; n], &[w2]),
                "n={n}"
            );
        }
    }

    // Vocabulary violations are rejected with a rebuild hint.
    let ghost = fundb_term::Cst(ws.interner.intern("Ghost"));
    let err = engine
        .add_fact_relational(next, &[ghost, tony], &ws.interner)
        .unwrap_err();
    assert!(err.to_string().contains("rebuild"));
    let _ = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
}

/// `EqSpec::minimize_equations` preserves every membership answer. Raw
/// Algorithm Q output is already irredundant (each equation names a distinct
/// potential term); redundancy appears after bisimulation minimization,
/// whose merges include congruence consequences (once a ≅ aa is known,
/// ab ≅ aab follows).
#[test]
fn equation_minimization_preserves_answers() {
    let mut ws = Workspace::new();
    ws.parse(
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         P(y), Member(s, x) -> Member(ext(s, y), x).
         P(A). P(B).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap().minimized();
    let mut eq_full = EqSpec::from_graph(&spec);
    let mut eq_min = eq_full.clone();
    let removed = eq_min.minimize_equations();
    assert!(removed > 0, "minimized-spec merges carry redundancy");
    assert!(eq_min.equation_count() < eq_full.equation_count());

    let member = fundb_term::Pred(ws.interner.get("Member").unwrap());
    let exta = fundb_term::Func(ws.interner.get("ext[A]").unwrap());
    let extb = fundb_term::Func(ws.interner.get("ext[B]").unwrap());
    let a = fundb_term::Cst(ws.interner.get("A").unwrap());
    let b = fundb_term::Cst(ws.interner.get("B").unwrap());
    let mut paths: Vec<Vec<fundb_term::Func>> = vec![vec![]];
    let mut frontier: Vec<Vec<fundb_term::Func>> = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for pth in &frontier {
            for f in [exta, extb] {
                let mut q = pth.clone();
                q.push(f);
                next.push(q);
            }
        }
        paths.extend(next.iter().cloned());
        frontier = next;
    }
    for pth in &paths {
        for c in [a, b] {
            assert_eq!(
                eq_full.holds(member, pth, &[c]),
                eq_min.holds(member, pth, &[c]),
                "path {pth:?}"
            );
        }
    }
    // Idempotent.
    assert_eq!(eq_min.minimize_equations(), 0);
}

/// `explain`: derivations of facts in the (infinite) fixpoint, produced via
/// the traced bounded materialization.
#[test]
fn explanations_trace_back_to_facts() {
    use fundb_core::BoundedMaterialization;
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
    let mat = BoundedMaterialization::run_traced(&pure, 6, &mut ws.interner).unwrap();

    let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    let tony = fundb_term::Cst(ws.interner.get("Tony").unwrap());
    let d = mat
        .explain(meets, &[plus1, plus1], &[tony])
        .expect("Meets(2, Tony) holds and is traced");
    // The proof chains two applications of the scheduling rule down to the
    // day-0 fact and the Next edges.
    let text = fundb_datalog::Provenance::render(&d, &ws.interner);
    assert!(
        text.contains("[given]"),
        "bottoms out in EDB facts:\n{text}"
    );
    assert!(
        text.matches("by rule").count() >= 2,
        "two rule applications:\n{text}"
    );
    // Depth-2 proof: Meets(2,Tony) ← Meets(1,Jan) ← Meets(0,Tony).
    fn depth(d: &fundb_datalog::Derivation) -> usize {
        1 + d.premises.iter().map(depth).max().unwrap_or(0)
    }
    assert!(depth(&d) >= 3);
    // Unsupported facts have no explanation.
    assert!(mat.explain(meets, &[plus1], &[tony]).is_none());
}

/// Wide functional predicates: several non-functional arguments joined
/// through one functional variable, including repeated variables.
#[test]
fn wide_predicates_and_repeated_variables() {
    let mut ws = Workspace::new();
    ws.parse(
        "% Transfer(t, from, to, item): item moves each step along Route.
         Transfer(t, a, b, i), Route(b, c) -> Transfer(t+1, b, c, i).
         % Loop detection: a transfer that starts and ends at the same place.
         Transfer(t, p, p, i) -> SelfLoop(i).
         Transfer(0, W1, W2, Gold).
         Route(W2, W3). Route(W3, W2). Route(W2, W2).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec, "Transfer(0, W1, W2, Gold)").unwrap());
    assert!(ws.holds(&spec, "Transfer(1, W2, W3, Gold)").unwrap());
    assert!(ws.holds(&spec, "Transfer(1, W2, W2, Gold)").unwrap());
    assert!(ws.holds(&spec, "Transfer(2, W3, W2, Gold)").unwrap());
    assert!(!ws.holds(&spec, "Transfer(1, W3, W2, Gold)").unwrap());
    // The repeated-variable rule fires on the W2→W2 hop.
    assert!(ws.holds(&spec, "SelfLoop(Gold)").unwrap());
    // Deep time points still resolve through the finite spec.
    assert!(ws.holds(&spec, "Transfer(101, W2, W2, Gold)").unwrap());
}

/// Nullary predicates work in both kinds.
#[test]
fn nullary_predicates() {
    let mut ws = Workspace::new();
    ws.parse(
        "functional Tick/1.
         Tick(t) -> Tick(t+1).
         Tick(t) -> Alive.
         Tick(0).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec, "Tick(7)").unwrap());
    assert!(ws.holds(&spec, "Alive").unwrap());
}
