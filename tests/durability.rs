//! Crash-recovery harness for the durable storage layer (PR 9).
//!
//! The durability contract under test: a crash at *any* byte of the
//! write-ahead log — between records, mid-record (a torn write), or even
//! inside the header — recovers to a **completed-round prefix** of the
//! uninterrupted run, with byte-identical rows, RowIds (per-relation
//! insertion order) and `EvalStats` for every round that had committed.
//!
//! * [`kill_at_every_byte_offset_recovers_completed_round_prefix`] is the
//!   exhaustive harness: it replays recovery for **every** truncation
//!   length of the WAL produced by a snapshot-plus-engine-run workload and
//!   checks the recovered state against an independently recorded
//!   per-round ground truth (a [`dl::RoundSink`] on a plain in-memory
//!   run).
//! * [`wal_bytes_are_identical_across_thread_counts`] pins the log itself
//!   to the determinism contract: the WAL written by a 1/2/4/8-thread run
//!   is byte-for-byte identical, so crash points are comparable across
//!   thread counts.
//! * The proptest drives the `crash_after_record:N` IO fault over the
//!   generated scenario families (PR 6): crash at a random record, at
//!   every thread count, then recover and *resume* — the resumed fixpoint
//!   must answer exactly like the uninterrupted run and like the frozen
//!   specification served from the program text.
//!
//! Regression seeds land in `tests/durability.proptest-regressions`.

use fundb_bench::scenariogen::RELATIONAL_FAMILIES;
use fundb_datalog as dl;
use fundb_parser::Workspace;
use fundb_storage::{DurableDb, WalRecord};
use fundb_term::{Cst, Interner, Pred, Var};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Magic (8) + format version (4) + base sequence (8).
const WAL_HEADER_LEN: usize = 20;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fundb-durability-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `(pred name, rows-of-names in RowId order)` sorted by predicate name —
/// the interner-independent shape every recovery comparison works over.
type Dump = Vec<(String, Vec<Vec<String>>)>;

fn dump(db: &dl::Database, interner: &Interner) -> Dump {
    let mut out: Dump = db
        .iter()
        .map(|(p, rel)| {
            (
                interner.resolve(p.sym()).to_string(),
                rel.rows()
                    .map(|row| {
                        row.iter()
                            .map(|c| interner.resolve(c.sym()).to_string())
                            .collect()
                    })
                    .collect(),
            )
        })
        .collect();
    out.sort();
    out
}

fn sorted(mut d: Dump) -> Dump {
    for (_, rows) in &mut d {
        rows.sort();
    }
    d
}

/// Asserts every relation of `partial` holds a RowId-order prefix of the
/// same relation in `full`.
fn assert_row_prefix(partial: &Dump, full: &Dump, ctx: &str) {
    for (pname, rows) in partial {
        let frows = full
            .iter()
            .find(|(fp, _)| fp == pname)
            .map(|(_, r)| r.as_slice())
            .unwrap_or(&[]);
        assert!(
            rows.len() <= frows.len() && rows.as_slice() == &frows[..rows.len()],
            "{ctx}: recovered rows of {pname} are not a prefix of the full run"
        );
    }
}

fn tc_rules(interner: &mut Interner) -> Vec<dl::Rule> {
    let edge = Pred(interner.intern("edge"));
    let path = Pred(interner.intern("path"));
    let (x, y, z) = (
        Var(interner.intern("X")),
        Var(interner.intern("Y")),
        Var(interner.intern("Z")),
    );
    let at = |p, args: Vec<dl::Term>| dl::Atom { pred: p, args };
    let v = dl::Term::Var;
    vec![
        dl::Rule {
            head: at(path, vec![v(x), v(y)]),
            body: vec![at(edge, vec![v(x), v(y)])],
        },
        dl::Rule {
            head: at(path, vec![v(x), v(z)]),
            body: vec![at(edge, vec![v(x), v(y)]), at(path, vec![v(y), v(z)])],
        },
    ]
}

/// Chain facts `edge(n0,n1) … edge(n{k-1},n{k})` in insertion order.
fn chain_facts(interner: &mut Interner, k: usize) -> Vec<(Pred, Vec<Cst>)> {
    let edge = Pred(interner.intern("edge"));
    let names: Vec<Cst> = (0..=k)
        .map(|i| Cst(interner.intern(&format!("n{i}"))))
        .collect();
    names.windows(2).map(|w| (edge, vec![w[0], w[1]])).collect()
}

/// Byte offsets just past each intact commit marker — `RoundCommit` or
/// `Retract` (PR 10), both of which recovery may truncate to — of a WAL
/// image.
fn marker_offsets(wal: &[u8]) -> Vec<usize> {
    let mut pos = WAL_HEADER_LEN;
    let mut out = Vec::new();
    while pos + 8 <= wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > wal.len() {
            break;
        }
        let payload = &wal[pos + 8..pos + 8 + len];
        pos += 8 + len;
        if matches!(
            WalRecord::decode(payload),
            Ok(WalRecord::RoundCommit { .. } | WalRecord::Retract { .. })
        ) {
            out.push(pos);
        }
    }
    out
}

/// Records the deterministic commit sequence of a plain in-memory run:
/// after round `r`, `rounds[r-1]` holds every row committed so far (in
/// merge order) and the run's cumulative stats at that boundary.
#[derive(Default)]
struct Recorder {
    current: Vec<(Pred, Vec<Cst>)>,
    #[allow(clippy::type_complexity)]
    rounds: Vec<(Vec<(Pred, Vec<Cst>)>, dl::EvalStats)>,
}

impl dl::RoundSink for Recorder {
    fn row_committed(&mut self, pred: Pred, row: &[Cst]) {
        self.current.push((pred, row.to_vec()));
    }
    fn round_committed(&mut self, stats: &dl::EvalStats) -> Result<(), String> {
        self.rounds.push((self.current.clone(), *stats));
        Ok(())
    }
}

/// The exhaustive kill-at-every-crash-point harness. One reference durable
/// run produces `snapshot.000001` + `wal.000001` (base facts and rules in
/// the snapshot, every engine round in the WAL). For **every** truncation
/// length of that WAL — including cuts inside the 20-byte header and cuts
/// that tear a record in half — recovery must land exactly on the state
/// after the last wholly-durable round marker, matching an independently
/// recorded per-round ground truth row-for-row (RowIds) and stat-for-stat.
#[test]
fn kill_at_every_byte_offset_recovers_completed_round_prefix() {
    const CHAIN: usize = 8;
    let dir_ref = tmpdir("ref");

    // Reference durable run.
    let mut interner = Interner::new();
    let mut ddb = DurableDb::open(&dir_ref, &mut interner).unwrap();
    for (p, row) in chain_facts(&mut interner, CHAIN) {
        ddb.insert(&interner, p, &row).unwrap();
    }
    let rules = tc_rules(&mut interner);
    for rule in &rules {
        ddb.log_rule(&interner, rule).unwrap();
    }
    ddb.commit().unwrap();
    assert_eq!(ddb.snapshot(&interner).unwrap(), 1);
    let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
    let mut eval = dl::IncrementalEval::new().with_threads(2);
    ddb.run(&interner, &mut eval, &plan).unwrap();
    let full_dump = dump(ddb.database(), &interner);
    drop(ddb);

    // Ground truth: the same workload on a plain in-memory database with a
    // recording sink — per-round cumulative rows and stats.
    let mut truth_int = Interner::new();
    let mut truth_db = dl::Database::new();
    let base_facts = chain_facts(&mut truth_int, CHAIN);
    for (p, row) in &base_facts {
        truth_db.insert(*p, row);
    }
    let truth_rules = tc_rules(&mut truth_int);
    let plan = dl::DeltaPlan::planned(&truth_rules, &truth_db);
    let mut eval = dl::IncrementalEval::new().with_threads(2);
    let mut rec = Recorder::default();
    eval.run_with_sink(&mut truth_db, &truth_rules, &plan, &mut rec)
        .unwrap();

    // Expected state after `m` durable round markers: the snapshot (base
    // facts, m == 0) plus every row of rounds 1..=m in merge order.
    let expect_at = |m: usize| -> (Dump, dl::EvalStats) {
        let mut db = dl::Database::new();
        for (p, row) in &base_facts {
            db.insert(*p, row);
        }
        let stats = if m == 0 {
            dl::EvalStats::default()
        } else {
            let (rows, stats) = &rec.rounds[m - 1];
            for (p, row) in rows {
                db.insert(*p, row);
            }
            *stats
        };
        (dump(&db, &truth_int), stats)
    };

    let wal_bytes = std::fs::read(dir_ref.join("wal.000001")).unwrap();
    let snap_bytes = std::fs::read(dir_ref.join("snapshot.000001")).unwrap();
    let markers = marker_offsets(&wal_bytes);
    assert_eq!(markers.len(), rec.rounds.len(), "one marker per round");
    assert_eq!(
        expect_at(markers.len()).0,
        full_dump,
        "ground-truth recorder disagrees with the durable run"
    );

    let dir_cut = tmpdir("cut");
    for cut in 0..=wal_bytes.len() {
        let _ = std::fs::remove_dir_all(&dir_cut);
        std::fs::create_dir_all(&dir_cut).unwrap();
        std::fs::write(dir_cut.join("snapshot.000001"), &snap_bytes).unwrap();
        std::fs::write(dir_cut.join("wal.000001"), &wal_bytes[..cut]).unwrap();

        let mut fresh = Interner::new();
        let ddb = DurableDb::open(&dir_cut, &mut fresh).unwrap();
        let m = markers.iter().filter(|&&o| o <= cut).count();
        let (want_dump, want_stats) = expect_at(m);
        assert_eq!(
            dump(ddb.database(), &fresh),
            want_dump,
            "cut at byte {cut}/{}: wrong rows after recovery",
            wal_bytes.len()
        );
        assert_eq!(
            ddb.stats(),
            want_stats,
            "cut at byte {cut}: wrong recovered stats"
        );
        if cut >= WAL_HEADER_LEN {
            let last_marker = markers[..m].last().copied().unwrap_or(WAL_HEADER_LEN);
            assert_eq!(
                ddb.recovery().truncated_bytes,
                (cut - last_marker) as u64,
                "cut at byte {cut}: wrong truncation accounting"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_cut);
}

/// The WAL is part of the determinism contract: runs at 1/2/4/8 threads
/// must write byte-for-byte identical logs (same records, same order,
/// same round markers), so a crash point means the same thing at every
/// thread count.
#[test]
fn wal_bytes_are_identical_across_thread_counts() {
    let mut images: Vec<Vec<u8>> = Vec::new();
    for threads in THREADS {
        let dir = tmpdir(&format!("threads{threads}"));
        let mut interner = Interner::new();
        let mut ddb = DurableDb::open(&dir, &mut interner).unwrap();
        for (p, row) in chain_facts(&mut interner, 10) {
            ddb.insert(&interner, p, &row).unwrap();
        }
        for rule in tc_rules(&mut interner) {
            ddb.log_rule(&interner, &rule).unwrap();
        }
        ddb.commit().unwrap();
        let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
        let mut eval = dl::IncrementalEval::new().with_threads(threads);
        ddb.run(&interner, &mut eval, &plan).unwrap();
        drop(ddb);
        images.push(std::fs::read(dir.join("wal.000000")).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
    for (i, img) in images.iter().enumerate().skip(1) {
        assert_eq!(
            img, &images[0],
            "WAL bytes differ between {} and {} threads",
            THREADS[i], THREADS[0]
        );
    }
}

/// The CI crash-recovery matrix test: with an arbitrary IO fault armed
/// process-wide via `FUNDB_FAULT` (torn_write / crash_after_record /
/// fsync_fail / short_read — or none at all), a durable session that dies
/// wherever the fault strikes must (a) fail with clean errors, never a
/// panic or corruption, (b) recover — still under the ambient plan, which
/// for `short_read` degrades the scan itself — to a RowId-order prefix of
/// the uninterrupted run, and (c) reach the uninterrupted fixpoint when
/// the workload is re-applied over a clean handle.
#[test]
fn ambient_io_fault_leaves_recoverable_completed_round_prefix() {
    const CHAIN: usize = 16;

    // Uninterrupted ground truth under an explicitly clean fault plan.
    let dir_full = tmpdir("ambient-full");
    let mut interner = Interner::new();
    let mut ddb =
        DurableDb::open_with_faults(&dir_full, &mut interner, dl::FaultPlan::default()).unwrap();
    for (p, row) in chain_facts(&mut interner, CHAIN) {
        ddb.insert(&interner, p, &row).unwrap();
    }
    let rules = tc_rules(&mut interner);
    for rule in &rules {
        ddb.log_rule(&interner, rule).unwrap();
    }
    ddb.commit().unwrap();
    let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
    let mut eval = dl::IncrementalEval::new().with_threads(2);
    ddb.run(&interner, &mut eval, &plan).unwrap();
    let full_dump = dump(ddb.database(), &interner);
    drop(ddb);
    let _ = std::fs::remove_dir_all(&dir_full);

    // The same workload under the ambient (possibly fault-armed) plan,
    // tolerating a death at any step; `sync` is exercised so `fsync_fail`
    // has something to strike, and its failure is survivable by contract.
    let dir = tmpdir("ambient-crash");
    let ambient = *dl::FaultPlan::from_env();
    let mut crash_int = Interner::new();
    'crashy: {
        let Ok(mut ddb) = DurableDb::open_with_faults(&dir, &mut crash_int, ambient) else {
            break 'crashy;
        };
        for (p, row) in chain_facts(&mut crash_int, CHAIN) {
            if ddb.insert(&crash_int, p, &row).is_err() {
                break 'crashy;
            }
        }
        for rule in tc_rules(&mut crash_int) {
            if ddb.log_rule(&crash_int, &rule).is_err() {
                break 'crashy;
            }
        }
        let _ = ddb.sync();
        if ddb.commit().is_err() {
            break 'crashy;
        }
        let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
        let mut eval = dl::IncrementalEval::new().with_threads(2);
        let _ = ddb.run(&crash_int, &mut eval, &plan);
    }

    // Recovery under the ambient plan lands on a completed-round prefix.
    let mut fresh = Interner::new();
    let ddb = DurableDb::open(&dir, &mut fresh).unwrap();
    assert_row_prefix(
        &dump(ddb.database(), &fresh),
        &full_dump,
        "ambient-fault recovery",
    );
    drop(ddb);

    // Re-applying the workload over a clean handle reaches the fixpoint.
    let mut fresh = Interner::new();
    let mut ddb = DurableDb::open_with_faults(&dir, &mut fresh, dl::FaultPlan::default()).unwrap();
    for (p, row) in chain_facts(&mut fresh, CHAIN) {
        ddb.insert(&fresh, p, &row).unwrap();
    }
    if ddb.rules().is_empty() {
        for rule in tc_rules(&mut fresh) {
            ddb.log_rule(&fresh, &rule).unwrap();
        }
    }
    ddb.commit().unwrap();
    let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
    let mut eval = dl::IncrementalEval::new().with_threads(2);
    ddb.run(&fresh, &mut eval, &plan).unwrap();
    assert_eq!(
        sorted(dump(ddb.database(), &fresh)),
        sorted(full_dump),
        "resume after ambient-fault crash missed the fixpoint"
    );
    drop(ddb);
    let _ = std::fs::remove_dir_all(&dir);
}

/// PR 10 churn crash matrix, exhaustive arm: a WAL whose tail is a
/// *retract round* — three `Retract` commit markers after the engine's
/// `RoundCommit`s — is truncated at **every** byte offset, including cuts
/// that tear a `Retract` record in half. Recovery must land exactly on the
/// state after the last wholly-durable marker: an engine round boundary
/// (checked against the recording sink's ground truth) or a completed
/// retraction (checked against the durable state captured right after the
/// op), with byte-identical rows, RowIds and statistics either way.
#[test]
fn crash_at_every_byte_during_retract_round_recovers_completed_prefix() {
    const CHAIN: usize = 8;
    let dir_ref = tmpdir("churn-ref");

    // Reference durable run: snapshot the base, run the engine, then
    // retract three chain edges (middle, head-adjacent, tail).
    let mut interner = Interner::new();
    let mut ddb = DurableDb::open(&dir_ref, &mut interner).unwrap();
    for (p, row) in chain_facts(&mut interner, CHAIN) {
        ddb.insert(&interner, p, &row).unwrap();
    }
    let rules = tc_rules(&mut interner);
    for rule in &rules {
        ddb.log_rule(&interner, rule).unwrap();
    }
    ddb.commit().unwrap();
    assert_eq!(ddb.snapshot(&interner).unwrap(), 1);
    let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
    let mut eval = dl::IncrementalEval::new().with_threads(2);
    ddb.run(&interner, &mut eval, &plan).unwrap();
    let pre_churn_dump = dump(ddb.database(), &interner);

    let edge = Pred(interner.get("edge").unwrap());
    let node = |i: usize, interner: &Interner| Cst(interner.get(&format!("n{i}")).unwrap());
    let mut retract_states: Vec<(Dump, dl::EvalStats)> = Vec::new();
    for (a, b) in [(4usize, 5usize), (1, 2), (CHAIN - 1, CHAIN)] {
        let out = ddb
            .retract_fact(
                &interner,
                edge,
                &[node(a, &interner), node(b, &interner)],
                &plan,
            )
            .unwrap();
        assert!(out.found, "reference retraction of n{a}->n{b} missed");
        retract_states.push((dump(ddb.database(), &interner), ddb.stats()));
    }
    drop(ddb);

    // Ground truth for the engine rounds, exactly as in the byte-kill
    // harness above.
    let mut truth_int = Interner::new();
    let mut truth_db = dl::Database::new();
    let base_facts = chain_facts(&mut truth_int, CHAIN);
    for (p, row) in &base_facts {
        truth_db.insert(*p, row);
    }
    let truth_rules = tc_rules(&mut truth_int);
    let tplan = dl::DeltaPlan::planned(&truth_rules, &truth_db);
    let mut teval = dl::IncrementalEval::new().with_threads(2);
    let mut rec = Recorder::default();
    teval
        .run_with_sink(&mut truth_db, &truth_rules, &tplan, &mut rec)
        .unwrap();

    let wal_bytes = std::fs::read(dir_ref.join("wal.000001")).unwrap();
    let snap_bytes = std::fs::read(dir_ref.join("snapshot.000001")).unwrap();
    let markers = marker_offsets(&wal_bytes);
    assert_eq!(
        markers.len(),
        rec.rounds.len() + retract_states.len(),
        "one marker per engine round plus one per retraction"
    );

    // Expected state after `m` durable markers: engine rounds first, then
    // the captured post-retraction states.
    let expect_at = |m: usize| -> (Dump, dl::EvalStats) {
        if m > rec.rounds.len() {
            return retract_states[m - rec.rounds.len() - 1].clone();
        }
        let mut db = dl::Database::new();
        for (p, row) in &base_facts {
            db.insert(*p, row);
        }
        let stats = if m == 0 {
            dl::EvalStats::default()
        } else {
            let (rows, stats) = &rec.rounds[m - 1];
            for (p, row) in rows {
                db.insert(*p, row);
            }
            *stats
        };
        (dump(&db, &truth_int), stats)
    };
    assert_eq!(
        expect_at(rec.rounds.len()).0,
        pre_churn_dump,
        "ground-truth recorder disagrees with the durable run"
    );

    let dir_cut = tmpdir("churn-cut");
    for cut in 0..=wal_bytes.len() {
        let _ = std::fs::remove_dir_all(&dir_cut);
        std::fs::create_dir_all(&dir_cut).unwrap();
        std::fs::write(dir_cut.join("snapshot.000001"), &snap_bytes).unwrap();
        std::fs::write(dir_cut.join("wal.000001"), &wal_bytes[..cut]).unwrap();

        let mut fresh = Interner::new();
        let ddb = DurableDb::open(&dir_cut, &mut fresh).unwrap();
        let m = markers.iter().filter(|&&o| o <= cut).count();
        let (want_dump, want_stats) = expect_at(m);
        assert_eq!(
            dump(ddb.database(), &fresh),
            want_dump,
            "cut at byte {cut}/{}: wrong rows after churn recovery",
            wal_bytes.len()
        );
        assert_eq!(
            ddb.stats(),
            want_stats,
            "cut at byte {cut}: wrong recovered stats after churn"
        );
    }
    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_cut);
}

/// PR 10 churn entry of the CI crash matrix: the ambient `FUNDB_FAULT`
/// plan strikes a session whose workload *ends in churn* — retractions and
/// a re-insert after the engine run. Wherever the fault lands (possibly
/// inside the retract round): (a) every failure is a clean error, (b)
/// recovery under a clean plan opens without corruption, and (c)
/// re-applying the whole workload over the recovered store reaches the
/// uninterrupted post-churn fixpoint (set-level: a replayed re-insert may
/// re-derive rows in a different order).
#[test]
fn ambient_io_fault_during_churn_recovers_and_resumes() {
    const CHAIN: usize = 12;
    let node = |i: usize, interner: &mut Interner| Cst(interner.intern(&format!("n{i}")));

    // The full workload against one handle; `Err` anywhere = the crash.
    let apply =
        |dir: &std::path::Path, interner: &mut Interner, fault: dl::FaultPlan| -> Option<Dump> {
            let mut ddb = DurableDb::open_with_faults(dir, interner, fault).ok()?;
            for (p, row) in chain_facts(interner, CHAIN) {
                ddb.insert(interner, p, &row).ok()?;
            }
            let rules = tc_rules(interner);
            if ddb.rules().is_empty() {
                // Rules are all-or-nothing across a crash; re-log only when
                // the crash predated their commit (replay would duplicate).
                for rule in &rules {
                    ddb.log_rule(interner, rule).ok()?;
                }
            }
            ddb.commit().ok()?;
            let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
            let mut eval = dl::IncrementalEval::new().with_threads(2);
            ddb.run(interner, &mut eval, &plan).ok()?;
            // Churn: retract two edges, re-insert one, re-run the delta.
            let edge = Pred(interner.intern("edge"));
            for (a, b) in [(3usize, 4usize), (7, 8)] {
                let t = [node(a, interner), node(b, interner)];
                ddb.retract_fact(interner, edge, &t, &plan).ok()?;
            }
            let t = [node(3, interner), node(4, interner)];
            ddb.insert(interner, edge, &t).ok()?;
            eval.prime_marks(ddb.database());
            ddb.run(interner, &mut eval, &plan).ok()?;
            Some(dump(ddb.database(), interner))
        };

    // Uninterrupted ground truth under a clean plan.
    let dir_full = tmpdir("churn-ambient-full");
    let mut interner = Interner::new();
    let full_dump = apply(&dir_full, &mut interner, dl::FaultPlan::default())
        .expect("clean churn workload must not fail");
    let _ = std::fs::remove_dir_all(&dir_full);

    // The same workload under the ambient plan, dying wherever it strikes.
    let dir = tmpdir("churn-ambient-crash");
    let ambient = *dl::FaultPlan::from_env();
    let mut crash_int = Interner::new();
    let _ = apply(&dir, &mut crash_int, ambient);

    // Clean recovery, then replay the workload to the post-churn fixpoint.
    let mut fresh = Interner::new();
    let ddb = DurableDb::open(&dir, &mut fresh).unwrap();
    drop(ddb);
    let mut fresh = Interner::new();
    let resumed = apply(&dir, &mut fresh, dl::FaultPlan::default())
        .expect("resume over a recovered store must not fail");
    assert_eq!(
        sorted(resumed),
        sorted(full_dump),
        "churn resume missed the post-churn fixpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Base facts of a scenario database in a deterministic insertion order
/// (by predicate index, then the relation's own row order).
fn scenario_facts(db: &dl::Database) -> Vec<(Pred, Vec<Cst>)> {
    let mut rels: Vec<(Pred, &dl::Relation)> = db.iter().collect();
    rels.sort_by_key(|(p, _)| p.index());
    rels.iter()
        .flat_map(|(p, rel)| rel.rows().map(move |r| (*p, r.to_vec())))
        .collect()
}

/// Runs the scenario workload against a durable directory, swallowing the
/// injected IO fault wherever it strikes (insert, rule logging, commit, or
/// mid-engine-run) — exactly like a process that dies at that point.
fn run_durable_crashy(
    dir: &std::path::Path,
    interner: &mut Interner,
    facts: &[(Pred, Vec<Cst>)],
    rules: &[dl::Rule],
    threads: usize,
    fault: dl::FaultPlan,
) {
    let Ok(mut ddb) = DurableDb::open_with_faults(dir, interner, fault) else {
        return;
    };
    for (p, row) in facts {
        if ddb.insert(interner, *p, row).is_err() {
            return;
        }
    }
    for rule in rules {
        if ddb.log_rule(interner, rule).is_err() {
            return;
        }
    }
    if ddb.commit().is_err() {
        return;
    }
    let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
    let mut eval = dl::IncrementalEval::new().with_threads(threads);
    let _ = ddb.run(interner, &mut eval, &plan);
}

fn holds(db: &dl::Database, interner: &Interner, pname: &str, args: &[String]) -> bool {
    let Some(p) = interner.get(pname) else {
        return false;
    };
    let mut row = Vec::with_capacity(args.len());
    for a in args {
        match interner.get(a) {
            Some(s) => row.push(Cst(s)),
            None => return false,
        }
    }
    db.contains(Pred(p), &row)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Crash-at-record-`k` over the generated scenario families: at every
    /// thread count the crashed log recovers to the **same** state (a
    /// RowId-order prefix of the uninterrupted run), and recover + resume
    /// reaches the uninterrupted fixpoint — answering the scenario's query
    /// workload exactly like the frozen specification served from the
    /// program text.
    #[test]
    fn crash_at_record_k_then_recover_and_resume_matches_uninterrupted(
        family in 0..RELATIONAL_FAMILIES.len(),
        seed in 0u64..(1u64 << 48),
        kseed in any::<u64>(),
    ) {
        let (fname, gen) = RELATIONAL_FAMILIES[family];
        let sc = gen(seed);
        let ctx = format!("{fname}/{seed}");
        let mut interner = sc.interner;
        let facts = scenario_facts(&sc.db);

        // Uninterrupted durable run.
        let dir_full = tmpdir("full");
        let mut ddb = DurableDb::open(&dir_full, &mut interner).unwrap();
        for (p, row) in &facts {
            ddb.insert(&interner, *p, row).unwrap();
        }
        for rule in &sc.rules {
            ddb.log_rule(&interner, rule).unwrap();
        }
        ddb.commit().unwrap();
        let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
        let mut eval = dl::IncrementalEval::new().with_threads(2);
        ddb.run(&interner, &mut eval, &plan).unwrap();
        let full_dump = dump(ddb.database(), &interner);
        let records = ddb.wal_stats().records;
        drop(ddb);
        let _ = std::fs::remove_dir_all(&dir_full);

        // Crash on the append after record k, at every thread count: the
        // recovered states must be identical (the WAL is thread-count
        // deterministic) and each a completed-round prefix of the full run.
        let k = 1 + (kseed % records) as usize;
        let fault = dl::FaultPlan {
            crash_after_record: Some(k),
            ..dl::FaultPlan::default()
        };
        let mut recovered: Option<Dump> = None;
        let mut resume_dir: Option<PathBuf> = None;
        for threads in THREADS {
            let dir = tmpdir("crash");
            let mut crash_int = Interner::new();
            // Re-intern the workload symbols in the same order.
            let mut sc2 = gen(seed);
            std::mem::swap(&mut crash_int, &mut sc2.interner);
            run_durable_crashy(&dir, &mut crash_int, &scenario_facts(&sc2.db), &sc2.rules, threads, fault);

            let mut fresh = Interner::new();
            let ddb = DurableDb::open(&dir, &mut fresh).unwrap();
            let d = dump(ddb.database(), &fresh);
            assert_row_prefix(&d, &full_dump, &format!("{ctx} k={k} t={threads}"));
            match &recovered {
                None => recovered = Some(d),
                Some(first) => prop_assert_eq!(
                    &d, first,
                    "{} k={} t={}: recovery differs across thread counts",
                    &ctx, k, threads
                ),
            }
            drop(ddb);
            if threads == 2 {
                resume_dir = Some(dir);
            } else {
                let _ = std::fs::remove_dir_all(&dir);
            }
        }

        // Recover + resume: a restarting application re-applies its
        // workload (inserts are idempotent; rules are re-logged only if
        // the crash predated their commit) and re-runs the engine — the
        // result must be the uninterrupted fixpoint (same rows as sets;
        // the restart may derive the missing rows in a different order).
        let dir = resume_dir.unwrap();
        let mut sc3 = gen(seed);
        let mut fresh = Interner::new();
        std::mem::swap(&mut fresh, &mut sc3.interner);
        let mut ddb = DurableDb::open(&dir, &mut fresh).unwrap();
        for (p, row) in &scenario_facts(&sc3.db) {
            ddb.insert(&fresh, *p, row).unwrap();
        }
        if ddb.rules().len() < sc3.rules.len() {
            prop_assert_eq!(ddb.rules().len(), 0, "{}: rules must be all-or-nothing", &ctx);
            for rule in &sc3.rules {
                ddb.log_rule(&fresh, rule).unwrap();
            }
        }
        ddb.commit().unwrap();
        let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
        let mut eval = dl::IncrementalEval::new().with_threads(2);
        ddb.run(&fresh, &mut eval, &plan).unwrap();
        prop_assert_eq!(
            sorted(dump(ddb.database(), &fresh)),
            sorted(full_dump.clone()),
            "{} k={}: resume missed the fixpoint",
            &ctx, k
        );

        // The resumed store answers the scenario's query workload exactly
        // like the frozen specification served from the program text.
        let mut ws = Workspace::new();
        ws.parse(&sc.text).unwrap();
        let spec = ws.graph_spec().unwrap();
        let frozen = spec.clone().freeze();
        for (pname, argnames) in &sc.queries {
            let wp = Pred(ws.interner.get(pname).unwrap());
            let wrow: Vec<Cst> = argnames
                .iter()
                .map(|a| Cst(ws.interner.get(a).unwrap()))
                .collect();
            let truth = frozen.holds_relational(wp, &wrow);
            prop_assert_eq!(
                holds(ddb.database(), &fresh, pname, argnames),
                truth,
                "{} k={}: resumed store disagrees with the frozen spec on {}({:?})",
                &ctx, k, pname, argnames
            );
        }
        drop(ddb);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
