//! Differential properties of the read-serving layer (PR 5): frozen
//! snapshots must be answer-for-answer indistinguishable from their
//! mutable originals, batch answering must be indistinguishable from a
//! per-query loop at every thread count, and — on forward programs, where
//! the naive bounded materialization is exact — everything must agree
//! with the naive baseline too.

mod common;

use common::{all_paths, random_program, GenConfig};
use fundb_core::program::{Atom, FTerm, NTerm};
use fundb_core::{
    normalize, to_pure, BoundedMaterialization, Engine, EqSpec, GraphSpec, Query, ServeQuery,
};
use proptest::prelude::*;

const DEPTH: usize = 4;
const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Six-way membership agreement on forward programs (where the naive
    /// baseline is exact): the mutable graph spec, its minimization, the
    /// frozen graph spec, the frozen minimized spec, the mutable and the
    /// frozen equational specs all answer exactly like the naive bounded
    /// materialization on every atom up to `DEPTH`.
    #[test]
    fn frozen_specs_agree_with_unfrozen_and_naive(seed in any::<u64>()) {
        let mut gen = random_program(
            GenConfig { forward_only: true, ..GenConfig::default() },
            seed,
        );
        let normal = normalize(&gen.program, &mut gen.interner);
        let pure = to_pure(&normal, &gen.db, &mut gen.interner).unwrap();
        let mat = BoundedMaterialization::run(&pure, DEPTH + 2, &mut gen.interner).unwrap();
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let minimized = spec.minimized();
        let mut eq = EqSpec::from_graph(&spec);
        let frozen_eq = eq.freeze();
        let frozen_min = minimized.clone().freeze();
        let frozen = spec.clone().freeze();
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    let expected = mat.holds(p, &path, &[c]);
                    prop_assert_eq!(
                        spec.holds(p, &path, &[c]), expected,
                        "mutable spec disagrees with naive: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        minimized.holds(p, &path, &[c]), expected,
                        "minimized spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        frozen.holds(p, &path, &[c]), expected,
                        "frozen spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        frozen_min.holds(p, &path, &[c]), expected,
                        "frozen minimized spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        eq.holds(p, &path, &[c]), expected,
                        "mutable eq spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        frozen_eq.holds(p, &path, &[c]), expected,
                        "frozen eq spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                }
            }
        }
        // Relational membership goes through the frozen answer cache too.
        for &c in &gen.consts {
            let expected = spec.holds_relational(gen.rel, &[c]);
            prop_assert_eq!(frozen.holds_relational(gen.rel, &[c]), expected);
            prop_assert_eq!(frozen_eq.holds_relational(gen.rel, &[c]), expected);
        }
        // The frozen closure's congruence test matches the mutable one.
        let paths = all_paths(&gen.funcs, 3);
        for a in &paths {
            for b in &paths {
                prop_assert_eq!(
                    frozen_eq.congruent(a, b),
                    eq.congruent(a, b),
                    "congruence disagrees on {:?} vs {:?}", a, b
                );
            }
        }
    }

    /// On general programs the frozen snapshots agree with the unfrozen
    /// spec (no naive oracle here — back-propagation can outrun any
    /// bounded depth), including a second warm pass answered from the
    /// cache.
    #[test]
    fn frozen_specs_agree_on_general_programs(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let eq = EqSpec::from_graph(&spec);
        let frozen_eq = eq.freeze();
        let frozen = spec.clone().freeze();
        for sweep in 0..2 {
            for path in all_paths(&gen.funcs, DEPTH) {
                for &p in &gen.preds {
                    for &c in &gen.consts {
                        let expected = spec.holds(p, &path, &[c]);
                        prop_assert_eq!(
                            frozen.holds(p, &path, &[c]), expected,
                            "frozen spec (sweep {}): {:?} {:?} {:?}", sweep, p, path, c
                        );
                        prop_assert_eq!(
                            frozen_eq.holds(p, &path, &[c]), expected,
                            "frozen eq spec: {:?} {:?} {:?}", p, path, c
                        );
                        prop_assert_eq!(
                            frozen.representative_memoized(&path),
                            frozen.representative_of(&path),
                            "memoized representative diverged on {:?}", path
                        );
                    }
                }
            }
        }
        let stats = frozen.serve_stats();
        prop_assert!(stats.hits > 0, "second sweep must hit the cache: {:?}", stats);
    }

    /// `answer_batch` is indistinguishable from a per-query loop at 1, 2,
    /// 4 and 8 threads — byte-identical answer vectors, shared cache or
    /// not.
    #[test]
    fn batch_equals_per_query_loop_at_any_thread_count(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let frozen = spec.freeze();
        let mut queries: Vec<ServeQuery> = Vec::new();
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    queries.push(ServeQuery::Member {
                        pred: p,
                        path: path.clone(),
                        args: vec![c],
                    });
                }
            }
        }
        for &c in &gen.consts {
            queries.push(ServeQuery::Relational { pred: gen.rel, args: vec![c] });
        }
        let seq: Vec<bool> = queries.iter().map(|q| frozen.answer(q)).collect();
        for &threads in &THREADS {
            prop_assert_eq!(
                &frozen.answer_batch_threads(&queries, threads),
                &seq,
                "batch diverged from the per-query loop at {} threads", threads
            );
        }
    }

    /// The batched `answer_incremental` returns exactly the per-query
    /// results, in input order, at every thread count.
    #[test]
    fn incremental_batch_equals_per_query_loop(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let s = fundb_term::Var(gen.interner.intern("qs"));
        let x = fundb_term::Var(gen.interner.intern("qx"));
        let queries: Vec<Query> = gen
            .preds
            .iter()
            .map(|&p| Query {
                out_fvar: Some(s),
                out_nvars: vec![x],
                body: vec![Atom::Functional {
                    pred: p,
                    fterm: FTerm::Var(s),
                    args: vec![NTerm::Var(x)],
                }],
            })
            .collect();
        let seq: Vec<_> = queries
            .iter()
            .map(|q| q.answer_incremental(&spec, &gen.interner).unwrap())
            .collect();
        for &threads in &THREADS {
            let batch =
                Query::answer_incremental_batch(&queries, &spec, &gen.interner, threads)
                    .unwrap();
            prop_assert_eq!(
                &batch, &seq,
                "incremental batch diverged at {} threads", threads
            );
        }
    }
}
