//! Shared helpers for the cross-crate integration tests: a seeded random
//! program generator used by the differential suites.
//!
//! Different test targets use different subsets of the helpers.
#![allow(dead_code)]

use fundb_core::program::{Atom, Database, FTerm, NTerm, Program, Rule};
use fundb_term::{Cst, Func, Interner, Pred, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for random functional programs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of functional predicates (arity 1 + 1 non-functional arg).
    pub preds: usize,
    /// Number of pure function symbols.
    pub funcs: usize,
    /// Number of constants.
    pub consts: usize,
    /// Number of rules.
    pub rules: usize,
    /// Number of facts.
    pub facts: usize,
    /// Restrict to forward rules (no body atom deeper than the head):
    /// bounded materialization is then exact up to its depth.
    pub forward_only: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            preds: 3,
            funcs: 2,
            consts: 2,
            rules: 4,
            facts: 3,
            forward_only: false,
        }
    }
}

/// Everything a differential test needs about a generated instance.
pub struct Generated {
    pub interner: Interner,
    pub program: Program,
    pub db: Database,
    pub preds: Vec<Pred>,
    pub rel: Pred,
    pub funcs: Vec<Func>,
    pub consts: Vec<Cst>,
}

/// Generates a random, validated (range-restricted) functional program.
pub fn random_program(cfg: GenConfig, seed: u64) -> Generated {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut interner = Interner::new();
    let preds: Vec<Pred> = (0..cfg.preds)
        .map(|i| Pred(interner.intern(&format!("P{i}"))))
        .collect();
    let rel = Pred(interner.intern("R"));
    let funcs: Vec<Func> = (0..cfg.funcs)
        .map(|i| Pred(interner.intern(&format!("f{i}"))).0)
        .map(Func)
        .collect();
    let consts: Vec<Cst> = (0..cfg.consts)
        .map(|i| Cst(interner.intern(&format!("C{i}"))))
        .collect();
    let s = Var(interner.intern("s"));
    let x = Var(interner.intern("x"));

    let fat = |pred: Pred, ft: FTerm, arg: NTerm| Atom::Functional {
        pred,
        fterm: ft,
        args: vec![arg],
    };

    let mut program = Program::new();
    for _ in 0..cfg.rules {
        // Offsets: body atoms at s (0) or f(s) (1); head likewise.
        let head_off = rng.gen_range(0..=1usize);
        let body_len = rng.gen_range(1..=2usize);
        let mut body = Vec::new();
        let mut body_has_zero = false;
        for _ in 0..body_len {
            let off = if cfg.forward_only {
                rng.gen_range(0..=head_off)
            } else {
                rng.gen_range(0..=1usize)
            };
            if off == 0 {
                body_has_zero = true;
            }
            let ft = if off == 0 {
                FTerm::Var(s)
            } else {
                FTerm::Pure(
                    funcs[rng.gen_range(0..funcs.len())],
                    Box::new(FTerm::Var(s)),
                )
            };
            body.push(fat(preds[rng.gen_range(0..preds.len())], ft, NTerm::Var(x)));
        }
        // Keep at least one offset-0 atom for forward rules with head 0 so
        // that head variables are bound and the "forward" reading is tight.
        if cfg.forward_only && head_off == 0 && !body_has_zero {
            body.push(fat(
                preds[rng.gen_range(0..preds.len())],
                FTerm::Var(s),
                NTerm::Var(x),
            ));
        }
        // Optionally join a relational atom.
        if rng.gen_bool(0.4) {
            body.push(Atom::Relational {
                pred: rel,
                args: vec![NTerm::Var(x)],
            });
        }
        let head_ft = if head_off == 0 {
            FTerm::Var(s)
        } else {
            FTerm::Pure(
                funcs[rng.gen_range(0..funcs.len())],
                Box::new(FTerm::Var(s)),
            )
        };
        let head = fat(preds[rng.gen_range(0..preds.len())], head_ft, NTerm::Var(x));
        program.push(Rule::new(head, body));
    }

    let mut db = Database::new();
    for _ in 0..cfg.facts {
        let depth = rng.gen_range(0..=1usize);
        let mut ft = FTerm::Zero;
        for _ in 0..depth {
            ft = FTerm::Pure(funcs[rng.gen_range(0..funcs.len())], Box::new(ft));
        }
        db.facts.push(Atom::Functional {
            pred: preds[rng.gen_range(0..preds.len())],
            fterm: ft,
            args: vec![NTerm::Const(consts[rng.gen_range(0..consts.len())])],
        });
    }
    db.facts.push(Atom::Relational {
        pred: rel,
        args: vec![NTerm::Const(consts[0])],
    });

    Generated {
        interner,
        program,
        db,
        preds,
        rel,
        funcs,
        consts,
    }
}

/// All symbol paths over `funcs` of length ≤ `depth` (breadth-first).
pub fn all_paths(funcs: &[Func], depth: usize) -> Vec<Vec<Func>> {
    let mut out: Vec<Vec<Func>> = vec![vec![]];
    let mut frontier: Vec<Vec<Func>> = vec![vec![]];
    for _ in 0..depth {
        let mut next = Vec::new();
        for p in &frontier {
            for &f in funcs {
                let mut q = p.clone();
                q.push(f);
                next.push(q);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}
