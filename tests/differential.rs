//! Differential and property-based tests.
//!
//! The engine, the graph specification, the equational specification, the
//! minimized specification and the temporal fast path must all agree with
//! each other — and with the bounded-depth naive materialization baseline
//! where the latter is exact (forward programs) or sound (general
//! programs) — on randomly generated functional deductive databases.

mod common;

use common::{all_paths, random_program, GenConfig};
use fundb_core::{normalize, to_pure, BoundedMaterialization, Engine, EqSpec, GraphSpec};
use proptest::prelude::*;

const DEPTH: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Forward programs: bounded materialization is exact up to its depth,
    /// so engine answers and baseline answers coincide there.
    #[test]
    fn engine_matches_naive_on_forward_programs(seed in any::<u64>()) {
        let mut gen = random_program(
            GenConfig { forward_only: true, ..GenConfig::default() },
            seed,
        );
        let normal = normalize(&gen.program, &mut gen.interner);
        let pure = to_pure(&normal, &gen.db, &mut gen.interner).unwrap();
        let mat = BoundedMaterialization::run(&pure, DEPTH + 2, &mut gen.interner).unwrap();
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        engine.solve().unwrap();
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    prop_assert_eq!(
                        engine.holds(p, &path, &[c]),
                        mat.holds(p, &path, &[c]),
                        "pred {:?} path {:?} const {:?}", p, path, c
                    );
                }
            }
        }
    }

    /// General programs: everything the baseline derives is in the least
    /// fixpoint (naive ⊆ engine).
    #[test]
    fn naive_is_sound_on_general_programs(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let normal = normalize(&gen.program, &mut gen.interner);
        let pure = to_pure(&normal, &gen.db, &mut gen.interner).unwrap();
        let mat = BoundedMaterialization::run(&pure, DEPTH + 2, &mut gen.interner).unwrap();
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        engine.solve().unwrap();
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    if mat.holds(p, &path, &[c]) {
                        prop_assert!(
                            engine.holds(p, &path, &[c]),
                            "naive derived a fact the engine misses: {:?} {:?}", p, path
                        );
                    }
                }
            }
        }
    }

    /// The graph specification answers exactly like the engine, and the
    /// equational and minimized specifications answer exactly like the
    /// graph specification.
    #[test]
    fn specifications_agree(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let minimized = spec.minimized();
        let mut eq = EqSpec::from_graph(&spec);
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    let expected = engine.holds(p, &path, &[c]);
                    prop_assert_eq!(spec.holds(p, &path, &[c]), expected);
                    prop_assert_eq!(minimized.holds(p, &path, &[c]), expected);
                    prop_assert_eq!(eq.holds(p, &path, &[c]), expected);
                }
            }
        }
        // Relational stores agree too.
        for &c in &gen.consts {
            let expected = engine.holds_relational(gen.rel, &[c]);
            prop_assert_eq!(spec.holds_relational(gen.rel, &[c]), expected);
            prop_assert_eq!(eq.holds_relational(gen.rel, &[c]), expected);
        }
    }

    /// Four-way agreement on forward programs: the semi-naive engine, the
    /// naive bounded materialization, the graph specification and the
    /// equational specification answer identically on every atom up to
    /// `DEPTH` — and the engine's final pass is always a pure
    /// verification pass (absorbs nothing).
    #[test]
    fn four_way_agreement_on_forward_programs(seed in any::<u64>()) {
        let mut gen = random_program(
            GenConfig { forward_only: true, ..GenConfig::default() },
            seed,
        );
        let normal = normalize(&gen.program, &mut gen.interner);
        let pure = to_pure(&normal, &gen.db, &mut gen.interner).unwrap();
        let mat = BoundedMaterialization::run(&pure, DEPTH + 2, &mut gen.interner).unwrap();
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        engine.solve().unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let mut eq = EqSpec::from_graph(&spec);
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    let expected = engine.holds(p, &path, &[c]);
                    prop_assert_eq!(
                        mat.holds(p, &path, &[c]), expected,
                        "naive disagrees: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        spec.holds(p, &path, &[c]), expected,
                        "graph spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                    prop_assert_eq!(
                        eq.holds(p, &path, &[c]), expected,
                        "eq spec disagrees: {:?} {:?} {:?}", p, path, c
                    );
                }
            }
        }
        prop_assert_eq!(engine.stats().pass_deltas.last(), Some(&0));
        prop_assert_eq!(
            engine.stats().pass_deltas.iter().sum::<usize>(),
            engine.stats().delta_atoms
        );
    }

    /// Solving twice never changes anything: the second `solve()` on an
    /// already-solved engine is a strict no-op on every counter.
    #[test]
    fn resolve_is_idempotent(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        engine.solve().unwrap();
        let stats = engine.stats().clone();
        engine.solve().unwrap();
        prop_assert_eq!(engine.stats(), &stats);
    }

    /// The quotient interpretation of a random program is a model
    /// (Proposition 3.2, mechanically).
    #[test]
    fn quotient_is_model_on_random_programs(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        engine.solve().unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        prop_assert!(fundb_core::QuotientModel::new(&spec)
            .is_model_of(engine.compiled())
            .unwrap());
    }

    /// Minimization is idempotent and never enlarges the spec.
    #[test]
    fn minimization_is_idempotent(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let m1 = spec.minimized();
        let m2 = m1.minimized();
        prop_assert!(m1.cluster_count() <= spec.cluster_count());
        prop_assert_eq!(m1.cluster_count(), m2.cluster_count());
        prop_assert_eq!(m1.primary_size(), m2.primary_size());
    }

    /// Normalization preserves the semantics of the original predicates:
    /// the engine over the raw program and over the (explicitly)
    /// pre-normalized program answer identically.
    #[test]
    fn normalization_preserves_answers(seed in any::<u64>()) {
        let mut gen = random_program(GenConfig::default(), seed);
        let normal = normalize(&gen.program, &mut gen.interner);
        let mut e1 = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
        let mut e2 = Engine::build(&normal, &gen.db, &mut gen.interner).unwrap();
        e1.solve().unwrap();
        e2.solve().unwrap();
        for path in all_paths(&gen.funcs, DEPTH) {
            for &p in &gen.preds {
                for &c in &gen.consts {
                    prop_assert_eq!(
                        e1.holds(p, &path, &[c]),
                        e2.holds(p, &path, &[c])
                    );
                }
            }
        }
    }
}

/// Thread-count independence: the parallel semi-naive fixpoint is an
/// implementation detail, never an observable. Running the same program
/// under 1, 2, 4 and 8 worker threads must produce byte-identical stores
/// (same rows in the same insertion order) and identical statistics.
mod thread_determinism {
    use super::common::{all_paths, random_program, GenConfig};
    use fundb_core::Engine;
    use fundb_datalog as dl;
    use fundb_term::{Cst, Interner, Pred, Var};
    use proptest::prelude::*;

    const THREADS: [usize; 4] = [1, 2, 4, 8];

    /// Transitive closure of a chain: many rounds, non-trivial deltas.
    fn chain_tc(n: usize) -> (dl::Database, Vec<dl::Rule>) {
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        let rules = vec![
            dl::Rule::new(
                dl::Atom::new(path, vec![dl::Term::Var(x), dl::Term::Var(y)]),
                vec![dl::Atom::new(
                    edge,
                    vec![dl::Term::Var(x), dl::Term::Var(y)],
                )],
            ),
            dl::Rule::new(
                dl::Atom::new(path, vec![dl::Term::Var(x), dl::Term::Var(z)]),
                vec![
                    dl::Atom::new(path, vec![dl::Term::Var(x), dl::Term::Var(y)]),
                    dl::Atom::new(edge, vec![dl::Term::Var(y), dl::Term::Var(z)]),
                ],
            ),
        ];
        let mut db = dl::Database::new();
        let nodes: Vec<Cst> = (0..=n).map(|k| Cst(i.intern(&format!("v{k}")))).collect();
        for w in nodes.windows(2) {
            db.insert(edge, &[w[0], w[1]]);
        }
        (db, rules)
    }

    /// Every relation's rows, in insertion order — the byte-level observable.
    fn snapshot(db: &dl::Database) -> Vec<(usize, Vec<Vec<Cst>>)> {
        let mut rels: Vec<(usize, Vec<Vec<Cst>>)> = db
            .iter()
            .map(|(p, rel)| (p.index(), rel.rows().map(<[Cst]>::to_vec).collect()))
            .collect();
        rels.sort_by_key(|(p, _)| *p);
        rels
    }

    /// Deterministic (non-property) pin: row insertion order and every
    /// statistic are identical across thread counts, with the parallel
    /// threshold forced to 1 so even small rounds take the parallel path.
    #[test]
    fn row_order_and_stats_are_pinned_across_thread_counts() {
        let run = |threads: usize| {
            let (mut db, rules) = chain_tc(64);
            let plan = dl::DeltaPlan::new(&rules);
            let stats = dl::IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1)
                .run(&mut db, &rules, &plan)
                .unwrap();
            (snapshot(&db), stats)
        };
        let (rows1, stats1) = run(1);
        assert_eq!(stats1.derived, 64 * 65 / 2);
        for threads in &THREADS[1..] {
            let (rows_n, stats_n) = run(*threads);
            assert_eq!(rows_n, rows1, "row order diverged at {threads} threads");
            assert_eq!(stats_n, stats1, "stats diverged at {threads} threads");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Four-way agreement across thread counts: engines solved under
        /// 1, 2, 4 and 8 threads answer identically on every atom up to
        /// depth 4 and report identical [`EngineStats`].
        #[test]
        fn engine_answers_and_stats_are_thread_count_independent(seed in any::<u64>()) {
            let mut gen = random_program(
                GenConfig { forward_only: true, ..GenConfig::default() },
                seed,
            );
            let mut engines: Vec<Engine> = THREADS
                .iter()
                .map(|&n| {
                    let mut e =
                        Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
                    e.set_threads(Some(n));
                    e.solve().unwrap();
                    e
                })
                .collect();
            let (seq, rest) = engines.split_at_mut(1);
            for (k, e) in rest.iter_mut().enumerate() {
                prop_assert_eq!(
                    e.stats(),
                    seq[0].stats(),
                    "EngineStats diverged at {} threads", THREADS[k + 1]
                );
            }
            for path in all_paths(&gen.funcs, super::DEPTH) {
                for &p in &gen.preds {
                    for &c in &gen.consts {
                        let expected = seq[0].holds(p, &path, &[c]);
                        for (k, e) in rest.iter_mut().enumerate() {
                            prop_assert_eq!(
                                e.holds(p, &path, &[c]),
                                expected,
                                "answers diverged at {} threads: {:?} {:?} {:?}",
                                THREADS[k + 1], p, path, c
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Congruence-closure laws on random equation sets (the [DST80] substrate).
mod congruence_laws {
    use fundb_congruence::CongruenceClosure;
    use fundb_term::{Func, Interner};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (CongruenceClosure, Vec<Func>, Vec<Vec<Func>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut i = Interner::new();
        let funcs: Vec<Func> = (0..2).map(|k| Func(i.intern(&format!("f{k}")))).collect();
        let mut cc = CongruenceClosure::new();
        let mut terms: Vec<Vec<Func>> = Vec::new();
        for _ in 0..8 {
            let len = rng.gen_range(0..5usize);
            let t: Vec<Func> = (0..len).map(|_| funcs[rng.gen_range(0..2)]).collect();
            terms.push(t);
        }
        for _ in 0..3 {
            let a = terms[rng.gen_range(0..terms.len())].clone();
            let b = terms[rng.gen_range(0..terms.len())].clone();
            cc.equate_paths(&a, &b);
        }
        (cc, funcs, terms)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Reflexivity, symmetry, transitivity.
        #[test]
        fn equivalence_laws(seed in any::<u64>()) {
            let (mut cc, _, terms) = setup(seed);
            for a in &terms {
                prop_assert!(cc.congruent_paths(a, a));
            }
            for a in &terms {
                for b in &terms {
                    prop_assert_eq!(cc.congruent_paths(a, b), cc.congruent_paths(b, a));
                }
            }
            for a in &terms {
                for b in &terms {
                    for c in &terms {
                        if cc.congruent_paths(a, b) && cc.congruent_paths(b, c) {
                            prop_assert!(cc.congruent_paths(a, c));
                        }
                    }
                }
            }
        }

        /// Congruence: a ≅ b ⇒ f(a) ≅ f(b).
        #[test]
        fn congruence_law(seed in any::<u64>()) {
            let (mut cc, funcs, terms) = setup(seed);
            for a in &terms {
                for b in &terms {
                    if cc.congruent_paths(a, b) {
                        for &f in &funcs {
                            let mut fa = a.clone();
                            fa.push(f);
                            let mut fb = b.clone();
                            fb.push(f);
                            prop_assert!(cc.congruent_paths(&fa, &fb));
                        }
                    }
                }
            }
        }
    }
}

/// Parser round-trips: rendering a parsed rule and re-parsing it is stable.
mod parser_roundtrip {
    use fundb_parser::Workspace;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn display_parse_display_is_identity(
            head_off in 0usize..3,
            body_extra in 0usize..2,
            use_rel in any::<bool>(),
        ) {
            let head_term = match head_off {
                0 => "t".to_string(),
                n => format!("t+{n}"),
            };
            let mut body = vec!["P(t, x)".to_string()];
            for k in 0..body_extra {
                body.push(format!("Q{k}(t, x)"));
            }
            if use_rel {
                body.push("R(x)".to_string());
            }
            let src = format!("{} -> P({head_term}, x).\nP(0, A).", body.join(", "));
            let mut ws1 = Workspace::new();
            ws1.parse(&src).unwrap();
            let rendered: Vec<String> = ws1
                .program
                .rules
                .iter()
                .map(|r| fundb_core::program::display_rule(r, &ws1.interner).to_string())
                .collect();
            // Re-parse the rendered rules (plus the original facts).
            let mut ws2 = Workspace::new();
            ws2.parse(&format!("{}\nP(0, A).", rendered.join("\n"))).unwrap();
            let rendered2: Vec<String> = ws2
                .program
                .rules
                .iter()
                .map(|r| fundb_core::program::display_rule(r, &ws2.interner).to_string())
                .collect();
            prop_assert_eq!(rendered, rendered2);
        }
    }
}

/// The temporal fast path agrees with the general engine on random forward
/// temporal programs, and serialization round-trips preserve every answer.
mod temporal_and_io {
    use super::common::{all_paths, random_program, GenConfig};
    use fundb_core::{read_spec, write_spec, Engine, GraphSpec, SpecBundle};
    use fundb_temporal::{classify, TemporalClass, TemporalSpec};
    use fundb_term::FxHashMap;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Single-symbol forward programs: lasso answers == engine answers.
        #[test]
        fn temporal_fast_path_matches_engine(seed in any::<u64>()) {
            let mut gen = random_program(
                GenConfig { funcs: 1, forward_only: true, ..GenConfig::default() },
                seed,
            );
            prop_assume!(
                classify(&gen.program, &gen.db, &gen.interner) == TemporalClass::Forward
            );
            let spec =
                TemporalSpec::compute(&gen.program, &gen.db, &mut gen.interner).unwrap();
            let mut engine =
                Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
            engine.solve().unwrap();
            let f = gen.funcs[0];
            for n in 0..(2 * (spec.rho() + spec.lambda()) + 4) {
                for &p in &gen.preds {
                    for &c in &gen.consts {
                        prop_assert_eq!(
                            spec.holds(p, n as u64, &[c]),
                            engine.holds(p, &vec![f; n], &[c]),
                            "seed {} pred {:?} n {}", seed, p, n
                        );
                    }
                }
            }
        }

        /// write_spec → read_spec preserves membership on random programs.
        #[test]
        fn spec_io_round_trips(seed in any::<u64>()) {
            let mut gen = random_program(GenConfig::default(), seed);
            let mut engine =
                Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
            let spec = GraphSpec::from_engine(&mut engine).unwrap();
            let text = write_spec(
                &SpecBundle { spec: spec.clone(), sym_map: FxHashMap::default() },
                &gen.interner,
            ).unwrap();
            let mut fresh = fundb_term::Interner::new();
            let bundle = read_spec(&text, &mut fresh).unwrap();
            // Translate symbols through names.
            for path in all_paths(&gen.funcs, 3) {
                let path2: Vec<fundb_term::Func> = path
                    .iter()
                    .map(|f| fundb_term::Func(
                        fresh.get(gen.interner.resolve(f.sym())).unwrap_or_else(|| {
                            fresh.intern(gen.interner.resolve(f.sym()))
                        }),
                    ))
                    .collect();
                for &p in &gen.preds {
                    let p2 = match fresh.get(gen.interner.resolve(p.sym())) {
                        Some(s) => fundb_term::Pred(s),
                        None => continue, // predicate absent from the spec: empty everywhere
                    };
                    for &c in &gen.consts {
                        let Some(c2) = fresh.get(gen.interner.resolve(c.sym())) else {
                            prop_assert!(!spec.holds(p, &path, &[c]));
                            continue;
                        };
                        prop_assert_eq!(
                            spec.holds(p, &path, &[c]),
                            bundle.spec.holds(p2, &path2, &[fundb_term::Cst(c2)]),
                            "seed {} path {:?}", seed, path
                        );
                    }
                }
            }
        }
    }
}

/// Theorem 3.1 / Lemma 3.1, empirically: state equivalence on deep terms is
/// a congruence — deep terms with equal slices have successors with equal
/// slices, for every function symbol.
mod congruence_theorem {
    use super::common::{all_paths, random_program, GenConfig};
    use fundb_core::{Engine, GraphSpec};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        #[test]
        fn deep_state_equivalence_is_a_congruence(seed in any::<u64>()) {
            let mut gen = random_program(GenConfig::default(), seed);
            let mut engine =
                Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
            engine.solve().unwrap();
            let c = engine.compiled().c;
            let spec = GraphSpec::from_engine(&mut engine).unwrap();
            let paths: Vec<_> = all_paths(&gen.funcs, 4)
                .into_iter()
                .filter(|p| p.len() > c)
                .collect();
            for p1 in &paths {
                for p2 in &paths {
                    if engine.state_of_path(p1) != engine.state_of_path(p2) {
                        continue;
                    }
                    for &f in &gen.funcs {
                        let (mut q1, mut q2) = (p1.clone(), p2.clone());
                        q1.push(f);
                        q2.push(f);
                        prop_assert_eq!(
                            engine.state_of_path(&q1),
                            engine.state_of_path(&q2),
                            "seed {}: {:?} ∼ {:?} but f-successors differ", seed, p1, p2
                        );
                    }
                }
            }
            // And the finite representation theorem itself: finitely many
            // clusters (trivially true but asserts the machinery agrees).
            prop_assert!(spec.cluster_count() >= 1);
        }
    }
}

/// Full syntax round trip: rendering a random core program through the
/// concrete syntax and re-elaborating it yields a semantically identical
/// program (same engine answers).
mod syntax_roundtrip {
    use super::common::{all_paths, random_program, GenConfig};
    use fundb_core::program::{display_atom, display_rule};
    use fundb_core::Engine;
    use fundb_parser::Workspace;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn render_reparse_preserves_semantics(seed in any::<u64>()) {
            let mut gen = random_program(GenConfig::default(), seed);
            // Render to concrete syntax.
            let mut src = String::new();
            for r in &gen.program.rules {
                src.push_str(&display_rule(r, &gen.interner).to_string());
                src.push('\n');
            }
            for f in &gen.db.facts {
                src.push_str(&format!("{}.\n", display_atom(f, &gen.interner)));
            }
            // Re-parse and solve.
            let mut ws = Workspace::new();
            ws.parse(&src).expect("rendered program re-parses");
            let spec = ws.graph_spec().expect("still domain-independent");
            // Solve the original.
            let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
            engine.solve().unwrap();
            // Compare answers, translating symbols by name.
            for path in all_paths(&gen.funcs, 3) {
                // A symbol the program never uses cannot appear in the
                // rendered source; terms over it are not in the LFP at all.
                let translated: Option<Vec<fundb_term::Func>> = path
                    .iter()
                    .map(|f| {
                        ws.interner
                            .get(gen.interner.resolve(f.sym()))
                            .map(fundb_term::Func)
                    })
                    .collect();
                let Some(path2) = translated else {
                    for &p in &gen.preds {
                        for &c in &gen.consts {
                            prop_assert!(!engine.holds(p, &path, &[c]));
                        }
                    }
                    continue;
                };
                for &p in &gen.preds {
                    let Some(p2) = ws.interner.get(gen.interner.resolve(p.sym())) else {
                        continue;
                    };
                    for &c in &gen.consts {
                        let Some(c2) = ws.interner.get(gen.interner.resolve(c.sym())) else {
                            prop_assert!(!engine.holds(p, &path, &[c]));
                            continue;
                        };
                        prop_assert_eq!(
                            engine.holds(p, &path, &[c]),
                            spec.holds(fundb_term::Pred(p2), &path2, &[fundb_term::Cst(c2)]),
                            "seed {} path {:?}", seed, path
                        );
                    }
                }
            }
        }

        /// Fuzzing the spec reader: single-line drops/duplications of a valid
        /// file never panic.
        #[test]
        fn spec_reader_survives_mutations(seed in any::<u64>()) {
            let mut gen = random_program(GenConfig::default(), seed);
            let mut engine = Engine::build(&gen.program, &gen.db, &mut gen.interner).unwrap();
            let spec = fundb_core::GraphSpec::from_engine(&mut engine).unwrap();
            let text = fundb_core::write_spec(
                &fundb_core::SpecBundle { spec, sym_map: Default::default() },
                &gen.interner,
            ).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            for k in 0..lines.len() {
                let dropped: String = lines
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != k)
                    .map(|(_, l)| format!("{l}\n"))
                    .collect();
                let mut i = fundb_term::Interner::new();
                let _ = fundb_core::read_spec(&dropped, &mut i);
                let duped: String = lines
                    .iter()
                    .enumerate()
                    .flat_map(|(j, l)| {
                        let n = if j == k { 2 } else { 1 };
                        std::iter::repeat_n(format!("{l}\n"), n)
                    })
                    .collect();
                let mut i = fundb_term::Interner::new();
                let _ = fundb_core::read_spec(&duped, &mut i);
            }
        }
    }
}
