//! Integration tests reproducing every worked example in the paper.
//!
//! Each test cites the section it reproduces and asserts the *exact* outputs
//! the paper states (cluster structure, slices, equations, membership
//! answers), modulo the documented conservative start depth of our general
//! Algorithm Q (bisimulation minimization recovers the paper's coarser
//! clusters where they differ).

use fundb_core::{analysis, normalize, to_pure, CongrForm, EqSpec, QuotientModel};
use fundb_parser::Workspace;
use fundb_temporal::{classify, TemporalClass, TemporalSpec};

/// §1: the introductory example. "The answer to the query
/// Q = {(t,x) : Meets(t,x)} contains Meets(0,Tony), Meets(1,Jan),
/// Meets(2,Tony) … and is infinite. … there are two such classes:
/// a1 = {0,2,4,…} and a2 = {1,3,5,…}. … We choose a representative term for
/// each class, here 0 and 1, and store its truth assignment as the relation
/// Meets(0,Tony). Meets(1,Jan)."
#[test]
fn section_1_meets() {
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap().minimized();

    // Exactly two classes after minimization: even days (with Tony) and odd
    // days (with Jan).
    assert_eq!(spec.cluster_count(), 2);
    for n in 0..60usize {
        let who = if n % 2 == 0 { "Tony" } else { "Jan" };
        let other = if n % 2 == 0 { "Jan" } else { "Tony" };
        assert!(ws.holds(&spec, &format!("Meets({n}, {who})")).unwrap());
        assert!(!ws.holds(&spec, &format!("Meets({n}, {other})")).unwrap());
    }

    // "Vx, Meets(O,x) ≡ Meets(2,x) ≡ Meets(4,x) …": the representative
    // slices store one truth assignment per class.
    let rep0 = spec.representative_of(&[]).unwrap();
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    let rep2 = spec.representative_of(&[plus1, plus1]).unwrap();
    assert_eq!(rep0, rep2);

    // The fixpoint is infinite — [RBS87] would disallow the query.
    let report = analysis::analyze(&spec);
    assert!(!report.finite);

    // "the function symbol (+l) … is represented by a finite function f:
    // f(0)=1. f(1)=0." — the successor graph is the 2-cycle.
    let odd = spec.representative_of(&[plus1]).unwrap();
    assert_eq!(spec.successor[&(rep0, plus1)], odd);
    assert_eq!(spec.successor[&(odd, plus1)], rep0);

    // "Alternatively, the congruence is represented equationally … R
    // contains 0 ≅ 2": on the minimized spec the first merge equation
    // relates a term of the even class to the representative 0-class.
    let temporal = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    assert_eq!(temporal.equation(), (0, 2));
}

/// §2.3: the domain-dependence examples. `P(s) → P(g(s))` and
/// `P(s), R(x) → P(g(s,x))` are domain-independent; `R(x) → P(s)` is not.
#[test]
fn section_2_3_domain_independence() {
    let mut ok = Workspace::new();
    ok.parse("P(s) -> P(g(s)).\nP(0).").unwrap();
    assert!(ok.graph_spec().is_ok());

    let mut ok2 = Workspace::new();
    ok2.parse("P(s), R(x) -> P(g(s, x)).\nP(0). R(A).").unwrap();
    assert!(ok2.graph_spec().is_ok());

    let mut bad = Workspace::new();
    bad.parse("functional P/1.\nR(x) -> P(s).\nR(A).").unwrap();
    let err = bad.graph_spec().unwrap_err();
    assert!(matches!(err, fundb_core::Error::NotRangeRestricted { .. }));
}

/// §3.4: the list-processing worked example, end to end. The paper computes
/// Active = {a, b, ab}, representative terms {0, a, b, ab}, the slices
/// L[0]=B(-part), L[a]={Member(a,a)}, L[b]={Member(b,b)},
/// L[ab]={Member(ab,a), Member(ab,b)}, and the successor mappings
/// f_a(a)=a, f_b(a)=ab, f_a(b)=ab, f_b(b)=b, f_a(ab)=f_b(ab)=ab.
#[test]
fn section_3_4_lists_worked_example() {
    let mut ws = Workspace::new();
    ws.parse(
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         P(y), Member(s, x) -> Member(ext(s, y), x).
         P(A). P(B).",
    )
    .unwrap();

    // The transformation introduces exta/extb (here ext[A]/ext[B]).
    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
    assert_eq!(pure.sym_map.len(), 2);

    let spec = ws.graph_spec().unwrap().minimized();
    assert_eq!(
        spec.cluster_count(),
        4,
        "paper: representatives 0, a, b, ab"
    );

    let exta = fundb_term::Func(ws.interner.get("ext[A]").unwrap());
    let extb = fundb_term::Func(ws.interner.get("ext[B]").unwrap());
    let zero = spec.representative_of(&[]).unwrap();
    let a = spec.representative_of(&[exta]).unwrap();
    let b = spec.representative_of(&[extb]).unwrap();
    let ab = spec.representative_of(&[exta, extb]).unwrap();
    assert_eq!(
        {
            let mut v = vec![zero, a, b, ab];
            v.dedup();
            v.len()
        },
        4
    );

    // Successor mappings exactly as in the paper.
    assert_eq!(spec.successor[&(a, exta)], a);
    assert_eq!(spec.successor[&(a, extb)], ab);
    assert_eq!(spec.successor[&(b, exta)], ab);
    assert_eq!(spec.successor[&(b, extb)], b);
    assert_eq!(spec.successor[&(ab, exta)], ab);
    assert_eq!(spec.successor[&(ab, extb)], ab);

    // Slices as the paper lists them.
    let slice = |node| {
        let mut v: Vec<String> = spec
            .slice(node)
            .map(|(p, args)| {
                format!(
                    "{}({})",
                    ws.interner.resolve(p.sym()),
                    args.iter()
                        .map(|c| ws.interner.resolve(c.sym()))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(slice(zero), Vec::<String>::new());
    assert_eq!(slice(a), vec!["Member(A)"]);
    assert_eq!(slice(b), vec!["Member(B)"]);
    assert_eq!(slice(ab), vec!["Member(A)", "Member(B)"]);

    // "Therefore a ≅ aa, b ≅ bb, ab ≅ ba, ab ≅ aba and ab ≅ abb":
    // congruences checkable through the equational specification.
    let mut eq = EqSpec::from_graph(&spec);
    assert!(eq.congruent(&[exta], &[exta, exta]));
    assert!(eq.congruent(&[extb], &[extb, extb]));
    assert!(eq.congruent(&[exta, extb], &[extb, exta]));
    assert!(eq.congruent(&[exta, extb], &[exta, extb, exta]));
    assert!(eq.congruent(&[exta, extb], &[exta, extb, extb]));
    assert!(!eq.congruent(&[exta], &[extb]));

    // L[aba] = {Member(aba,a), Member(aba,b)} etc. — the slices the paper
    // tabulates, via membership.
    assert!(ws
        .holds(&spec, "Member(ext(ext(ext(0,A),B),A), A)")
        .unwrap());
    assert!(ws
        .holds(&spec, "Member(ext(ext(ext(0,A),B),A), B)")
        .unwrap());
    assert!(ws.holds(&spec, "Member(ext(ext(0,B),B), B)").unwrap());
    assert!(!ws.holds(&spec, "Member(ext(ext(0,B),B), A)").unwrap());
}

/// §3.5: the Even example. "We will have B = D and R = {(0,2)} …
/// In particular, every tuple Even(u) such that (u,0) ∈ Cl(R) belongs to
/// LFP (soundness). The opposite is also true (completeness). …
/// try to verify whether Even(4) and Even(3): (0,4) ∈ Cl(R) and
/// (0,3) ∉ Cl(R). We obtain (1,3) ∈ Cl(R) but not (0,3)."
#[test]
fn section_3_5_even() {
    let mut ws = Workspace::new();
    ws.parse("Even(t) -> Even(t+2).\nEven(0).").unwrap();

    // The temporal specification reproduces R = {(0,2)} exactly.
    let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    assert_eq!(spec.class, TemporalClass::Forward);
    assert_eq!(spec.equation(), (0, 2));
    // B = D: the prefix is empty and the cycle stores exactly one tuple
    // (Even at phase 0) — one stored tuple, as in the paper's B.
    assert_eq!(spec.primary_size(), 1);

    // Membership tests from the paper.
    let even = fundb_term::Pred(ws.interner.get("Even").unwrap());
    assert!(spec.holds(even, 4, &[]));
    assert!(!spec.holds(even, 3, &[]));
    assert!(spec.holds(even, 0, &[]));
    assert!(spec.holds(even, 123_456, &[]));
    assert!(!spec.holds(even, 123_457, &[]));

    // The general pipeline agrees (its congruence relates (1,3) but keeps
    // the shallow 0 in B directly — same answers).
    let mut eq = ws.eq_spec().unwrap();
    assert!(ws.holds_eq(&mut eq, "Even(4)").unwrap());
    assert!(!ws.holds_eq(&mut eq, "Even(3)").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    assert!(eq.congruent(&[plus1], &[plus1, plus1, plus1]));
    assert!(!eq.congruent(&[], &[plus1, plus1, plus1]));
}

/// §1 (situation-calculus planning): "there are only finitely many
/// positions that the robot can assume … On every possible infinite path,
/// there must be a cycle."
#[test]
fn section_1_planning() {
    let mut ws = Workspace::new();
    ws.parse(
        "At(s, p1), Connected(p1, p2) -> At(move(s, p1, p2), p2).
         At(0, P0).
         Connected(P0, P1). Connected(P1, P0). Connected(P1, P2). Connected(P2, P1).",
    )
    .unwrap();
    let spec = ws.graph_spec().unwrap();
    // Finitely many clusters despite infinitely many plans.
    assert!(spec.cluster_count() <= 16);
    let report = analysis::analyze(&spec);
    assert!(!report.finite, "the plan space is infinite");

    // Concrete plan checks.
    assert!(ws
        .holds(&spec, "At(move(move(0,P0,P1),P1,P2), P2)")
        .unwrap());
    assert!(!ws.holds(&spec, "At(move(0,P0,P1), P2)").unwrap());
    // A cycle: going P0→P1→P0 behaves like not moving at all.
    let a = "At(move(move(0,P0,P1),P1,P0), P0)";
    assert!(ws.holds(&spec, a).unwrap());
}

/// Appendix: the normalization example `P(s), W(x) → P(g(f(s),x))` produces
/// an equivalent set of normal rules over fresh predicates.
#[test]
fn appendix_normalization() {
    let mut ws = Workspace::new();
    ws.parse("P(s), W(x) -> P(g(f(s), x)).\nP(0). W(A).")
        .unwrap();
    let normal = normalize(&ws.program, &mut ws.interner);
    assert!(normal.is_normal());
    assert!(normal.rules.len() >= 2, "auxiliary predicates introduced");

    // Equivalence with respect to the original predicates: membership in
    // the specification matches direct expectations.
    let spec = ws.graph_spec().unwrap();
    assert!(ws.holds(&spec, "P(0)").unwrap());
    assert!(ws.holds(&spec, "P(g(f(0), A))").unwrap());
    assert!(ws.holds(&spec, "P(g(f(g(f(0), A)), A))").unwrap());
    assert!(!ws.holds(&spec, "P(f(0))").unwrap());
}

/// §3.6: the canonical form. LFP(Z, D) = LFP(CONGR, B ∪ R).
#[test]
fn section_3_6_congr() {
    let mut ws = Workspace::new();
    ws.parse("Even(t) -> Even(t+2).\nEven(0).").unwrap();
    let spec = ws.graph_spec().unwrap();
    let eq = EqSpec::from_graph(&spec);
    let congr = CongrForm::build(&eq, 10, &mut ws.interner).unwrap();
    let even = fundb_term::Pred(ws.interner.get("Even").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    for n in 0..=10usize {
        assert_eq!(
            congr.holds(even, &vec![plus1; n], &[]),
            spec.holds(even, &vec![plus1; n], &[]),
            "CONGR and the graph spec agree at {n}"
        );
    }
}

/// Proposition 3.2 on every example program of the paper: the quotient
/// interpretation is a model.
#[test]
fn proposition_3_2_quotient_models() {
    for src in [
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
        "Even(t) -> Even(t+2).\nEven(0).",
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         P(y), Member(s, x) -> Member(ext(s, y), x).
         P(A). P(B).",
        "At(s, p1), Connected(p1, p2) -> At(move(s, p1, p2), p2).
         At(0, P0). Connected(P0, P1). Connected(P1, P0).",
    ] {
        let mut ws = Workspace::new();
        ws.parse(src).unwrap();
        let mut engine = ws.engine().unwrap();
        engine.solve().unwrap();
        let spec = fundb_core::GraphSpec::from_engine(&mut engine).unwrap();
        assert!(
            QuotientModel::new(&spec)
                .is_model_of(engine.compiled())
                .unwrap(),
            "quotient model check failed for:\n{src}"
        );
    }
}

/// §4 (temporal remark): "In the case of temporal terms, the relation R
/// contains just one pair capturing the periodicity of the least fixpoint.
/// The set of tuples B can be, however, exponentially sized." — a schedule
/// whose hyper-period is the lcm of its parts.
#[test]
fn section_4_temporal_single_pair() {
    let mut ws = Workspace::new();
    ws.parse(
        "A(t) -> A(t+2).\nB(t) -> B(t+3).\nC(t) -> C(t+5).
         A(0). B(0). C(0).",
    )
    .unwrap();
    assert_eq!(
        classify(&ws.program, &ws.db, &ws.interner),
        TemporalClass::Forward
    );
    let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    // One pair; the period is lcm(2,3,5) = 30.
    assert_eq!(spec.lambda(), 30);
    assert_eq!(spec.equation(), (0, 30));
    let a = fundb_term::Pred(ws.interner.get("A").unwrap());
    let b = fundb_term::Pred(ws.interner.get("B").unwrap());
    let c = fundb_term::Pred(ws.interner.get("C").unwrap());
    for n in 0..120u64 {
        assert_eq!(spec.holds(a, n, &[]), n % 2 == 0);
        assert_eq!(spec.holds(b, n, &[]), n % 3 == 0);
        assert_eq!(spec.holds(c, n, &[]), n % 5 == 0);
    }
}

/// §1, instrumented: the semi-naive engine converges on the Meets example
/// in two global passes, and the second pass is a pure verification pass
/// that absorbs nothing. Every counter below is deterministic (work lists
/// are sorted and the hash maps have no random state), so the exact values
/// are pinned as a regression guard for the delta plans.
#[test]
fn section_1_meets_engine_stats() {
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let mut engine = fundb_core::Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
    engine.solve().unwrap();
    let stats = engine.stats().clone();
    assert_eq!(stats.passes, 2);
    assert_eq!(stats.pass_deltas, vec![3, 0]);
    assert_eq!(stats.pass_deltas.iter().sum::<usize>(), stats.delta_atoms);
    assert_eq!(stats.delta_atoms, 3);
    assert_eq!(stats.join_probes, 6);
    assert_eq!(stats.index_hits, 3);
    assert_eq!(stats.derived_rows, 3);
    assert_eq!(stats.top_evals, 2);

    // Solving an already-solved engine is a strict no-op: no passes, no
    // probes, no deltas.
    engine.solve().unwrap();
    assert_eq!(engine.stats(), &stats);
}

/// Theorem 5.1, instrumented: after `add_fact_functional` the next
/// `solve()` derives only the consequences of the new fact. The re-solve's
/// extra work (delta atoms, join probes) is strictly smaller than what a
/// fresh build over the extended database spends, and an update with an
/// already-known fact costs nothing at all.
#[test]
fn theorem_5_1_incremental_solve_bounded_delta() {
    let mut ws = Workspace::new();
    ws.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Sees(t, x), Next(x, y) -> Sees(t+1, y).
         Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let mut engine = fundb_core::Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
    engine.solve().unwrap();
    let before = engine.stats().clone();
    assert_eq!(before.pass_deltas, vec![3, 0]);

    // Seed the dormant Sees chain with one fact and re-solve.
    let sees = fundb_term::Pred(ws.interner.get("Sees").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    let tony = fundb_term::Cst(ws.interner.get("Tony").unwrap());
    let jan = fundb_term::Cst(ws.interner.get("Jan").unwrap());
    engine
        .add_fact_functional(sees, &[], &[tony], &ws.interner)
        .unwrap();
    engine.solve().unwrap();

    // The consequences are there: Sees alternates exactly like Meets.
    for n in 0..8usize {
        let path = vec![plus1; n];
        let (who, other) = if n % 2 == 0 { (tony, jan) } else { (jan, tony) };
        assert!(engine.holds(sees, &path, &[who]));
        assert!(!engine.holds(sees, &path, &[other]));
    }

    // …and they are all the re-solve derived: the new passes absorbed 5
    // atoms (the Sees chain plus the refreshed memo seeds), strictly less
    // than a fresh build over the extended database pays.
    let after = engine.stats().clone();
    assert_eq!(after.pass_deltas, vec![3, 0, 5, 0]);
    assert_eq!(after.pass_deltas.last(), Some(&0));

    let mut ws2 = Workspace::new();
    ws2.parse(
        "Meets(t, x), Next(x, y) -> Meets(t+1, y).
         Sees(t, x), Next(x, y) -> Sees(t+1, y).
         Meets(0, Tony). Sees(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
    )
    .unwrap();
    let mut fresh = fundb_core::Engine::build(&ws2.program, &ws2.db, &mut ws2.interner).unwrap();
    fresh.solve().unwrap();
    let incr_atoms = after.delta_atoms - before.delta_atoms;
    let incr_probes = after.join_probes - before.join_probes;
    assert!(incr_atoms < fresh.stats().delta_atoms);
    assert!(incr_probes < fresh.stats().join_probes);

    // Re-adding a fact the model already contains does not even mark the
    // engine dirty: the next solve() is free.
    let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
    engine
        .add_fact_functional(meets, &[], &[tony], &ws.interner)
        .unwrap();
    engine.solve().unwrap();
    assert_eq!(engine.stats(), &after);
}
