//! Differential fuzz harness over generated scenario families (PR 6).
//!
//! Each seed drives `fundb_bench::scenariogen` to produce one scenario of
//! a family (skewed fan-out, dense cross-products, cyclic rule
//! dependencies, bounded derivation depth, temporal lassos) and asserts
//! the full agreement lattice on it:
//!
//! * compiled semi-naive ≡ compiled naive ≡ the PR 1/2 interpreter,
//! * cost-planned ≡ greedy-planned (the planner may change probe order,
//!   never answers),
//! * byte-identical rows *and* statistics at 1/2/4/8 threads for a fixed
//!   plan,
//! * governed runs that hit a budget stop on a completed-round prefix of
//!   the ungoverned run,
//! * the parsed text through engine → `GraphSpec` → frozen serving
//!   answers membership exactly like the datalog fixpoint, at every batch
//!   thread count,
//! * temporal scenarios: `TemporalSpec` ≡ `GraphSpec` ≡ frozen spec on
//!   points and whole intervals, far beyond the lasso prefix,
//! * goal-directed (magic-set) rewritten evaluation ≡ unrewritten full
//!   materialization on ground, partially-bound, and all-free goals, with
//!   byte-identical rows and statistics at 1/2/4/8 overlay threads (PR 7),
//! * adaptive execution (PR 8): adaptive ≡ planned-once ≡ greedy ≡
//!   interpreter answers, thread-determinism with re-planning and
//!   shared-prefix grouping on, bloom pre-probe soundness, and the cyclic
//!   probe-ratio ≥ 1.0 hysteresis pin,
//! * incremental retraction (PR 10): replaying a seeded churn script
//!   (retract/re-insert mix) through `Database::retract_fact` plus one-row
//!   forward deltas agrees after *every* op with rebuild-from-scratch and
//!   the naive oracle, is byte-identical (rows *and* statistics) at
//!   1/2/4/8 threads, rolls a cancelled retraction back whole, and keeps
//!   composite bloom pre-probes sound over tombstones.
//!
//! Case counts (48 × 7 relational families + 24 temporal = 360 scenarios)
//! keep the default `cargo test` run above the 200-scenario floor;
//! `PROPTEST_CASES` scales the budget up in the nightly job.

use fundb_bench::scenariogen::{self, Scenario, TemporalScenario, RELATIONAL_FAMILIES};
use fundb_core::ServeQuery;
use fundb_datalog as dl;
use fundb_parser::Workspace;
use fundb_temporal::TemporalSpec;
use fundb_term::{Cst, Func, Pred, Var};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// `(pred index, rows-in-insertion-order)` per relation — the shape every
/// determinism/prefix comparison below works over.
type Dump = Vec<(usize, Vec<Vec<usize>>)>;

/// Per-predicate rows in insertion order, as plain indices: the
/// byte-determinism and prefix checks compare these, not just sorted
/// answer sets.
fn row_lists(db: &dl::Database) -> Dump {
    let mut out: Dump = db
        .iter()
        .map(|(p, rel)| {
            let rows = rel
                .rows()
                .map(|r| r.iter().map(|c| c.index()).collect())
                .collect();
            (p.index(), rows)
        })
        .collect();
    out.sort_by_key(|&(p, _)| p);
    out
}

/// Asserts `partial` is a completed-round prefix of `full`: every relation
/// present in `partial` holds a prefix (in insertion order) of the same
/// relation's rows in `full`.
fn assert_prefix(
    partial: &[(usize, Vec<Vec<usize>>)],
    full: &[(usize, Vec<Vec<usize>>)],
    ctx: &str,
) {
    for (p, rows) in partial {
        let fr = full
            .iter()
            .find(|(fp, _)| fp == p)
            .map(|(_, r)| r.as_slice())
            .unwrap_or(&[]);
        assert!(
            rows.len() <= fr.len() && rows.as_slice() == &fr[..rows.len()],
            "{ctx}: governed rows are not a prefix of the full run (pred {p})"
        );
    }
}

fn check_relational(s: &Scenario) {
    let ctx = format!("{} seed {}", s.family, s.seed);

    // Compiled semi-naive under the cost planner (the `evaluate` default).
    let mut compiled = s.db.clone();
    dl::evaluate(&mut compiled, &s.rules).unwrap_or_else(|e| panic!("{ctx}: evaluate: {e:?}"));
    let dump = compiled.dump(&s.interner);

    // Compiled naive.
    let mut naive = s.db.clone();
    dl::evaluate_naive(&mut naive, &s.rules).unwrap();
    assert_eq!(dump, naive.dump(&s.interner), "{ctx}: naive disagrees");

    // The PR 1/2 interpreter oracle.
    let mut interp = s.db.clone();
    dl::evaluate_naive_interpreted(&mut interp, &s.rules);
    assert_eq!(
        dump,
        interp.dump(&s.interner),
        "{ctx}: interpreter disagrees"
    );

    // Greedy-planned (planner off) answers must match cost-planned.
    let mut greedy = s.db.clone();
    let greedy_plan = dl::DeltaPlan::new(&s.rules);
    dl::IncrementalEval::new()
        .run(&mut greedy, &s.rules, &greedy_plan)
        .unwrap();
    assert_eq!(
        dump,
        greedy.dump(&s.interner),
        "{ctx}: greedy plan disagrees"
    );

    // Byte-determinism: fixed plan, 1/2/4/8 threads, forced-parallel. The
    // default executor is adaptive (PR 8): re-planning and shared-prefix
    // grouping must leave rows *and* statistics byte-identical at every
    // thread count.
    let plan = dl::DeltaPlan::planned(&s.rules, &s.db);
    let mut reference: Option<(Dump, dl::EvalStats)> = None;
    for threads in THREADS {
        let mut db = s.db.clone();
        let stats = dl::IncrementalEval::new()
            .with_threads(threads)
            .with_parallel_threshold(1)
            .run(&mut db, &s.rules, &plan)
            .unwrap();
        let rows = row_lists(&db);
        match &reference {
            None => reference = Some((rows, stats)),
            Some((r, st)) => {
                assert_eq!(&rows, r, "{ctx}: rows differ at {threads} threads");
                assert_eq!(&stats, st, "{ctx}: stats differ at {threads} threads");
            }
        }
    }
    let full_rows = row_lists(&compiled);

    // Adaptive-execution differential (PR 8): with adaptivity switched off
    // the same plan must reproduce the planned-once answers (and report no
    // adaptive activity), and both modes must agree with every arm above.
    {
        let mut once = s.db.clone();
        let stats = dl::IncrementalEval::new()
            .with_adaptive(false)
            .with_parallel_threshold(1)
            .run(&mut once, &s.rules, &plan)
            .unwrap();
        assert_eq!(
            dump,
            once.dump(&s.interner),
            "{ctx}: planned-once (adaptive off) disagrees"
        );
        assert_eq!(
            (stats.replans, stats.shared_prefix_hits),
            (0, 0),
            "{ctx}: adaptive counters moved with adaptivity off"
        );
    }

    // Governed runs stop on completed-round prefixes.
    for rounds in [1usize, 2] {
        let mut db = s.db.clone();
        let gov = dl::Governor::new(dl::Budget::unlimited().with_max_rounds(rounds));
        match dl::evaluate_governed(&mut db, &s.rules, &gov) {
            Ok(_) => assert_eq!(row_lists(&db), full_rows, "{ctx}: governed Ok differs"),
            Err(dl::EvalError::BudgetExhausted { .. }) => {
                assert_prefix(&row_lists(&db), &full_rows, &ctx);
            }
            Err(e) => panic!("{ctx}: unexpected governed error {e:?}"),
        }
    }

    // Goal-directed (magic-set) evaluation must agree with the fixpoint.
    check_demand(s, &compiled, &ctx);

    // The same program through text → parser → engine → frozen serving.
    let mut ws = Workspace::new();
    ws.parse(&s.text)
        .unwrap_or_else(|e| panic!("{ctx}: parse: {e:?}"));
    let spec = ws
        .graph_spec()
        .unwrap_or_else(|e| panic!("{ctx}: graph_spec: {e:?}"));
    let frozen = spec.clone().freeze();
    let mut queries = Vec::with_capacity(s.queries.len());
    let mut expected = Vec::with_capacity(s.queries.len());
    for (pname, argnames) in &s.queries {
        // Resolve per representation; every query symbol appears in both.
        let dp = Pred(s.interner.get(pname).unwrap());
        let drow: Vec<Cst> = argnames
            .iter()
            .map(|a| Cst(s.interner.get(a).unwrap()))
            .collect();
        let truth = compiled.contains(dp, &drow);
        let wp = Pred(ws.interner.get(pname).unwrap());
        let wrow: Vec<Cst> = argnames
            .iter()
            .map(|a| Cst(ws.interner.get(a).unwrap()))
            .collect();
        assert_eq!(
            spec.holds_relational(wp, &wrow),
            truth,
            "{ctx}: GraphSpec disagrees on {pname}({argnames:?})"
        );
        // And the one-off conjunctive query API over the fixpoint.
        let body = [dl::Atom::new(
            dp,
            drow.iter().map(|&c| dl::Term::Const(c)).collect(),
        )];
        assert_eq!(
            !dl::query(&compiled, &body, &[]).unwrap().is_empty(),
            truth,
            "{ctx}: dl::query disagrees on {pname}({argnames:?})"
        );
        queries.push(ServeQuery::Relational {
            pred: wp,
            args: wrow,
        });
        expected.push(truth);
    }
    for threads in THREADS {
        assert_eq!(
            frozen.answer_batch_threads(&queries, threads),
            expected,
            "{ctx}: frozen batch disagrees at {threads} threads"
        );
    }
}

/// Goal-directed differential (PR 7): the magic-set rewrite must answer
/// every binding pattern of the scenario's query workload — fully ground,
/// first-argument-bound, and all-free — exactly like the materialized
/// fixpoint, and the overlay evaluation must be byte-deterministic (rows
/// *and* statistics) across thread counts with the parallel path forced.
fn check_demand(s: &Scenario, compiled: &dl::Database, ctx: &str) {
    // Every family's rules use `x`/`y`/`z`, so these resolve in all
    // scenarios; they stand in for the free argument positions of a goal.
    let free = [
        Var(s.interner.get("x").unwrap()),
        Var(s.interner.get("y").unwrap()),
        Var(s.interner.get("z").unwrap()),
    ];
    for (qi, (pname, argnames)) in s.queries.iter().take(4).enumerate() {
        let p = Pred(s.interner.get(pname).unwrap());
        let row: Vec<Cst> = argnames
            .iter()
            .map(|a| Cst(s.interner.get(a).unwrap()))
            .collect();
        let arity = row.len();
        assert!(
            arity <= free.len(),
            "{ctx}: query arity outgrew the var pool"
        );
        let mut masks = vec![(1usize << arity) - 1, 1, 0];
        masks.dedup();
        for mask in masks {
            let mut terms = Vec::with_capacity(arity);
            let mut outs = Vec::new();
            for (i, c) in row.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    terms.push(dl::Term::Const(*c));
                } else {
                    terms.push(dl::Term::Var(free[i]));
                    outs.push(free[i]);
                }
            }
            let body = [dl::Atom::new(p, terms)];
            let mut expected = dl::query(compiled, &body, &outs)
                .unwrap_or_else(|e| panic!("{ctx}: full query: {e:?}"));
            expected.sort();
            let ans = dl::query_demand(&s.db, &s.rules, &body, &outs)
                .unwrap_or_else(|e| panic!("{ctx}: demand query: {e:?}"));
            let mut got = ans.rows.clone();
            got.sort();
            assert_eq!(
                got, expected,
                "{ctx}: demand disagrees on {pname} mask {mask:#b}"
            );
            // Thread determinism on the first goal's patterns: same rows
            // and same stats at every thread count, forced-parallel.
            if qi == 0 {
                let gov = dl::Governor::default();
                let mut reference: Option<dl::DemandAnswer> = None;
                for threads in THREADS {
                    let tuned = dl::query_demand_tuned(
                        &s.db,
                        &s.rules,
                        &body,
                        &outs,
                        &gov,
                        Some(threads),
                        Some(1),
                    )
                    .unwrap_or_else(|e| panic!("{ctx}: tuned demand: {e:?}"));
                    match &reference {
                        None => reference = Some(tuned),
                        Some(r) => {
                            assert_eq!(&tuned, r, "{ctx}: demand differs at {threads} threads")
                        }
                    }
                }
            }
        }
    }
}

fn check_temporal(t: &TemporalScenario) {
    let ctx = format!("temporal seed {}", t.seed);
    let mut ws = Workspace::new();
    ws.parse(&t.text)
        .unwrap_or_else(|e| panic!("{ctx}: parse: {e:?}"));
    let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner)
        .unwrap_or_else(|e| panic!("{ctx}: TemporalSpec: {e:?}"));
    let gspec = ws
        .graph_spec()
        .unwrap_or_else(|e| panic!("{ctx}: graph_spec: {e:?}"));
    let frozen = gspec.clone().freeze();
    let succ = Func(ws.interner.get("+1").unwrap());
    let (rho, rho_lambda) = spec.equation();
    // Probe the whole prefix, two full cycles, and a margin beyond.
    let horizon = (rho_lambda + (rho_lambda - rho) + 4) as u64;

    let resolve = |ws: &mut Workspace, names: &[String]| -> Vec<Cst> {
        names.iter().map(|n| Cst(ws.interner.intern(n))).collect()
    };
    let mut queries = Vec::new();
    let mut expected = Vec::new();
    let mut check_point = |ws: &mut Workspace, pname: &str, n: u64, args: &[String]| {
        let p = Pred(ws.interner.intern(pname));
        let row = resolve(ws, args);
        let truth = spec.holds(p, n, &row);
        let path: Vec<Func> = (0..n).map(|_| succ).collect();
        assert_eq!(
            gspec.holds(p, &path, &row),
            truth,
            "{ctx}: GraphSpec disagrees on {pname}@{n}({args:?})"
        );
        queries.push(ServeQuery::Member {
            pred: p,
            path,
            args: row,
        });
        expected.push(truth);
    };
    for (pname, n, args) in &t.queries {
        check_point(&mut ws, pname, *n, args);
    }
    for (pname, from, to, args) in &t.intervals {
        for n in *from..=*to {
            check_point(&mut ws, pname, n, args);
        }
    }
    // A sweep across the equation's own landmarks: prefix end, one cycle,
    // two cycles, horizon.
    for (pname, _, args) in &t.queries[..t.queries.len().min(4)] {
        for n in [rho as u64, rho_lambda as u64, horizon] {
            check_point(&mut ws, pname, n, args);
        }
    }
    let _ = check_point; // release the &mut queries/expected captures
    for threads in THREADS {
        assert_eq!(
            frozen.answer_batch_threads(&queries, threads),
            expected,
            "{ctx}: frozen batch disagrees at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn skew_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::skew(seed));
    }

    #[test]
    fn dense_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::dense(seed));
    }

    #[test]
    fn cyclic_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::cyclic(seed));
    }

    #[test]
    fn bounded_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::bounded_depth(seed));
    }

    #[test]
    fn tc_chain_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::tc_chain(seed));
    }

    #[test]
    fn tc_right_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::tc_right(seed));
    }

    #[test]
    fn churn_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::churn(seed));
    }
}

/// Churn lattice (PR 10): replay the seeded retract/re-insert script with
/// incremental maintenance — `Database::retract_fact` for deletions, a
/// primed one-row forward delta for re-insertions — and assert after
/// *every* op that the maintained database's dump equals a fresh
/// evaluation over the surviving asserted facts (and the naive oracle).
/// The whole replay must leave rows, RowIds and accumulated statistics
/// byte-identical at 1/2/4/8 threads with the parallel path forced, and a
/// cancelled retraction must roll back to the exact pre-op bytes.
fn check_churn(seed: u64, percent: usize) {
    let s = scenariogen::churn(seed);
    let ctx = format!("churn seed {} mix {percent}%", s.seed);
    let script = scenariogen::churn_script(&s, seed, percent);
    assert!(!script.is_empty(), "{ctx}: empty churn script");
    let plan = dl::DeltaPlan::planned(&s.rules, &s.db);
    let resolve = |op: &scenariogen::ChurnOp| -> (Pred, Vec<Cst>) {
        (
            Pred(s.interner.get(&op.pred).unwrap()),
            op.row
                .iter()
                .map(|a| Cst(s.interner.get(a).unwrap()))
                .collect(),
        )
    };

    let mut reference: Option<(Dump, dl::EvalStats)> = None;
    for threads in THREADS {
        // The rebuild/naive oracles re-evaluate per op; once per script is
        // plenty — the other thread counts pin byte-determinism instead.
        let oracle = threads == THREADS[0];
        let mut db = s.db.clone();
        let mut eval = dl::IncrementalEval::new()
            .with_threads(threads)
            .with_parallel_threshold(1);
        let mut total = eval.run(&mut db, &s.rules, &plan).unwrap();
        let mut present: Vec<(Pred, Vec<Cst>)> =
            s.db.iter()
                .flat_map(|(p, rel)| rel.rows().map(move |r| (p, r.to_vec())))
                .collect();
        for op in &script {
            let (p, row) = resolve(op);
            if op.retract {
                let out = db.retract_fact(p, &row, &s.rules, &plan);
                assert!(out.found, "{ctx}: script retracted an absent fact");
                total.absorb(out.stats);
                present.retain(|(pp, rr)| !(*pp == p && *rr == row));
            } else {
                eval.prime_marks(&db);
                db.insert(p, &row);
                total.absorb(eval.run(&mut db, &s.rules, &plan).unwrap());
                present.push((p, row));
            }
            if oracle {
                let mut fresh = dl::Database::new();
                for (pp, rr) in &present {
                    fresh.insert(*pp, rr);
                }
                let mut naive = fresh.clone();
                dl::evaluate(&mut fresh, &s.rules).unwrap();
                assert_eq!(
                    db.dump(&s.interner),
                    fresh.dump(&s.interner),
                    "{ctx}: incremental maintenance diverges from rebuild after {op:?}"
                );
                dl::evaluate_naive(&mut naive, &s.rules).unwrap();
                assert_eq!(
                    fresh.dump(&s.interner),
                    naive.dump(&s.interner),
                    "{ctx}: rebuild diverges from naive after {op:?}"
                );
            }
        }
        let rows = row_lists(&db);
        match &reference {
            None => reference = Some((rows, total)),
            Some((r, st)) => {
                assert_eq!(&rows, r, "{ctx}: churn rows differ at {threads} threads");
                assert_eq!(&total, st, "{ctx}: churn stats differ at {threads} threads");
            }
        }
    }

    // Governed prefix contract: a retraction tripped by cancellation rolls
    // back whole — every tombstone revived in place, so even RowIds match
    // the pre-op fixpoint byte for byte.
    if let Some(op) = script.iter().find(|o| o.retract) {
        let (p, row) = resolve(op);
        let mut db = s.db.clone();
        dl::IncrementalEval::new()
            .run(&mut db, &s.rules, &plan)
            .unwrap();
        let before = row_lists(&db);
        let gov = dl::Governor::default();
        gov.cancel();
        let err = db
            .retract_fact_governed(p, &row, &s.rules, &plan, &gov)
            .unwrap_err();
        assert!(
            matches!(
                err,
                dl::EvalError::BudgetExhausted {
                    resource: dl::Resource::Cancelled,
                    ..
                }
            ),
            "{ctx}: unexpected governed retraction error {err:?}"
        );
        assert_eq!(
            row_lists(&db),
            before,
            "{ctx}: cancelled retraction left residue"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn churn_replay_agrees_with_rebuild(seed in any::<u64>()) {
        // Rotate the retract/re-insert mix with the seed: light (1%),
        // moderate (10%), heavy (50%) — the E18 workload points.
        let percent = [1usize, 10, 50][(seed % 3) as usize];
        check_churn(seed, percent);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn temporal_scenarios_agree(seed in any::<u64>()) {
        check_temporal(&scenariogen::temporal(seed));
    }
}

/// Bloom pre-probe soundness (PR 8): a composite index's bloom filter may
/// only reject *guaranteed misses* — for every bound-column signature the
/// candidates surviving the probe-and-confirm pass must equal a full-scan
/// filter, on resident keys (no false negatives) and on mutated keys
/// (rejections only where the scan also finds nothing).
fn check_bloom_soundness(s: &Scenario) {
    let ctx = format!("{} seed {}", s.family, s.seed);
    let mut db = s.db.clone();
    dl::evaluate(&mut db, &s.rules).unwrap_or_else(|e| panic!("{ctx}: evaluate: {e:?}"));
    let preds: Vec<(Pred, usize)> = db.iter().map(|(p, r)| (p, r.arity())).collect();
    for (p, arity) in preds {
        if arity < 2 {
            continue;
        }
        // The all-columns signature and the two-column prefix exercise the
        // composite bloom path; both are (re)built over the *derived* rows,
        // and inserts since construction keep them current.
        for sig in [(1u64 << arity) - 1, 0b11u64] {
            db.ensure_composite(p, sig);
            let rel = db.relation(p).expect("evaluated relation");
            let cols: Vec<usize> = (0..arity).filter(|c| sig >> c & 1 == 1).collect();
            let scan = |key: &[Cst]| -> Vec<Vec<usize>> {
                rel.rows()
                    .filter(|row| cols.iter().zip(key).all(|(&c, k)| row[c] == *k))
                    .map(|row| row.iter().map(|c| c.index()).collect())
                    .collect()
            };
            let probe = |key: &[Cst]| -> Vec<Vec<usize>> {
                match rel.probe(sig, key) {
                    dl::Probe::Index(bucket) | dl::Probe::Partial(bucket) => bucket
                        .iter()
                        .map(|&i| rel.row(dl::RowId(i)))
                        .filter(|row| cols.iter().zip(key).all(|(&c, k)| row[c] == *k))
                        .map(|row| row.iter().map(|c| c.index()).collect())
                        .collect(),
                    dl::Probe::Scan => scan(key),
                }
            };
            let rows: Vec<Vec<Cst>> = rel.rows().take(64).map(|r| r.to_vec()).collect();
            for row in &rows {
                let key: Vec<Cst> = cols.iter().map(|&c| row[c]).collect();
                // Resident key: the row itself must survive the pre-probe.
                assert_eq!(probe(&key), scan(&key), "{ctx}: probe({sig:#b}) diverges");
                // Mutated key (often absent): a bloom rejection must mean
                // the scan finds nothing either.
                let mut mutated = key.clone();
                mutated.reverse();
                assert_eq!(
                    probe(&mutated),
                    scan(&mutated),
                    "{ctx}: probe({sig:#b}) diverges on mutated key"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn bloom_preprobes_never_change_answers(seed in any::<u64>()) {
        // Rotate the family by seed so every shape feeds the bloom path.
        let (_, family) = RELATIONAL_FAMILIES[(seed % RELATIONAL_FAMILIES.len() as u64) as usize];
        check_bloom_soundness(&family(seed));
    }
}

/// Satellite (PR 10): retraction leaves composite bloom filters *stale on
/// the sound side only* — tombstoned rows keep their bits set, so a filter
/// may admit a dead key (false positive, confirmed away by the bucket
/// scan) but never reject a live one. Probe-and-confirm must equal a full
/// scan both right after a burst of retractions and again after
/// `compact()` rebuilds the filters over the renumbered survivors.
fn check_bloom_soundness_after_retract(seed: u64) {
    let s = scenariogen::churn(seed);
    let ctx = format!("churn seed {} (bloom)", s.seed);
    let plan = dl::DeltaPlan::planned(&s.rules, &s.db);
    let mut db = s.db.clone();
    dl::evaluate(&mut db, &s.rules).unwrap();
    let preds: Vec<(Pred, usize)> = db.iter().map(|(p, r)| (p, r.arity())).collect();
    // Build the composite filters over the *full* fixpoint, then punch
    // holes in it: the filters go stale exactly the way production does.
    for &(p, arity) in &preds {
        if arity >= 2 {
            db.ensure_composite(p, (1u64 << arity) - 1);
        }
    }
    let retracted: Vec<Vec<Cst>> = scenariogen::churn_script(&s, seed, 50)
        .iter()
        .filter(|op| op.retract)
        .take(4)
        .map(|op| {
            let p = Pred(s.interner.get(&op.pred).unwrap());
            let row: Vec<Cst> = op
                .row
                .iter()
                .map(|a| Cst(s.interner.get(a).unwrap()))
                .collect();
            // Replaying retract ops out of script order may hit an
            // already-gone fact; `found == false` leaves the db untouched
            // and still exercises the lookup path.
            db.retract_fact(p, &row, &s.rules, &plan);
            row
        })
        .collect();

    let check = |db: &dl::Database, stage: &str| {
        for &(p, arity) in &preds {
            if arity < 2 {
                continue;
            }
            let sig = (1u64 << arity) - 1;
            let rel = db.relation(p).expect("evaluated relation");
            let scan = |key: &[Cst]| -> Vec<Vec<usize>> {
                rel.rows()
                    .filter(|row| row.iter().zip(key).all(|(c, k)| c == k))
                    .map(|row| row.iter().map(|c| c.index()).collect())
                    .collect()
            };
            let probe = |key: &[Cst]| -> Vec<Vec<usize>> {
                match rel.probe(sig, key) {
                    dl::Probe::Index(bucket) | dl::Probe::Partial(bucket) => bucket
                        .iter()
                        .map(|&i| rel.row(dl::RowId(i)))
                        .filter(|row| row.iter().zip(key).all(|(c, k)| c == k))
                        .map(|row| row.iter().map(|c| c.index()).collect())
                        .collect(),
                    dl::Probe::Scan => scan(key),
                }
            };
            // Live keys: no false negatives.
            let rows: Vec<Vec<Cst>> = rel.rows().take(64).map(|r| r.to_vec()).collect();
            for row in &rows {
                assert_eq!(
                    probe(row),
                    scan(row),
                    "{ctx}: {stage} probe diverges on a live key"
                );
            }
            // Retracted keys of matching arity: a stale positive must be
            // confirmed away, never resurrected.
            for key in retracted.iter().filter(|k| k.len() == arity) {
                assert_eq!(
                    probe(key),
                    scan(key),
                    "{ctx}: {stage} probe diverges on a retracted key"
                );
            }
        }
    };
    check(&db, "post-retract");
    // Compaction is the rebuild hook: filters are reconstructed over the
    // dense survivors and the same contract holds.
    db.compact();
    for &(p, arity) in &preds {
        if arity >= 2 {
            db.ensure_composite(p, (1u64 << arity) - 1);
        }
    }
    check(&db, "post-compact");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn bloom_preprobes_sound_after_retract(seed in any::<u64>()) {
        check_bloom_soundness_after_retract(seed);
    }
}

/// Satellite (PR 8): the E14 cyclic regression stays fixed. With the
/// hysteresis margin the cost planner keeps the greedy order unless its
/// estimate is strictly better, so over E14's cyclic seed set the planned
/// run may not pay more probes than greedy in aggregate (the E14
/// probe_ratio, once 0.90, must stay ≥ 1.0). Adaptivity is off on both
/// sides to isolate the planning decision; individual seeds may wobble a
/// few probes either way, the family total is the pinned metric.
#[test]
fn cyclic_planned_probes_never_exceed_greedy() {
    let (mut greedy_total, mut planned_total) = (0usize, 0usize);
    for seed in 1u64..=16 {
        let s = scenariogen::cyclic(seed);
        let run = |planned: bool| {
            let mut db = s.db.clone();
            let plan = if planned {
                dl::DeltaPlan::planned(&s.rules, &db)
            } else {
                dl::DeltaPlan::new(&s.rules)
            };
            dl::IncrementalEval::new()
                .with_adaptive(false)
                .run(&mut db, &s.rules, &plan)
                .unwrap()
        };
        greedy_total += run(false).join_probes;
        planned_total += run(true).join_probes;
    }
    assert!(
        planned_total <= greedy_total,
        "cyclic family: planned pays {planned_total} probes vs greedy \
         {greedy_total} (probe_ratio {:.3} < 1.0)",
        greedy_total as f64 / planned_total.max(1) as f64
    );
}

/// Satellite: every historical counterexample seed committed in
/// `tests/fuzz_scenarios.proptest-regressions` (and the differential
/// suite's regression file) replays through *every* family on every
/// default `cargo test` run — independently of the proptest runner's own
/// regression-file resolution.
#[test]
fn regression_seeds_replay_through_all_families() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests");
    let mut seeds = Vec::new();
    for file in [
        "fuzz_scenarios.proptest-regressions",
        "differential.proptest-regressions",
        "demand_differential.proptest-regressions",
    ] {
        let text = std::fs::read_to_string(format!("{dir}/{file}"))
            .unwrap_or_else(|e| panic!("{file} must stay committed: {e}"));
        for line in text.lines() {
            if let Some(at) = line.find("seed = ") {
                let tail = &line[at + "seed = ".len()..];
                let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
                seeds.push(num.parse::<u64>().unwrap());
            }
        }
    }
    assert!(
        seeds.len() >= 2,
        "expected pinned regression seeds, found {seeds:?}"
    );
    for seed in seeds {
        for &(_, f) in RELATIONAL_FAMILIES {
            check_relational(&f(seed));
        }
        check_temporal(&scenariogen::temporal(seed));
    }
}
