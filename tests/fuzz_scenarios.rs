//! Differential fuzz harness over generated scenario families (PR 6).
//!
//! Each seed drives `fundb_bench::scenariogen` to produce one scenario of
//! a family (skewed fan-out, dense cross-products, cyclic rule
//! dependencies, bounded derivation depth, temporal lassos) and asserts
//! the full agreement lattice on it:
//!
//! * compiled semi-naive ≡ compiled naive ≡ the PR 1/2 interpreter,
//! * cost-planned ≡ greedy-planned (the planner may change probe order,
//!   never answers),
//! * byte-identical rows *and* statistics at 1/2/4/8 threads for a fixed
//!   plan,
//! * governed runs that hit a budget stop on a completed-round prefix of
//!   the ungoverned run,
//! * the parsed text through engine → `GraphSpec` → frozen serving
//!   answers membership exactly like the datalog fixpoint, at every batch
//!   thread count,
//! * temporal scenarios: `TemporalSpec` ≡ `GraphSpec` ≡ frozen spec on
//!   points and whole intervals, far beyond the lasso prefix,
//! * goal-directed (magic-set) rewritten evaluation ≡ unrewritten full
//!   materialization on ground, partially-bound, and all-free goals, with
//!   byte-identical rows and statistics at 1/2/4/8 overlay threads (PR 7).
//!
//! Case counts (48 × 6 relational families + 24 temporal = 312 scenarios)
//! keep the default `cargo test` run above the 200-scenario floor;
//! `PROPTEST_CASES` scales the budget up in the nightly job.

use fundb_bench::scenariogen::{self, Scenario, TemporalScenario, RELATIONAL_FAMILIES};
use fundb_core::ServeQuery;
use fundb_datalog as dl;
use fundb_parser::Workspace;
use fundb_temporal::TemporalSpec;
use fundb_term::{Cst, Func, Pred, Var};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// `(pred index, rows-in-insertion-order)` per relation — the shape every
/// determinism/prefix comparison below works over.
type Dump = Vec<(usize, Vec<Vec<usize>>)>;

/// Per-predicate rows in insertion order, as plain indices: the
/// byte-determinism and prefix checks compare these, not just sorted
/// answer sets.
fn row_lists(db: &dl::Database) -> Dump {
    let mut out: Dump = db
        .iter()
        .map(|(p, rel)| {
            let rows = rel
                .rows()
                .map(|r| r.iter().map(|c| c.index()).collect())
                .collect();
            (p.index(), rows)
        })
        .collect();
    out.sort_by_key(|&(p, _)| p);
    out
}

/// Asserts `partial` is a completed-round prefix of `full`: every relation
/// present in `partial` holds a prefix (in insertion order) of the same
/// relation's rows in `full`.
fn assert_prefix(
    partial: &[(usize, Vec<Vec<usize>>)],
    full: &[(usize, Vec<Vec<usize>>)],
    ctx: &str,
) {
    for (p, rows) in partial {
        let fr = full
            .iter()
            .find(|(fp, _)| fp == p)
            .map(|(_, r)| r.as_slice())
            .unwrap_or(&[]);
        assert!(
            rows.len() <= fr.len() && rows.as_slice() == &fr[..rows.len()],
            "{ctx}: governed rows are not a prefix of the full run (pred {p})"
        );
    }
}

fn check_relational(s: &Scenario) {
    let ctx = format!("{} seed {}", s.family, s.seed);

    // Compiled semi-naive under the cost planner (the `evaluate` default).
    let mut compiled = s.db.clone();
    dl::evaluate(&mut compiled, &s.rules).unwrap_or_else(|e| panic!("{ctx}: evaluate: {e:?}"));
    let dump = compiled.dump(&s.interner);

    // Compiled naive.
    let mut naive = s.db.clone();
    dl::evaluate_naive(&mut naive, &s.rules).unwrap();
    assert_eq!(dump, naive.dump(&s.interner), "{ctx}: naive disagrees");

    // The PR 1/2 interpreter oracle.
    let mut interp = s.db.clone();
    dl::evaluate_naive_interpreted(&mut interp, &s.rules);
    assert_eq!(
        dump,
        interp.dump(&s.interner),
        "{ctx}: interpreter disagrees"
    );

    // Greedy-planned (planner off) answers must match cost-planned.
    let mut greedy = s.db.clone();
    let greedy_plan = dl::DeltaPlan::new(&s.rules);
    dl::IncrementalEval::new()
        .run(&mut greedy, &s.rules, &greedy_plan)
        .unwrap();
    assert_eq!(
        dump,
        greedy.dump(&s.interner),
        "{ctx}: greedy plan disagrees"
    );

    // Byte-determinism: fixed plan, 1/2/4/8 threads, forced-parallel.
    let plan = dl::DeltaPlan::planned(&s.rules, &s.db);
    let mut reference: Option<(Dump, dl::EvalStats)> = None;
    for threads in THREADS {
        let mut db = s.db.clone();
        let stats = dl::IncrementalEval::new()
            .with_threads(threads)
            .with_parallel_threshold(1)
            .run(&mut db, &s.rules, &plan)
            .unwrap();
        let rows = row_lists(&db);
        match &reference {
            None => reference = Some((rows, stats)),
            Some((r, st)) => {
                assert_eq!(&rows, r, "{ctx}: rows differ at {threads} threads");
                assert_eq!(&stats, st, "{ctx}: stats differ at {threads} threads");
            }
        }
    }
    let full_rows = row_lists(&compiled);

    // Governed runs stop on completed-round prefixes.
    for rounds in [1usize, 2] {
        let mut db = s.db.clone();
        let gov = dl::Governor::new(dl::Budget::unlimited().with_max_rounds(rounds));
        match dl::evaluate_governed(&mut db, &s.rules, &gov) {
            Ok(_) => assert_eq!(row_lists(&db), full_rows, "{ctx}: governed Ok differs"),
            Err(dl::EvalError::BudgetExhausted { .. }) => {
                assert_prefix(&row_lists(&db), &full_rows, &ctx);
            }
            Err(e) => panic!("{ctx}: unexpected governed error {e:?}"),
        }
    }

    // Goal-directed (magic-set) evaluation must agree with the fixpoint.
    check_demand(s, &compiled, &ctx);

    // The same program through text → parser → engine → frozen serving.
    let mut ws = Workspace::new();
    ws.parse(&s.text)
        .unwrap_or_else(|e| panic!("{ctx}: parse: {e:?}"));
    let spec = ws
        .graph_spec()
        .unwrap_or_else(|e| panic!("{ctx}: graph_spec: {e:?}"));
    let frozen = spec.clone().freeze();
    let mut queries = Vec::with_capacity(s.queries.len());
    let mut expected = Vec::with_capacity(s.queries.len());
    for (pname, argnames) in &s.queries {
        // Resolve per representation; every query symbol appears in both.
        let dp = Pred(s.interner.get(pname).unwrap());
        let drow: Vec<Cst> = argnames
            .iter()
            .map(|a| Cst(s.interner.get(a).unwrap()))
            .collect();
        let truth = compiled.contains(dp, &drow);
        let wp = Pred(ws.interner.get(pname).unwrap());
        let wrow: Vec<Cst> = argnames
            .iter()
            .map(|a| Cst(ws.interner.get(a).unwrap()))
            .collect();
        assert_eq!(
            spec.holds_relational(wp, &wrow),
            truth,
            "{ctx}: GraphSpec disagrees on {pname}({argnames:?})"
        );
        // And the one-off conjunctive query API over the fixpoint.
        let body = [dl::Atom::new(
            dp,
            drow.iter().map(|&c| dl::Term::Const(c)).collect(),
        )];
        assert_eq!(
            !dl::query(&compiled, &body, &[]).unwrap().is_empty(),
            truth,
            "{ctx}: dl::query disagrees on {pname}({argnames:?})"
        );
        queries.push(ServeQuery::Relational {
            pred: wp,
            args: wrow,
        });
        expected.push(truth);
    }
    for threads in THREADS {
        assert_eq!(
            frozen.answer_batch_threads(&queries, threads),
            expected,
            "{ctx}: frozen batch disagrees at {threads} threads"
        );
    }
}

/// Goal-directed differential (PR 7): the magic-set rewrite must answer
/// every binding pattern of the scenario's query workload — fully ground,
/// first-argument-bound, and all-free — exactly like the materialized
/// fixpoint, and the overlay evaluation must be byte-deterministic (rows
/// *and* statistics) across thread counts with the parallel path forced.
fn check_demand(s: &Scenario, compiled: &dl::Database, ctx: &str) {
    // Every family's rules use `x`/`y`/`z`, so these resolve in all
    // scenarios; they stand in for the free argument positions of a goal.
    let free = [
        Var(s.interner.get("x").unwrap()),
        Var(s.interner.get("y").unwrap()),
        Var(s.interner.get("z").unwrap()),
    ];
    for (qi, (pname, argnames)) in s.queries.iter().take(4).enumerate() {
        let p = Pred(s.interner.get(pname).unwrap());
        let row: Vec<Cst> = argnames
            .iter()
            .map(|a| Cst(s.interner.get(a).unwrap()))
            .collect();
        let arity = row.len();
        assert!(
            arity <= free.len(),
            "{ctx}: query arity outgrew the var pool"
        );
        let mut masks = vec![(1usize << arity) - 1, 1, 0];
        masks.dedup();
        for mask in masks {
            let mut terms = Vec::with_capacity(arity);
            let mut outs = Vec::new();
            for (i, c) in row.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    terms.push(dl::Term::Const(*c));
                } else {
                    terms.push(dl::Term::Var(free[i]));
                    outs.push(free[i]);
                }
            }
            let body = [dl::Atom::new(p, terms)];
            let mut expected = dl::query(compiled, &body, &outs)
                .unwrap_or_else(|e| panic!("{ctx}: full query: {e:?}"));
            expected.sort();
            let ans = dl::query_demand(&s.db, &s.rules, &body, &outs)
                .unwrap_or_else(|e| panic!("{ctx}: demand query: {e:?}"));
            let mut got = ans.rows.clone();
            got.sort();
            assert_eq!(
                got, expected,
                "{ctx}: demand disagrees on {pname} mask {mask:#b}"
            );
            // Thread determinism on the first goal's patterns: same rows
            // and same stats at every thread count, forced-parallel.
            if qi == 0 {
                let gov = dl::Governor::default();
                let mut reference: Option<dl::DemandAnswer> = None;
                for threads in THREADS {
                    let tuned = dl::query_demand_tuned(
                        &s.db,
                        &s.rules,
                        &body,
                        &outs,
                        &gov,
                        Some(threads),
                        Some(1),
                    )
                    .unwrap_or_else(|e| panic!("{ctx}: tuned demand: {e:?}"));
                    match &reference {
                        None => reference = Some(tuned),
                        Some(r) => {
                            assert_eq!(&tuned, r, "{ctx}: demand differs at {threads} threads")
                        }
                    }
                }
            }
        }
    }
}

fn check_temporal(t: &TemporalScenario) {
    let ctx = format!("temporal seed {}", t.seed);
    let mut ws = Workspace::new();
    ws.parse(&t.text)
        .unwrap_or_else(|e| panic!("{ctx}: parse: {e:?}"));
    let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner)
        .unwrap_or_else(|e| panic!("{ctx}: TemporalSpec: {e:?}"));
    let gspec = ws
        .graph_spec()
        .unwrap_or_else(|e| panic!("{ctx}: graph_spec: {e:?}"));
    let frozen = gspec.clone().freeze();
    let succ = Func(ws.interner.get("+1").unwrap());
    let (rho, rho_lambda) = spec.equation();
    // Probe the whole prefix, two full cycles, and a margin beyond.
    let horizon = (rho_lambda + (rho_lambda - rho) + 4) as u64;

    let resolve = |ws: &mut Workspace, names: &[String]| -> Vec<Cst> {
        names.iter().map(|n| Cst(ws.interner.intern(n))).collect()
    };
    let mut queries = Vec::new();
    let mut expected = Vec::new();
    let mut check_point = |ws: &mut Workspace, pname: &str, n: u64, args: &[String]| {
        let p = Pred(ws.interner.intern(pname));
        let row = resolve(ws, args);
        let truth = spec.holds(p, n, &row);
        let path: Vec<Func> = (0..n).map(|_| succ).collect();
        assert_eq!(
            gspec.holds(p, &path, &row),
            truth,
            "{ctx}: GraphSpec disagrees on {pname}@{n}({args:?})"
        );
        queries.push(ServeQuery::Member {
            pred: p,
            path,
            args: row,
        });
        expected.push(truth);
    };
    for (pname, n, args) in &t.queries {
        check_point(&mut ws, pname, *n, args);
    }
    for (pname, from, to, args) in &t.intervals {
        for n in *from..=*to {
            check_point(&mut ws, pname, n, args);
        }
    }
    // A sweep across the equation's own landmarks: prefix end, one cycle,
    // two cycles, horizon.
    for (pname, _, args) in &t.queries[..t.queries.len().min(4)] {
        for n in [rho as u64, rho_lambda as u64, horizon] {
            check_point(&mut ws, pname, n, args);
        }
    }
    let _ = check_point; // release the &mut queries/expected captures
    for threads in THREADS {
        assert_eq!(
            frozen.answer_batch_threads(&queries, threads),
            expected,
            "{ctx}: frozen batch disagrees at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn skew_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::skew(seed));
    }

    #[test]
    fn dense_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::dense(seed));
    }

    #[test]
    fn cyclic_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::cyclic(seed));
    }

    #[test]
    fn bounded_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::bounded_depth(seed));
    }

    #[test]
    fn tc_chain_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::tc_chain(seed));
    }

    #[test]
    fn tc_right_scenarios_agree(seed in any::<u64>()) {
        check_relational(&scenariogen::tc_right(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn temporal_scenarios_agree(seed in any::<u64>()) {
        check_temporal(&scenariogen::temporal(seed));
    }
}

/// Satellite: every historical counterexample seed committed in
/// `tests/fuzz_scenarios.proptest-regressions` (and the differential
/// suite's regression file) replays through *every* family on every
/// default `cargo test` run — independently of the proptest runner's own
/// regression-file resolution.
#[test]
fn regression_seeds_replay_through_all_families() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests");
    let mut seeds = Vec::new();
    for file in [
        "fuzz_scenarios.proptest-regressions",
        "differential.proptest-regressions",
        "demand_differential.proptest-regressions",
    ] {
        let text = std::fs::read_to_string(format!("{dir}/{file}"))
            .unwrap_or_else(|e| panic!("{file} must stay committed: {e}"));
        for line in text.lines() {
            if let Some(at) = line.find("seed = ") {
                let tail = &line[at + "seed = ".len()..];
                let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
                seeds.push(num.parse::<u64>().unwrap());
            }
        }
    }
    assert!(
        seeds.len() >= 2,
        "expected pinned regression seeds, found {seeds:?}"
    );
    for seed in seeds {
        for &(_, f) in RELATIONAL_FAMILIES {
            check_relational(&f(seed));
        }
        check_temporal(&scenariogen::temporal(seed));
    }
}
