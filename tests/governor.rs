//! Integration tests for the execution governor.
//!
//! Three contracts are pinned down here:
//!
//! 1. **Deterministic truncation** — a budget-limited run leaves a prefix
//!    of the unbudgeted fixpoint's row sequence, byte-identical at 1, 2, 4
//!    and 8 threads (property-tested over random edge relations).
//! 2. **Fault isolation** — an injected worker panic or round failure
//!    surfaces as an error value while the database stays at the last
//!    completed round; the process never aborts.
//! 3. **No hangs** — a tight wall-clock deadline on a large closure
//!    returns `BudgetExhausted` promptly instead of spinning.
//! 4. **Atomic retraction** (PR 10) — a deadline or cancellation tripping
//!    mid-retraction rolls the whole maintenance step back: the database
//!    stays byte-identical to the pre-call fixpoint (the completed-round
//!    prefix), never a half-deleted cone.
//!
//! The final test is only active under the CI fault matrix: it reads
//! `FUNDB_FAULT` and checks that *default* governors honor the injected
//! plan. Every other test arms its governor with an inert `FaultPlan` so
//! the suite stays green under that same matrix.

use fundb_datalog::{
    evaluate_governed, Atom, Budget, Database, DeltaPlan, EvalError, FaultPlan, Governor,
    IncrementalEval, Resource, Rule, Term,
};
use fundb_term::{Cst, Interner, Pred, Var};
use proptest::prelude::*;

struct Fixture {
    interner: Interner,
    edge: Pred,
    path: Pred,
    rules: Vec<Rule>,
}

/// Edge/Path transitive closure, the workhorse of the row-store tests.
fn fixture(right_linear: bool) -> Fixture {
    let mut interner = Interner::new();
    let edge = Pred(interner.intern("Edge"));
    let path = Pred(interner.intern("Path"));
    let (x, y, z) = (
        Var(interner.intern("x")),
        Var(interner.intern("y")),
        Var(interner.intern("z")),
    );
    let body = if right_linear {
        vec![
            Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
        ]
    } else {
        vec![
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
        ]
    };
    let rules = vec![
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
        ),
        Rule::new(Atom::new(path, vec![Term::Var(x), Term::Var(z)]), body),
    ];
    Fixture {
        interner,
        edge,
        path,
        rules,
    }
}

fn edge_db(fx: &mut Fixture, edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        let a = Cst(fx.interner.intern(&format!("v{a}")));
        let b = Cst(fx.interner.intern(&format!("v{b}")));
        db.insert(fx.edge, &[a, b]);
    }
    db
}

fn chain_db(fx: &mut Fixture, n: usize) -> Database {
    let edges: Vec<(u8, u8)> = (0..n).map(|k| (k as u8, (k + 1) as u8)).collect();
    edge_db(fx, &edges)
}

fn path_rows(db: &Database, fx: &Fixture) -> Vec<Vec<Cst>> {
    db.relation(fx.path)
        .map(|r| r.rows().map(<[Cst]>::to_vec).collect())
        .unwrap_or_default()
}

/// A governor immune to the ambient `FUNDB_FAULT` plan, so these tests
/// behave identically inside and outside the CI fault matrix.
fn quiet(budget: Budget) -> Governor {
    Governor::new(budget).with_faults(FaultPlan::default())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Budget truncation is a *prefix* of the unbudgeted fixpoint's row
    /// sequence and does not depend on the worker count.
    #[test]
    fn budget_truncation_is_a_thread_independent_prefix(
        edges in proptest::collection::vec((0u8..12, 0u8..12), 1..40),
        cap in 1usize..80,
    ) {
        let mut fx = fixture(false);
        let mut full = edge_db(&mut fx, &edges);
        evaluate_governed(&mut full, &fx.rules, &quiet(Budget::unlimited())).unwrap();
        let full_rows = path_rows(&full, &fx);

        let mut reference: Option<(Vec<Vec<Cst>>, bool)> = None;
        for threads in [1usize, 2, 4, 8] {
            let plan = DeltaPlan::new(&fx.rules);
            let mut db = edge_db(&mut fx, &edges);
            let result = IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1)
                .with_governor(quiet(Budget::unlimited().with_max_rows(cap)))
                .run(&mut db, &fx.rules, &plan);
            let rows = path_rows(&db, &fx);
            match &result {
                Ok(stats) => {
                    // Cap not reached: the run is the full fixpoint.
                    prop_assert!(stats.derived <= cap);
                    prop_assert_eq!(&rows, &full_rows);
                }
                Err(EvalError::BudgetExhausted { resource, partial }) => {
                    prop_assert_eq!(*resource, Resource::Rows);
                    prop_assert_eq!(partial.derived, cap);
                    prop_assert_eq!(rows.len(), cap);
                    prop_assert_eq!(&rows[..], &full_rows[..cap]);
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
            match &reference {
                None => reference = Some((rows, result.is_ok())),
                Some((r, ok)) => {
                    prop_assert_eq!(&rows, r, "rows diverged at {} threads", threads);
                    prop_assert_eq!(result.is_ok(), *ok, "outcome diverged at {} threads", threads);
                }
            }
        }
    }
}

/// The row-count prefixes reachable by stopping at each round boundary.
fn round_boundary_prefixes(
    fx: &mut Fixture,
    db_of: impl Fn(&mut Fixture) -> Database,
) -> Vec<usize> {
    let mut boundaries = vec![0];
    for rounds in 1.. {
        let mut db = db_of(fx);
        let budget = Budget::unlimited().with_max_rounds(rounds);
        let result = evaluate_governed(&mut db, &fx.rules, &quiet(budget));
        boundaries.push(path_rows(&db, fx).len());
        if result.is_ok() {
            return boundaries; // fixpoint reached within the round cap
        }
    }
    unreachable!()
}

/// An injected worker panic is caught: the error names the task, the
/// process survives, and the database sits exactly at a round boundary of
/// the unbudgeted run.
#[test]
fn panic_task_fault_is_isolated_at_a_round_boundary() {
    let mut fx = fixture(false);
    let mut full = chain_db(&mut fx, 24);
    evaluate_governed(&mut full, &fx.rules, &quiet(Budget::unlimited())).unwrap();
    let full_rows = path_rows(&full, &fx);
    let boundaries = round_boundary_prefixes(&mut fx, |fx| chain_db(fx, 24));

    let plan = DeltaPlan::new(&fx.rules);
    let mut db = chain_db(&mut fx, 24);
    let governor = Governor::new(Budget::unlimited()).with_faults(FaultPlan::parse("panic_task:3"));
    let err = IncrementalEval::new()
        .with_threads(4)
        .with_parallel_threshold(1)
        .with_governor(governor)
        .run(&mut db, &fx.rules, &plan)
        .unwrap_err();
    let EvalError::WorkerPanicked { task, payload } = err else {
        panic!("expected WorkerPanicked, got {err:?}");
    };
    assert_eq!(task, 3);
    assert!(payload.contains("fault"), "unexpected payload {payload:?}");

    let rows = path_rows(&db, &fx);
    assert!(
        boundaries.contains(&rows.len()),
        "row count {} is not a round boundary (boundaries: {boundaries:?})",
        rows.len()
    );
    assert_eq!(rows[..], full_rows[..rows.len()], "not a fixpoint prefix");
}

/// An injected round failure reports `Resource::Fault` with the database
/// at the last completed round.
#[test]
fn fail_round_fault_stops_at_the_previous_round() {
    let mut fx = fixture(false);

    // Reference: exactly one completed round.
    let mut one_round = chain_db(&mut fx, 16);
    let budget = Budget::unlimited().with_max_rounds(1);
    evaluate_governed(&mut one_round, &fx.rules, &quiet(budget)).unwrap_err();
    let one_round_rows = path_rows(&one_round, &fx);

    let mut db = chain_db(&mut fx, 16);
    let governor = Governor::new(Budget::unlimited()).with_faults(FaultPlan::parse("fail_round:2"));
    let err = evaluate_governed(&mut db, &fx.rules, &governor).unwrap_err();
    let EvalError::BudgetExhausted { resource, partial } = err else {
        panic!("expected BudgetExhausted, got {err:?}");
    };
    assert_eq!(resource, Resource::Fault);
    assert_eq!(partial.rounds, 1);
    assert_eq!(path_rows(&db, &fx), one_round_rows);
}

/// Regression: a 1 ms deadline on `tc_right(256)` returns promptly with
/// `BudgetExhausted` instead of hanging. A `slow_probe` fault makes the
/// deadline trip deterministic on arbitrarily fast machines.
#[test]
fn tight_deadline_on_tc_right_returns_instead_of_hanging() {
    let mut fx = fixture(true);
    let plan = DeltaPlan::new(&fx.rules);
    let edges: Vec<(u8, u8)> = (0..255usize).map(|k| (k as u8, (k + 1) as u8)).collect();
    let mut db = edge_db(&mut fx, &edges);
    let governor = Governor::new(Budget::unlimited().with_max_millis(1))
        .with_faults(FaultPlan::parse("slow_probe:200"));
    let start = std::time::Instant::now();
    let err = IncrementalEval::new()
        .with_governor(governor)
        .run(&mut db, &fx.rules, &plan)
        .unwrap_err();
    let EvalError::BudgetExhausted { resource, .. } = err else {
        panic!("expected BudgetExhausted, got {err:?}");
    };
    assert_eq!(resource, Resource::Time);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "deadline did not take effect"
    );
}

/// PR 10: a governed retraction is all-or-nothing. A pre-armed
/// cancellation trips at the first checkpoint and must leave the database
/// byte-identical (rows, order, asserted bits) to the pre-call fixpoint;
/// a 1 ms deadline over a large right-linear closure trips somewhere in
/// the over-delete/re-derive passes, and whichever way the race lands the
/// database must hold either the untouched fixpoint or the completed
/// retraction — verified against a rebuild without the fact — never a
/// half-deleted cone.
#[test]
fn deadline_mid_retraction_leaves_the_fixpoint_prefix_intact() {
    let mut fx = fixture(true);
    let edges: Vec<(u8, u8)> = (0..128usize).map(|k| (k as u8, (k + 1) as u8)).collect();
    let plan = DeltaPlan::new(&fx.rules);
    let target = (
        Cst(fx.interner.intern("v64")),
        Cst(fx.interner.intern("v65")),
    );

    let mut db = edge_db(&mut fx, &edges);
    evaluate_governed(&mut db, &fx.rules, &quiet(Budget::unlimited())).unwrap();
    let before_paths = path_rows(&db, &fx);
    let before_dump = db.dump(&fx.interner);

    // Arm 1: cancellation already requested — deterministic trip, the
    // retraction must report `Cancelled` and change nothing.
    let gov = quiet(Budget::unlimited());
    gov.cancel();
    let err = db
        .retract_fact_governed(fx.edge, &[target.0, target.1], &fx.rules, &plan, &gov)
        .unwrap_err();
    assert!(
        matches!(
            err,
            EvalError::BudgetExhausted {
                resource: Resource::Cancelled,
                ..
            }
        ),
        "expected a cancellation trip, got {err:?}"
    );
    assert_eq!(path_rows(&db, &fx), before_paths, "cancel left residue");
    assert_eq!(db.dump(&fx.interner), before_dump);

    // Rebuild oracle: the fixpoint over every edge except the target.
    let mut without = edge_db(&mut fx, &edges);
    without
        .relation_mut(fx.edge, 2)
        .retract_tuple(&[target.0, target.1])
        .expect("target edge present");
    let mut without = {
        // Re-insert into a fresh db so the oracle has no tombstones.
        let mut fresh = Database::new();
        for (p, rel) in without.iter() {
            for row in rel.rows() {
                fresh.insert(p, row);
            }
        }
        fresh
    };
    evaluate_governed(&mut without, &fx.rules, &quiet(Budget::unlimited())).unwrap();
    let without_dump = without.dump(&fx.interner);

    // Arm 2: a 1 ms deadline racing ~10k rows of over-delete work. Either
    // the deadline wins (rollback: untouched bytes) or the retraction
    // completes first (dump equals the rebuild oracle); nothing between.
    let gov = quiet(Budget::unlimited().with_max_millis(1));
    match db.retract_fact_governed(fx.edge, &[target.0, target.1], &fx.rules, &plan, &gov) {
        Err(EvalError::BudgetExhausted {
            resource: Resource::Time,
            ..
        }) => {
            assert_eq!(path_rows(&db, &fx), before_paths, "deadline left residue");
            assert_eq!(db.dump(&fx.interner), before_dump);
        }
        Ok(out) => {
            assert!(out.found);
            assert_eq!(
                db.dump(&fx.interner),
                without_dump,
                "completed retraction diverges from rebuild"
            );
        }
        Err(other) => panic!("unexpected retraction error {other:?}"),
    }
}

/// PR 5 read-serving layer under the governor: a cancellation or an
/// exhausted wall-clock budget tripping during `freeze_governed` or a
/// governed batch must surface as a clean `EvalError::BudgetExhausted` —
/// and the frozen spec's answer cache must stay fully usable afterwards
/// (no poisoned shard, no partial answer ever observable).
mod serving_trips {
    use super::quiet;
    use fundb_core::program::{FTerm, Program, Rule as CoreRule};
    use fundb_core::{Engine, GraphSpec, ServeQuery};
    use fundb_datalog::{Budget, EvalError, Resource};
    use fundb_term::{Func, Interner, Pred, Var};

    /// The §3.5 Even lasso — small, but its frozen spec exercises every
    /// serving path (walk, cache, batch).
    fn even_spec() -> (GraphSpec, Pred, Func) {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let fat = |ft: FTerm| fundb_core::program::Atom::Functional {
            pred: even,
            fterm: ft,
            args: vec![],
        };
        let mut prog = Program::new();
        prog.push(CoreRule::new(
            fat(FTerm::Pure(
                succ,
                Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t)))),
            )),
            vec![fat(FTerm::Var(t))],
        ));
        let mut db = fundb_core::program::Database::new();
        db.facts.push(fat(FTerm::Zero));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        (spec, even, succ)
    }

    fn queries(even: Pred, succ: Func, n: usize) -> Vec<ServeQuery> {
        (0..n)
            .map(|k| ServeQuery::Member {
                pred: even,
                path: vec![succ; k],
                args: vec![],
            })
            .collect()
    }

    #[test]
    fn cancelled_freeze_and_batch_return_eval_errors() {
        let (spec, even, succ) = even_spec();
        let gov = quiet(Budget::unlimited());
        gov.cancel();

        let err = spec.clone().freeze_governed(&gov).unwrap_err();
        let EvalError::BudgetExhausted { resource, .. } = err else {
            panic!("expected BudgetExhausted from freeze, got {err:?}");
        };
        assert_eq!(resource, Resource::Cancelled);

        let frozen = spec.freeze();
        let qs = queries(even, succ, 64);
        for threads in [1usize, 4] {
            let err = frozen
                .answer_batch_governed(&qs, &gov, threads)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    EvalError::BudgetExhausted {
                        resource: Resource::Cancelled,
                        ..
                    }
                ),
                "expected a cancellation trip at {threads} threads, got {err:?}"
            );
        }
    }

    #[test]
    fn exhausted_deadline_trips_with_resource_time() {
        let (spec, even, succ) = even_spec();
        // A zero wall-clock budget: the deadline is armed — and already
        // behind — at the first read-side checkpoint.
        let gov = quiet(Budget::unlimited().with_max_millis(0));

        let err = spec.clone().freeze_governed(&gov).unwrap_err();
        let EvalError::BudgetExhausted { resource, .. } = err else {
            panic!("expected BudgetExhausted from freeze, got {err:?}");
        };
        assert_eq!(resource, Resource::Time);

        let frozen = spec.freeze();
        let err = frozen
            .answer_batch_governed(&queries(even, succ, 64), &gov, 2)
            .unwrap_err();
        let EvalError::BudgetExhausted { resource, .. } = err else {
            panic!("expected BudgetExhausted from batch, got {err:?}");
        };
        assert_eq!(resource, Resource::Time);
    }

    /// After a mid-service trip the cache shards are not poisoned and not
    /// partially wrong: every later read — single, batched at several
    /// thread counts, memoized — still answers exactly.
    #[test]
    fn tripped_batches_leave_the_cache_shards_usable() {
        let (spec, even, succ) = even_spec();
        let frozen = spec.freeze();
        let qs = queries(even, succ, 128);

        // Warm part of the cache, then trip a governed batch on it.
        let warm: Vec<bool> = qs[..32].iter().map(|q| frozen.answer(q)).collect();
        let gov = quiet(Budget::unlimited());
        gov.cancel();
        frozen.answer_batch_governed(&qs, &gov, 4).unwrap_err();

        for threads in [1usize, 2, 4, 8] {
            let all = frozen.answer_batch_threads(&qs, threads);
            for (k, (&got, q)) in all.iter().zip(&qs).enumerate() {
                assert_eq!(got, frozen.answer(q), "query {k} at {threads} threads");
                assert_eq!(got, k % 2 == 0, "Even({k}) ground truth");
            }
        }
        assert_eq!(
            &warm[..],
            &qs[..32]
                .iter()
                .map(|q| frozen.answer(q))
                .collect::<Vec<_>>()[..]
        );
        let stats = frozen.serve_stats();
        assert!(
            stats.hits > 0 && stats.misses > 0,
            "cache never engaged: {stats:?}"
        );
    }
}

/// Under the CI fault matrix (`FUNDB_FAULT` set), *default* governors must
/// pick up the ambient plan: armed panics and round failures surface as
/// error values (never a process abort), and `slow_probe` alone still
/// completes with the exact fixpoint.
#[test]
fn ambient_fault_plan_reaches_default_governors() {
    let plan = *FaultPlan::from_env();
    if plan.is_inert() {
        return; // not running under the fault matrix
    }
    let mut fx = fixture(false);
    let mut full = chain_db(&mut fx, 24);
    evaluate_governed(&mut full, &fx.rules, &quiet(Budget::unlimited())).unwrap();
    let full_rows = path_rows(&full, &fx);

    let delta_plan = DeltaPlan::new(&fx.rules);
    let mut db = chain_db(&mut fx, 24);
    let result = IncrementalEval::new()
        .with_threads(4)
        .with_parallel_threshold(1)
        .with_governor(Governor::default())
        .run(&mut db, &fx.rules, &delta_plan);
    let rows = path_rows(&db, &fx);
    if plan.panic_task.is_some() || plan.fail_round.is_some() {
        assert!(result.is_err(), "armed fault was ignored: {result:?}");
        assert_eq!(
            rows[..],
            full_rows[..rows.len()],
            "faulted run left a non-prefix state"
        );
    } else {
        result.expect("slow_probe alone must not fail an undeadlined run");
        assert_eq!(rows, full_rows);
    }
}
