//! The forward line evaluator for temporal programs.
//!
//! A temporal rule with functional variable `s` mentions atoms at offsets
//! `s + a` (its functional terms are `+1`-chains over `s`). The rule is
//! *forward* when every body offset is ≤ the head offset: then the state of
//! time point `p` depends only on points ≤ `p`, and the whole line can be
//! computed left to right:
//!
//! ```text
//! σ(p) = local fixpoint of { seeds(p) } ∪
//!        { head@p of rules fired at m = p − h with bodies in σ(m+aᵢ) }
//! ```
//!
//! Because no facts live beyond the deepest database fact and rule windows
//! have width `K = max offset`, the suffix beyond `p` is determined by the
//! window `(σ(p−K+1), …, σ(p))`; a repeated window is a lasso. The detected
//! `(ρ, λ)` is then minimized, so that e.g. the Even example reports the
//! paper's `R = {(0, 2)}`.

use fundb_core::error::{Error, Result};
use fundb_core::gendb::AtomInterner;
use fundb_core::program::{Atom, Database, FTerm, NTerm, Program, Rule, Schema};
use fundb_core::state::State;
use fundb_datalog as dl;
use fundb_term::{Cst, FxHashMap, Interner, Pred, Var};

/// How a temporal program can be evaluated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TemporalClass {
    /// Forward program: the fast line evaluator applies.
    Forward,
    /// Temporal but not forward (some body offset exceeds its head's, a
    /// ground functional term in a rule, or several functional variables):
    /// use the general engine and extract the lasso from its graph
    /// specification.
    General,
    /// Not temporal at all (more than one pure symbol, or mixed symbols).
    NotTemporal,
}

/// Classifies a program + database.
pub fn classify(program: &Program, db: &Database, interner: &Interner) -> TemporalClass {
    let Ok(schema) = Schema::infer(program, db, interner) else {
        return TemporalClass::NotTemporal;
    };
    if schema.pure_syms.len() > 1 || !schema.mixed_syms.is_empty() {
        return TemporalClass::NotTemporal;
    }
    let mut class = TemporalClass::Forward;
    for rule in &program.rules {
        if classify_rule(rule) == TemporalClass::General {
            class = TemporalClass::General;
        }
    }
    class
}

fn classify_rule(rule: &Rule) -> TemporalClass {
    if rule.functional_vars().len() > 1 {
        return TemporalClass::General;
    }
    // Ground functional terms anywhere in a rule: general path.
    for atom in std::iter::once(&rule.head).chain(&rule.body) {
        if let Some(ft) = atom.fterm() {
            if ft.is_ground() {
                return TemporalClass::General;
            }
        }
    }
    let head_off = match rule.head.fterm() {
        Some(ft) => match offset_of(ft) {
            Some(h) => Some(h),
            None => return TemporalClass::General,
        },
        None => None,
    };
    for atom in &rule.body {
        if let Some(ft) = atom.fterm() {
            let Some(a) = offset_of(ft) else {
                return TemporalClass::General;
            };
            if let Some(h) = head_off {
                if a > h {
                    return TemporalClass::General;
                }
            }
            // Relational head: any offsets are fine (the rule only reads).
        }
    }
    TemporalClass::Forward
}

/// Offset of a non-ground temporal term (`+1`-chain over a variable), if
/// that is what the term is.
fn offset_of(ft: &FTerm) -> Option<usize> {
    let mut cur = ft;
    let mut n = 0usize;
    loop {
        match cur {
            FTerm::Var(_) => return Some(n),
            FTerm::Pure(_, t) => {
                n += 1;
                cur = t;
            }
            FTerm::Zero | FTerm::Mixed(..) => return None,
        }
    }
}

/// A compiled temporal rule.
struct TRule {
    head: THead,
    body: Vec<TAtom>,
    /// Max body offset: the rule's window reaches `m + max_off`.
    max_off: usize,
}

enum THead {
    /// Functional head at `s + offset`.
    At(Pred, usize, Vec<NTerm>),
    /// Relational head.
    Relational(Pred, Vec<NTerm>),
}

struct TAtom {
    pred: Pred,
    /// `Some(offset)` — functional at `s + offset`; `None` — relational.
    offset: Option<usize>,
    args: Vec<NTerm>,
}

/// Database facts grouped by time point.
type Seeds = FxHashMap<usize, Vec<(Pred, Box<[Cst]>)>>;

/// The computed line: states per position plus the lasso parameters.
pub(crate) struct Line {
    pub states: Vec<State>,
    pub rho: usize,
    pub lambda: usize,
    pub atoms: AtomInterner,
    pub nf: dl::Database,
}

/// Runs the forward line evaluator. `max_positions` bounds the search for a
/// lasso (the theoretical bound is exponential; practical programs repeat
/// quickly).
pub(crate) fn evaluate_forward(
    program: &Program,
    db: &Database,
    interner: &Interner,
    max_positions: usize,
) -> Result<Line> {
    debug_assert_eq!(classify(program, db, interner), TemporalClass::Forward);

    let mut atoms = AtomInterner::new();
    let mut seeds: Seeds = FxHashMap::default();
    let mut nf = dl::Database::new();
    let mut max_fact_pos = 0usize;
    for fact in &db.facts {
        match fact {
            Atom::Functional { pred, fterm, args } => {
                let pos = fterm.depth();
                max_fact_pos = max_fact_pos.max(pos);
                let row: Box<[Cst]> = args.iter().map(|a| a.as_const().unwrap()).collect();
                seeds.entry(pos).or_default().push((*pred, row));
            }
            Atom::Relational { pred, args } => {
                let row: Vec<Cst> = args.iter().map(|a| a.as_const().unwrap()).collect();
                nf.insert(*pred, &row);
            }
        }
    }

    // Compile rules; purely relational ones run as plain Datalog.
    let mut trules: Vec<TRule> = Vec::new();
    let mut pure_datalog: Vec<dl::Rule> = Vec::new();
    let conv = |ts: &[NTerm]| {
        ts.iter()
            .map(|t| match t {
                NTerm::Var(v) => dl::Term::Var(*v),
                NTerm::Const(c) => dl::Term::Const(*c),
            })
            .collect::<Vec<_>>()
    };
    for rule in &program.rules {
        let body: Vec<TAtom> = rule
            .body
            .iter()
            .map(|a| TAtom {
                pred: a.pred(),
                offset: a.fterm().and_then(offset_of),
                args: a.args().to_vec(),
            })
            .collect();
        let max_off = body.iter().filter_map(|a| a.offset).max();
        match (max_off, rule.head.fterm()) {
            (None, None) => {
                pure_datalog.push(dl::Rule::new(
                    dl::Atom::new(rule.head.pred(), conv(rule.head.args())),
                    rule.body
                        .iter()
                        .map(|a| dl::Atom::new(a.pred(), conv(a.args())))
                        .collect(),
                ));
            }
            (m, head_ft) => {
                let head = match head_ft {
                    Some(ft) => THead::At(
                        rule.head.pred(),
                        offset_of(ft).expect("forward class checked"),
                        rule.head.args().to_vec(),
                    ),
                    None => THead::Relational(rule.head.pred(), rule.head.args().to_vec()),
                };
                trules.push(TRule {
                    head,
                    body,
                    max_off: m.unwrap_or(0),
                });
            }
        }
    }
    let window = trules
        .iter()
        .map(|r| {
            let h = match &r.head {
                THead::At(_, h, _) => *h,
                THead::Relational(..) => 0,
            };
            r.max_off.max(h)
        })
        .max()
        .unwrap_or(0)
        .max(1);

    // Outer loop over the (finite, monotone) non-functional store.
    loop {
        dl::evaluate(&mut nf, &pure_datalog)?;
        let nf_before = nf.fact_count();

        let mut states: Vec<State> = Vec::new();
        let mut sigs: FxHashMap<Vec<State>, usize> = FxHashMap::default();
        let mut lasso: Option<(usize, usize)> = None;

        while lasso.is_none() {
            let p = states.len();
            if p > max_positions {
                return Err(Error::UnsupportedQuery {
                    detail: format!("no lasso within {max_positions} time points; raise the bound"),
                });
            }
            step_position(&trules, &seeds, &mut states, &mut nf, &mut atoms);
            if p >= max_fact_pos + window {
                let sig: Vec<State> = states[p + 1 - window..=p].to_vec();
                if let Some(&q) = sigs.get(&sig) {
                    lasso = Some((q, p - q));
                } else {
                    sigs.insert(sig, p);
                }
            }
        }

        let (q, mut lambda) = lasso.expect("loop exits with a lasso");
        // Extend one extra period so relational-head firings inside the
        // lasso have all been observed.
        let target = q + 2 * lambda + window;
        while states.len() <= target {
            step_position(&trules, &seeds, &mut states, &mut nf, &mut atoms);
        }

        if nf.fact_count() != nf_before {
            // The non-functional store grew: re-run (monotone ⇒ terminates).
            continue;
        }

        // Minimize λ (divisors), then ρ, on the computed states.
        for cand in 1..lambda {
            if lambda % cand == 0 && (q..=q + lambda).all(|i| states[i] == states[i + cand]) {
                lambda = cand;
                break;
            }
        }
        let mut rho = q;
        while rho > 0 && states[rho - 1] == states[rho - 1 + lambda] {
            rho -= 1;
        }

        return Ok(Line {
            states,
            rho,
            lambda,
            atoms,
            nf,
        });
    }
}

/// Computes σ(p) for the next position `p = states.len()`.
fn step_position(
    trules: &[TRule],
    seeds: &Seeds,
    states: &mut Vec<State>,
    nf: &mut dl::Database,
    atoms: &mut AtomInterner,
) {
    let p = states.len();
    let mut state = State::new();
    if let Some(facts) = seeds.get(&p) {
        for (pred, row) in facts {
            state.insert(atoms.intern(*pred, row));
        }
    }
    states.push(state);
    loop {
        let mut changed = false;
        for rule in trules {
            // Functional heads land at p; relational heads fire at the
            // point whose window just completed.
            let (m, is_rel) = match &rule.head {
                THead::At(_, h, _) => {
                    if p < *h {
                        continue;
                    }
                    (p - h, false)
                }
                THead::Relational(..) => {
                    if p < rule.max_off {
                        continue;
                    }
                    (p - rule.max_off, true)
                }
            };
            let mut derived: Vec<Vec<Cst>> = Vec::new();
            {
                let head_args = match &rule.head {
                    THead::At(_, _, args) | THead::Relational(_, args) => args,
                };
                let mut subst: FxHashMap<Var, Cst> = FxHashMap::default();
                fire_rec(rule, 0, m, states, nf, atoms, &mut subst, &mut |s| {
                    derived.push(ground(head_args, s));
                });
            }
            for row in derived {
                if is_rel {
                    let THead::Relational(pred, _) = &rule.head else {
                        unreachable!()
                    };
                    if !nf.contains(*pred, &row) {
                        nf.insert(*pred, &row);
                        // NF growth is detected by the caller's outer loop.
                    }
                } else {
                    let THead::At(pred, _, _) = &rule.head else {
                        unreachable!()
                    };
                    let id = atoms.intern(*pred, &row);
                    if states[p].insert(id) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

fn ground(args: &[NTerm], subst: &FxHashMap<Var, Cst>) -> Vec<Cst> {
    args.iter()
        .map(|a| match a {
            NTerm::Const(c) => *c,
            NTerm::Var(v) => subst[v],
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn fire_rec(
    rule: &TRule,
    idx: usize,
    m: usize,
    states: &[State],
    nf: &dl::Database,
    atoms: &AtomInterner,
    subst: &mut FxHashMap<Var, Cst>,
    emit: &mut dyn FnMut(&FxHashMap<Var, Cst>),
) {
    if idx == rule.body.len() {
        emit(subst);
        return;
    }
    let atom = &rule.body[idx];
    // Candidate rows are borrowed from the interner / NF store — no
    // per-row clone just to read them.
    let candidates: Vec<&[Cst]> = match atom.offset {
        Some(off) => {
            let pos = m + off;
            match states.get(pos) {
                Some(state) => state
                    .iter()
                    .map(|id| atoms.resolve(id))
                    .filter(|(p, _)| *p == atom.pred)
                    .map(|(_, args)| args)
                    .collect(),
                None => return,
            }
        }
        None => match nf.relation(atom.pred) {
            Some(rel) => rel.rows().collect(),
            None => Vec::new(),
        },
    };
    for row in candidates {
        if row.len() != atom.args.len() {
            continue;
        }
        let mut bound = Vec::new();
        let mut ok = true;
        for (t, v) in atom.args.iter().copied().zip(row.iter().copied()) {
            match t {
                NTerm::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                NTerm::Var(var) => match subst.get(&var) {
                    Some(&existing) => {
                        if existing != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(var, v);
                        bound.push(var);
                    }
                },
            }
        }
        if ok {
            fire_rec(rule, idx + 1, m, states, nf, atoms, subst, emit);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::{Func, Var as TVar};

    #[test]
    fn offsets_extracted() {
        let mut i = Interner::new();
        let s = Func(i.intern("+1"));
        let t = TVar(i.intern("t"));
        let ft = FTerm::Pure(s, Box::new(FTerm::Pure(s, Box::new(FTerm::Var(t)))));
        assert_eq!(offset_of(&ft), Some(2));
        assert_eq!(offset_of(&FTerm::Var(t)), Some(0));
        assert_eq!(offset_of(&FTerm::Zero), None);
    }
}
