//! Serialization of temporal lasso specifications.
//!
//! The temporal instance of "the rules may be forgotten": a lasso is fully
//! described by its prefix and cycle slices plus the relational store. The
//! format mirrors `fundb_core::spec_io`:
//!
//! ```text
//! fundblasso 1
//! rho 0
//! lambda 2
//! atom p 0 Meets Tony      # prefix slice at position 0
//! atom c 1 Meets Jan       # cycle slice at phase 1
//! nf Next Tony Jan
//! end
//! ```

use crate::line::TemporalClass;
use crate::spec::TemporalSpec;
use fundb_core::error::{Error, Result};
use fundb_core::gendb::AtomInterner;
use fundb_core::state::State;
use fundb_datalog as dl;
use fundb_term::{Cst, Interner, Pred};

/// Serializes a lasso specification.
pub fn write_lasso(spec: &TemporalSpec, interner: &Interner) -> String {
    let name = |s: fundb_term::Sym| -> &str {
        let n = interner.resolve(s);
        assert!(
            !n.contains(char::is_whitespace) && !n.is_empty(),
            "symbol `{n}` is not serializable"
        );
        n
    };
    let mut out = String::from("fundblasso 1\n");
    out.push_str(&format!("rho {}\n", spec.rho()));
    out.push_str(&format!("lambda {}\n", spec.lambda()));
    let mut emit = |tag: char, idx: usize, state: &State| {
        for id in state.iter() {
            let (p, args) = spec.atoms.resolve(id);
            out.push_str(&format!("atom {tag} {idx} {}", name(p.sym())));
            for a in args {
                out.push(' ');
                out.push_str(name(a.sym()));
            }
            out.push('\n');
        }
    };
    for (i, s) in spec.prefix.iter().enumerate() {
        emit('p', i, s);
    }
    for (i, s) in spec.cycle.iter().enumerate() {
        emit('c', i, s);
    }
    for (p, rel) in spec.nf.iter() {
        for row in rel.rows() {
            out.push_str(&format!("nf {}", name(p.sym())));
            for a in row.iter() {
                out.push(' ');
                out.push_str(name(a.sym()));
            }
            out.push('\n');
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a lasso specification, interning symbol names into `interner`.
pub fn read_lasso(text: &str, interner: &mut Interner) -> Result<TemporalSpec> {
    let err = |lineno: usize, detail: &str| Error::Parse {
        offset: lineno,
        detail: format!("lasso file line {}: {detail}", lineno + 1),
    };
    let mut lines = text.lines().enumerate();
    let (n0, header) = lines.next().ok_or_else(|| err(0, "empty file"))?;
    if header.trim() != "fundblasso 1" {
        return Err(err(n0, "expected header `fundblasso 1`"));
    }
    let mut rho: Option<usize> = None;
    let mut lambda: Option<usize> = None;
    let mut atoms = AtomInterner::new();
    let mut prefix: Vec<State> = Vec::new();
    let mut cycle: Vec<State> = Vec::new();
    let mut nf = dl::Database::new();
    let mut ended = false;

    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["rho", v] => {
                let n: usize = v.parse().map_err(|_| err(lineno, "malformed rho"))?;
                rho = Some(n);
                prefix = vec![State::new(); n];
            }
            ["lambda", v] => {
                let n: usize = v.parse().map_err(|_| err(lineno, "malformed lambda"))?;
                lambda = Some(n);
                cycle = vec![State::new(); n];
            }
            ["atom", tag, idx, pred, args @ ..] => {
                let idx: usize = idx.parse().map_err(|_| err(lineno, "malformed index"))?;
                let pred = Pred(interner.intern(pred));
                let row: Vec<Cst> = args.iter().map(|n| Cst(interner.intern(n))).collect();
                let id = atoms.intern(pred, &row);
                let slot = match *tag {
                    "p" => prefix.get_mut(idx),
                    "c" => cycle.get_mut(idx),
                    _ => return Err(err(lineno, "atom tag must be `p` or `c`")),
                };
                slot.ok_or_else(|| err(lineno, "atom index out of range"))?
                    .insert(id);
            }
            ["nf", pred, args @ ..] => {
                let pred = Pred(interner.intern(pred));
                let row: Vec<Cst> = args.iter().map(|n| Cst(interner.intern(n))).collect();
                nf.insert(pred, &row);
            }
            ["end"] => {
                ended = true;
                break;
            }
            _ => return Err(err(lineno, "unknown or malformed line")),
        }
    }
    if !ended {
        return Err(Error::Parse {
            offset: 0,
            detail: "lasso file missing `end`".into(),
        });
    }
    let (Some(_), Some(lambda)) = (rho, lambda) else {
        return Err(Error::Parse {
            offset: 0,
            detail: "lasso file missing rho/lambda".into(),
        });
    };
    if lambda == 0 {
        return Err(Error::Parse {
            offset: 0,
            detail: "lambda must be positive".into(),
        });
    }
    Ok(TemporalSpec {
        prefix,
        cycle,
        atoms,
        nf,
        class: TemporalClass::Forward,
    })
}

/// Reads a lasso file from disk. I/O failures become [`Error::Io`] and
/// malformed content becomes [`Error::Parse`] — never a panic.
pub fn read_lasso_file(path: &str, interner: &mut Interner) -> Result<TemporalSpec> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, &e))?;
    read_lasso(&text, interner)
}

/// Writes a lasso file to disk, mapping I/O failures to [`Error::Io`].
pub fn write_lasso_file(path: &str, spec: &TemporalSpec, interner: &Interner) -> Result<()> {
    let text = write_lasso(spec, interner);
    std::fs::write(path, text).map_err(|e| Error::io(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_parser::Workspace;

    fn scheduler_spec() -> (Interner, TemporalSpec) {
        let mut ws = Workspace::new();
        ws.parse(
            "In(t, g, r1), Rotates(g, r1, r2) -> In(t+1, g, r2).
             In(0, Alpha, Lab).
             Rotates(Alpha, Lab, Aud). Rotates(Alpha, Aud, Lab).",
        )
        .unwrap();
        let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
        (ws.interner, spec)
    }

    #[test]
    fn lasso_round_trips() {
        let (i, spec) = scheduler_spec();
        let text = write_lasso(&spec, &i);
        let mut fresh = Interner::new();
        let loaded = read_lasso(&text, &mut fresh).unwrap();
        assert_eq!(loaded.rho(), spec.rho());
        assert_eq!(loaded.lambda(), spec.lambda());
        let in_pred_old = Pred(i.get("In").unwrap());
        let in_pred_new = Pred(fresh.get("In").unwrap());
        let alpha_old = Cst(i.get("Alpha").unwrap());
        let alpha_new = Cst(fresh.get("Alpha").unwrap());
        let lab_old = Cst(i.get("Lab").unwrap());
        let lab_new = Cst(fresh.get("Lab").unwrap());
        for n in 0..20u64 {
            assert_eq!(
                spec.holds(in_pred_old, n, &[alpha_old, lab_old]),
                loaded.holds(in_pred_new, n, &[alpha_new, lab_new]),
                "n={n}"
            );
        }
        // Canonical: a second round trip is byte-identical.
        assert_eq!(text, write_lasso(&loaded, &fresh));
    }

    #[test]
    fn reader_rejects_malformed_input() {
        let mut i = Interner::new();
        for bad in [
            "",
            "fundblasso 2\nend\n",
            "fundblasso 1\nrho 0\nlambda 1\n", // no end
            "fundblasso 1\nrho 0\nlambda 0\nend\n",
            "fundblasso 1\nrho 0\nlambda 1\natom x 0 P\nend\n",
            "fundblasso 1\nrho 0\nlambda 1\natom c 5 P\nend\n",
            "fundblasso 1\nbogus\nend\n",
        ] {
            assert!(read_lasso(bad, &mut i).is_err(), "accepted: {bad:?}");
        }
    }

    /// Mutation fuzz: flipping any single line of a valid file never panics
    /// (it either parses or errors cleanly).
    #[test]
    fn reader_survives_line_mutations() {
        let (i, spec) = scheduler_spec();
        let text = write_lasso(&spec, &i);
        let lines: Vec<&str> = text.lines().collect();
        for k in 0..lines.len() {
            // Drop line k.
            let mutated: String = lines
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != k)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let mut fresh = Interner::new();
            let _ = read_lasso(&mutated, &mut fresh);
            // Duplicate line k.
            let mutated: String = lines
                .iter()
                .enumerate()
                .flat_map(|(j, l)| {
                    if j == k {
                        vec![format!("{l}\n"), format!("{l}\n")]
                    } else {
                        vec![format!("{l}\n")]
                    }
                })
                .collect();
            let mut fresh = Interner::new();
            let _ = read_lasso(&mutated, &mut fresh);
        }
    }
}
