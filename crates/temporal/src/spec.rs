//! Lasso specifications of temporal least fixpoints.
//!
//! For temporal rules "the relation R contains just one pair capturing the
//! periodicity of the least fixpoint" (§4): the fixpoint is eventually
//! periodic, so it is finitely represented by a prefix of `ρ` slices, a
//! cycle of `λ` slices, and the single equation `ρ ≅ ρ+λ` — the temporal
//! instance of the equational specification `(B, R)` of §3.5.

use crate::line::{self, classify, TemporalClass};
use fundb_core::engine::Engine;
use fundb_core::error::{Error, Result};
use fundb_core::gendb::AtomInterner;
use fundb_core::graphspec::GraphSpec;
use fundb_core::program::{Database, Program};
use fundb_core::state::State;
use fundb_datalog as dl;
use fundb_term::{Cst, Interner, Pred};

/// The lasso `(prefix, cycle)` representation of a temporal least fixpoint.
///
/// ```
/// use fundb_parser::Workspace;
/// use fundb_temporal::TemporalSpec;
///
/// let mut ws = Workspace::new();
/// ws.parse("Even(t) -> Even(t+2). Even(0).").unwrap();
/// let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
/// assert_eq!(spec.equation(), (0, 2));                      // the paper's R = {(0,2)}
/// let even = fundb_term::Pred(ws.interner.get("Even").unwrap());
/// assert!(spec.holds(even, 1_000_000_000_000, &[]));        // O(1) at any distance
/// ```
#[derive(Clone)]
pub struct TemporalSpec {
    /// Slices of time points `0 .. ρ`.
    pub prefix: Vec<State>,
    /// Slices of time points `ρ .. ρ+λ` (repeating forever).
    pub cycle: Vec<State>,
    /// Abstract-atom vocabulary.
    pub atoms: AtomInterner,
    /// Relational facts.
    pub nf: dl::Database,
    /// Which evaluation path produced the spec.
    pub class: TemporalClass,
}

impl TemporalSpec {
    /// Computes the specification, choosing the fast line evaluator for
    /// forward programs and the general engine otherwise.
    pub fn compute(program: &Program, db: &Database, interner: &mut Interner) -> Result<Self> {
        Self::compute_bounded(program, db, interner, 1_000_000)
    }

    /// [`TemporalSpec::compute`] with an explicit bound on the lasso search.
    pub fn compute_bounded(
        program: &Program,
        db: &Database,
        interner: &mut Interner,
        max_positions: usize,
    ) -> Result<Self> {
        match classify(program, db, interner) {
            TemporalClass::NotTemporal => Err(Error::UnsupportedQuery {
                detail: "not a temporal program (needs exactly one pure function symbol)".into(),
            }),
            TemporalClass::Forward => {
                let line = line::evaluate_forward(program, db, interner, max_positions)?;
                let rho = line.rho;
                let lambda = line.lambda;
                Ok(TemporalSpec {
                    prefix: line.states[..rho].to_vec(),
                    cycle: line.states[rho..rho + lambda].to_vec(),
                    atoms: line.atoms,
                    nf: line.nf,
                    class: TemporalClass::Forward,
                })
            }
            TemporalClass::General => {
                let mut engine = Engine::build(program, db, interner)?;
                let spec = GraphSpec::from_engine(&mut engine)?;
                let mut out = Self::from_graph_spec(&spec)?;
                out.class = TemporalClass::General;
                Ok(out)
            }
        }
    }

    /// Extracts the lasso from a general graph specification over a single
    /// function symbol: the successor graph restricted to one symbol is a
    /// ρ-shaped walk.
    pub fn from_graph_spec(spec: &GraphSpec) -> Result<Self> {
        if spec.funcs.len() != 1 {
            return Err(Error::UnsupportedQuery {
                detail: "graph specification is not over a single function symbol".into(),
            });
        }
        let f = spec.funcs.symbols()[0];
        let mut seq: Vec<State> = Vec::new();
        let mut seen: fundb_term::FxHashMap<usize, usize> = fundb_term::FxHashMap::default();
        let mut cur = spec.root();
        let (q, end) = loop {
            if let Some(&at) = seen.get(&cur.index()) {
                break (at, seq.len());
            }
            seen.insert(cur.index(), seq.len());
            seq.push(spec.nodes[cur.index()].state.clone());
            cur = spec.successor[&(cur, f)];
        };
        let mut lambda = end - q;
        // Minimize λ on the cycle states (distinct spec nodes can carry
        // equal states, because shallow terms force singleton clusters).
        for cand in 1..lambda {
            if lambda % cand == 0 && (0..lambda).all(|i| seq[q + i] == seq[q + (i + cand) % lambda])
            {
                lambda = cand;
                break;
            }
        }
        // Periodic extension phase of position n (valid for any n once the
        // period λ is established from q).
        let phase = |n: usize| ((n as i64 - q as i64).rem_euclid(lambda as i64)) as usize;
        // Minimize ρ: extend the periodicity downwards while states match.
        let mut rho = q;
        while rho > 0 && seq[rho - 1] == seq[q + phase(rho - 1)] {
            rho -= 1;
        }
        Ok(TemporalSpec {
            prefix: seq[..rho].to_vec(),
            cycle: (0..lambda)
                .map(|i| seq[q + phase(rho + i)].clone())
                .collect(),
            atoms: spec.atoms.clone(),
            nf: spec.nf.clone(),
            class: TemporalClass::General,
        })
    }

    /// The prefix length ρ.
    pub fn rho(&self) -> usize {
        self.prefix.len()
    }

    /// The period λ.
    pub fn lambda(&self) -> usize {
        self.cycle.len().max(1)
    }

    /// The single equation of the equational specification: `(ρ, ρ+λ)` —
    /// `R = {(0, 2)}` on the paper's Even example.
    pub fn equation(&self) -> (usize, usize) {
        (self.rho(), self.rho() + self.lambda())
    }

    /// The slice of time point `n`.
    pub fn state_at(&self, n: u64) -> &State {
        static EMPTY: std::sync::OnceLock<State> = std::sync::OnceLock::new();
        if (n as usize) < self.prefix.len() {
            return &self.prefix[n as usize];
        }
        if self.cycle.is_empty() {
            return EMPTY.get_or_init(State::new);
        }
        let k = (n as usize - self.prefix.len()) % self.cycle.len();
        &self.cycle[k]
    }

    /// Yes-no membership `P(n, ā)` — works for arbitrarily large `n`.
    pub fn holds(&self, pred: Pred, n: u64, args: &[Cst]) -> bool {
        self.atoms
            .get(pred, args)
            .is_some_and(|id| self.state_at(n).contains(id))
    }

    /// Yes-no membership for a relational tuple.
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.nf.contains(pred, args)
    }

    /// Total number of tuples stored (the `B` of the temporal spec).
    pub fn primary_size(&self) -> usize {
        self.prefix
            .iter()
            .chain(self.cycle.iter())
            .map(State::len)
            .sum::<usize>()
            + self.nf.fact_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_core::program::{Atom, FTerm, NTerm, Rule};
    use fundb_term::{Func, Var};

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    fn succ_chain(s: Func, base: FTerm, n: usize) -> FTerm {
        let mut t = base;
        for _ in 0..n {
            t = FTerm::Pure(s, Box::new(t));
        }
        t
    }

    /// §3.5 Even: the temporal spec is the paper's R = {(0,2)} exactly.
    #[test]
    fn even_has_equation_zero_two() {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let s = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(even, succ_chain(s, FTerm::Var(t), 2), vec![]),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        assert_eq!(spec.class, TemporalClass::Forward);
        assert_eq!(spec.equation(), (0, 2));
        for n in 0..100u64 {
            assert_eq!(spec.holds(even, n, &[]), n % 2 == 0, "n={n}");
        }
        assert!(spec.holds(even, 1_000_000_000_000, &[]));
        assert!(!spec.holds(even, 1_000_000_000_001, &[]));
    }

    /// The Meets example through the fast path, checked against the general
    /// engine.
    #[test]
    fn meets_fast_path_agrees_with_engine() {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let s = Func(i.intern("+1"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("Tony")), Cst(i.intern("Jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(meets, succ_chain(s, FTerm::Var(t), 1), vec![NTerm::Var(y)]),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        assert_eq!(spec.class, TemporalClass::Forward);
        assert_eq!(spec.equation(), (0, 2));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        engine.solve().unwrap();
        for n in 0..40u64 {
            for who in [tony, jan] {
                assert_eq!(
                    spec.holds(meets, n, &[who]),
                    engine.holds(meets, &vec![s; n as usize], &[who]),
                    "n={n}"
                );
            }
        }
    }

    /// A +2 rule whose single-state lasso would be wrong: A(t) → B(t+2).
    /// The window-based detection keeps the spec correct.
    #[test]
    fn window_detection_handles_offset_two() {
        let mut i = Interner::new();
        let a = Pred(i.intern("A"));
        let b = Pred(i.intern("B"));
        let s = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(b, succ_chain(s, FTerm::Var(t), 2), vec![]),
            vec![fat(a, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, FTerm::Zero, vec![]));
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        assert!(spec.holds(a, 0, &[]));
        assert!(spec.holds(b, 2, &[]));
        for n in [1u64, 3, 4, 5, 100] {
            assert!(!spec.holds(b, n, &[]), "B({n}) must not hold");
            if n > 0 {
                assert!(!spec.holds(a, n, &[]), "A({n}) must not hold");
            }
        }
    }

    /// A backward temporal rule goes through the general path and still
    /// yields a correct lasso.
    #[test]
    fn backward_rules_use_general_path() {
        let mut i = Interner::new();
        let a = Pred(i.intern("A"));
        let c = Pred(i.intern("C"));
        let s = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        // A(t) → A(t+1)  (A everywhere from 0)
        prog.push(Rule::new(
            fat(a, succ_chain(s, FTerm::Var(t), 1), vec![]),
            vec![fat(a, FTerm::Var(t), vec![])],
        ));
        // A(t+1) → C(t)  (backward)
        prog.push(Rule::new(
            fat(c, FTerm::Var(t), vec![]),
            vec![fat(a, succ_chain(s, FTerm::Var(t), 1), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, FTerm::Zero, vec![]));
        assert_eq!(classify(&prog, &db, &i), TemporalClass::General);
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        for n in 0..20u64 {
            assert!(spec.holds(a, n, &[]), "A({n})");
            assert!(spec.holds(c, n, &[]), "C({n})");
        }
    }

    /// Relational facts derived from temporal ones (a rule with a
    /// relational head) are collected.
    #[test]
    fn relational_heads_are_derived() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let hit = Pred(i.intern("Hit"));
        let s = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let x = Var(i.intern("x"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(p, succ_chain(s, FTerm::Var(t), 1), vec![NTerm::Var(x)]),
            vec![fat(p, FTerm::Var(t), vec![NTerm::Var(x)])],
        ));
        // P(t+1, x) → Hit(x): forward (relational head reads offset 1).
        prog.push(Rule::new(
            Atom::Relational {
                pred: hit,
                args: vec![NTerm::Var(x)],
            },
            vec![fat(p, succ_chain(s, FTerm::Var(t), 1), vec![NTerm::Var(x)])],
        ));
        let mut db = Database::new();
        let aconst = Cst(i.intern("A"));
        db.facts
            .push(fat(p, FTerm::Zero, vec![NTerm::Const(aconst)]));
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        assert!(spec.holds_relational(hit, &[aconst]));
    }

    /// Lassos with non-trivial prefixes: A dies out after position 3.
    #[test]
    fn finite_fixpoints_have_empty_cycle_states() {
        let mut i = Interner::new();
        let a = Pred(i.intern("A"));
        let b = Pred(i.intern("B"));
        let s = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        // A(t) → B(t+1): one step, no recursion.
        prog.push(Rule::new(
            fat(b, succ_chain(s, FTerm::Var(t), 1), vec![]),
            vec![fat(a, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, succ_chain(s, FTerm::Zero, 3), vec![]));
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        assert!(spec.holds(a, 3, &[]));
        assert!(spec.holds(b, 4, &[]));
        assert!(!spec.holds(b, 5, &[]));
        // The cycle is a single empty state.
        assert_eq!(spec.lambda(), 1);
        assert!(spec.cycle.iter().all(State::is_empty));
    }
}
