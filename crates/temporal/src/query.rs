//! §5 query answering specialized to temporal lassos.
//!
//! For a temporal program the incremental specification of a uniform query
//! `{(t, x̄) : body}` is itself a lasso: evaluate the body against each of
//! the finitely many slices (prefix + cycle) and keep the per-phase answer
//! tuples. Membership for any time point — however large — is then O(1),
//! and enumeration walks the time line directly.

use crate::spec::TemporalSpec;
use fundb_core::error::{Error, Result};
use fundb_core::program::{Atom, FTerm, NTerm};
use fundb_core::query::Query;
use fundb_core::state::State;
use fundb_term::{Cst, FxHashMap, FxHashSet, Var};

/// The lasso-shaped answer to a uniform temporal query.
#[derive(Clone, Debug)]
pub struct TemporalAnswer {
    /// Answer tuples at each prefix time point `0 .. ρ`.
    pub prefix: Vec<Vec<Vec<Cst>>>,
    /// Answer tuples at each cycle phase `ρ .. ρ+λ` (repeating forever).
    pub cycle: Vec<Vec<Vec<Cst>>>,
}

impl TemporalAnswer {
    /// Evaluates a uniform query against a temporal specification.
    ///
    /// The query must be uniform (Theorem 5.1) and any ground functional
    /// terms must be temporal (`+1`-chains over `0`).
    pub fn evaluate(query: &Query, spec: &TemporalSpec) -> Result<TemporalAnswer> {
        if !query.is_uniform() {
            return Err(Error::UnsupportedQuery {
                detail: "incremental temporal answers require a uniform query".into(),
            });
        }
        let rho = spec.rho();
        let lambda = spec.lambda();
        let eval = |n: u64| -> Vec<Vec<Cst>> {
            let mut out: FxHashSet<Vec<Cst>> = FxHashSet::default();
            let mut subst: FxHashMap<Var, Cst> = FxHashMap::default();
            eval_rec(query, spec, 0, n, &mut subst, &mut |s| {
                let tuple: Vec<Cst> = query
                    .out_nvars
                    .iter()
                    .map(|v| *s.get(v).expect("validated query binds outputs"))
                    .collect();
                out.insert(tuple);
            });
            let mut v: Vec<Vec<Cst>> = out.into_iter().collect();
            v.sort();
            v
        };
        Ok(TemporalAnswer {
            prefix: (0..rho as u64).map(&eval).collect(),
            cycle: (rho as u64..(rho + lambda) as u64).map(&eval).collect(),
        })
    }

    /// The answer tuples at time point `n` (any magnitude).
    pub fn at(&self, n: u64) -> &[Vec<Cst>] {
        if (n as usize) < self.prefix.len() {
            return &self.prefix[n as usize];
        }
        if self.cycle.is_empty() {
            return &[];
        }
        let k = (n as usize - self.prefix.len()) % self.cycle.len();
        &self.cycle[k]
    }

    /// Whether `(n, tuple)` is an answer.
    pub fn holds(&self, n: u64, tuple: &[Cst]) -> bool {
        self.at(n).iter().any(|t| t == tuple)
    }

    /// Enumerates `(n, tuple)` answers in time order, up to `limit`.
    /// Stops early when the answer is finite (an empty cycle).
    pub fn enumerate(&self, limit: usize) -> Vec<(u64, Vec<Cst>)> {
        let mut out = Vec::new();
        let cycle_empty = self.cycle.iter().all(Vec::is_empty);
        let horizon = if cycle_empty {
            self.prefix.len() as u64
        } else {
            u64::MAX
        };
        let mut n = 0u64;
        while out.len() < limit && n < horizon {
            for t in self.at(n) {
                if out.len() >= limit {
                    break;
                }
                out.push((n, t.clone()));
            }
            n += 1;
        }
        out
    }

    /// Whether the answer set is finite.
    pub fn is_finite(&self) -> bool {
        self.cycle.iter().all(Vec::is_empty)
    }
}

fn eval_rec(
    query: &Query,
    spec: &TemporalSpec,
    idx: usize,
    n: u64,
    subst: &mut FxHashMap<Var, Cst>,
    emit: &mut dyn FnMut(&FxHashMap<Var, Cst>),
) {
    if idx == query.body.len() {
        emit(subst);
        return;
    }
    let atom = &query.body[idx];
    // Candidate rows are borrowed straight from the spec — no per-row
    // clone just to read them.
    let candidates: Vec<&[Cst]> = match atom {
        Atom::Relational { pred, .. } => match spec.nf.relation(*pred) {
            Some(rel) => rel.rows().collect(),
            None => Vec::new(),
        },
        Atom::Functional { pred, fterm, .. } => {
            let state: &State = if matches!(fterm, FTerm::Var(_)) {
                spec.state_at(n)
            } else {
                // Ground temporal term: its depth is its time point.
                spec.state_at(fterm.depth() as u64)
            };
            state
                .iter()
                .map(|id| spec.atoms.resolve(id))
                .filter(|(p, _)| p == pred)
                .map(|(_, args)| args)
                .collect()
        }
    };
    for row in candidates {
        if row.len() != atom.args().len() {
            continue;
        }
        let mut bound = Vec::new();
        let mut ok = true;
        for (t, v) in atom.args().iter().copied().zip(row.iter().copied()) {
            match t {
                NTerm::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                NTerm::Var(var) => match subst.get(&var) {
                    Some(&existing) => {
                        if existing != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(var, v);
                        bound.push(var);
                    }
                },
            }
        }
        if ok {
            eval_rec(query, spec, idx + 1, n, subst, emit);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_core::program::{Database, Program, Rule};
    use fundb_term::{Func, Interner, Pred};

    fn meets() -> (Interner, Program, Database, Pred, Var, Var, Cst, Cst) {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let s = Func(i.intern("+1"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("Tony")), Cst(i.intern("Jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: meets,
                fterm: FTerm::Pure(s, Box::new(FTerm::Var(t))),
                args: vec![NTerm::Var(y)],
            },
            vec![
                Atom::Functional {
                    pred: meets,
                    fterm: FTerm::Var(t),
                    args: vec![NTerm::Var(x)],
                },
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: meets,
            fterm: FTerm::Zero,
            args: vec![NTerm::Const(tony)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        (i, prog, db, meets, t, x, tony, jan)
    }

    #[test]
    fn lasso_answers_meets_query() {
        let (mut i, prog, db, meets, t, x, tony, jan) = meets();
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        let q = Query {
            out_fvar: Some(t),
            out_nvars: vec![x],
            body: vec![Atom::Functional {
                pred: meets,
                fterm: FTerm::Var(t),
                args: vec![NTerm::Var(x)],
            }],
        };
        let ans = TemporalAnswer::evaluate(&q, &spec).unwrap();
        assert!(!ans.is_finite());
        for n in 0..50u64 {
            assert_eq!(ans.holds(n, &[tony]), n % 2 == 0);
            assert_eq!(ans.holds(n, &[jan]), n % 2 == 1);
        }
        // O(1) at astronomical distance.
        assert!(ans.holds(1_000_000_000_000, &[tony]));
        // Enumeration in time order.
        let e = ans.enumerate(4);
        assert_eq!(
            e,
            vec![
                (0, vec![tony]),
                (1, vec![jan]),
                (2, vec![tony]),
                (3, vec![jan])
            ]
        );
    }

    #[test]
    fn finite_answers_terminate_enumeration() {
        let mut i = Interner::new();
        let a = Pred(i.intern("A"));
        let b = Pred(i.intern("B"));
        let s = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        // A(t) → B(t+1), no recursion.
        prog.push(Rule::new(
            Atom::Functional {
                pred: b,
                fterm: FTerm::Pure(s, Box::new(FTerm::Var(t))),
                args: vec![],
            },
            vec![Atom::Functional {
                pred: a,
                fterm: FTerm::Var(t),
                args: vec![],
            }],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: a,
            fterm: FTerm::Zero,
            args: vec![],
        });
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        let q = Query {
            out_fvar: Some(t),
            out_nvars: vec![],
            body: vec![Atom::Functional {
                pred: b,
                fterm: FTerm::Var(t),
                args: vec![],
            }],
        };
        let ans = TemporalAnswer::evaluate(&q, &spec).unwrap();
        assert!(ans.is_finite());
        assert_eq!(ans.enumerate(100), vec![(1, vec![])]);
    }

    #[test]
    fn conjunctive_temporal_query() {
        let (mut i, prog, db, meets, t, x, tony, _) = meets();
        let senior = Pred(i.intern("Senior"));
        let mut db = db;
        db.facts.push(Atom::Relational {
            pred: senior,
            args: vec![NTerm::Const(tony)],
        });
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        // {t : Meets(t,x), Senior(x)}.
        let q = Query {
            out_fvar: Some(t),
            out_nvars: vec![],
            body: vec![
                Atom::Functional {
                    pred: meets,
                    fterm: FTerm::Var(t),
                    args: vec![NTerm::Var(x)],
                },
                Atom::Relational {
                    pred: senior,
                    args: vec![NTerm::Var(x)],
                },
            ],
        };
        let ans = TemporalAnswer::evaluate(&q, &spec).unwrap();
        for n in 0..20u64 {
            assert_eq!(ans.holds(n, &[]), n % 2 == 0, "n={n}");
        }
    }

    #[test]
    fn non_uniform_rejected() {
        let (mut i, prog, db, meets, t, x, _, _) = meets();
        let s = Func(i.get("+1").unwrap());
        let spec = TemporalSpec::compute(&prog, &db, &mut i).unwrap();
        let q = Query {
            out_fvar: None,
            out_nvars: vec![x],
            body: vec![Atom::Functional {
                pred: meets,
                fterm: FTerm::Pure(s, Box::new(FTerm::Var(t))),
                args: vec![NTerm::Var(x)],
            }],
        };
        assert!(TemporalAnswer::evaluate(&q, &spec).is_err());
    }
}
