#![warn(missing_docs)]
//! Temporal deductive databases — the single-successor specialization.
//!
//! *Temporal rules* are the paper's historically first fragment ([CI88]):
//! functional rules over one unary function symbol `+1`, so ground terms are
//! the natural numbers and least fixpoints are (eventually periodic) sets of
//! timestamped facts. The paper singles them out throughout the complexity
//! section: yes-no query processing is PSPACE-complete for temporal rules
//! versus DEXPTIME-complete for general functional rules (Theorem 4.1), the
//! equational specification is single- instead of double-exponential
//! (Theorem 4.3), and "the relation R contains just one pair capturing the
//! periodicity of the least fixpoint" (§4).
//!
//! This crate provides:
//!
//! * [`TemporalSpec`] — the lasso representation `(prefix ρ, period λ)` with
//!   one slice per position and the single equation `R = {(ρ, ρ+λ)}`;
//! * a **fast line evaluator** ([`line`]) for *forward* temporal programs
//!   (every body offset ≤ the head offset): sequential state computation
//!   along the time line with window-signature lasso detection — much
//!   cheaper than the general engine, which is the empirical content of the
//!   Theorem 4.1 comparison (experiment E4);
//! * a **fallback** ([`TemporalSpec::from_graph_spec`]) that extracts the
//!   lasso from a general graph specification for non-forward temporal
//!   programs.
//!
//! On the §3.5 Even example the computed equation is exactly the paper's
//! `R = {(0, 2)}` (the prefix is minimized after detection, matching the
//! footnote-3 improvement of starting Algorithm Q at depth `c` for temporal
//! rules).

pub mod io;
pub mod line;
pub mod query;
pub mod spec;

pub use io::{read_lasso, read_lasso_file, write_lasso, write_lasso_file};
pub use line::{classify, TemporalClass};
pub use query::TemporalAnswer;
pub use spec::TemporalSpec;
