//! Bounded-depth naive materialization — the [RBS87] baseline.
//!
//! A conventional Datalog engine confronted with functional rules can only
//! ground the term universe to some depth `D` and saturate; on an unsafe
//! program the materialized answer grows without bound as `D` grows, which
//! is exactly the problem the paper's relational specifications solve (§1:
//! "a standard solution … is to detect such unsafe queries and simply
//! disallow them [RBS87]").
//!
//! [`BoundedMaterialization`] implements this baseline faithfully: every
//! ground pure term of depth ≤ D becomes a constant, every rule is
//! instantiated at every node whose star stays within depth D, and the
//! function-free substrate (`fundb-datalog`) saturates the grounding.
//!
//! It serves two roles:
//!
//! * the comparison point of experiment E9 (answer size and time diverge
//!   with D, versus the constant-size relational specification), and
//! * a differential-testing oracle: everything it derives is in the least
//!   fixpoint, so `engine ⊇ naive` must hold at every depth; and for
//!   programs whose information flows only upward (no body atom deeper than
//!   the head), it is *exact* on terms of depth ≤ D.

use crate::error::Result;
use crate::program::{Atom, FTerm, NTerm, Rule};
use crate::pure::PureProgram;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FxHashMap, Interner, Pred};

/// Result of grounding and saturating a pure normal program to depth `D`.
pub struct BoundedMaterialization {
    /// The grounding depth `D`.
    pub depth: usize,
    /// The saturated function-free database. Functional predicates carry
    /// their term constant in the first column.
    pub db: dl::Database,
    /// Number of ground rule instances produced.
    pub ground_rules: usize,
    /// Counters of the saturating fixpoint run (rounds, probes, index
    /// hits/misses) — the baseline's cost, comparable to the engine's
    /// [`EngineStats`](crate::engine::EngineStats).
    pub eval: dl::EvalStats,
    /// First-derivation provenance (present when built with
    /// [`BoundedMaterialization::run_traced`]).
    pub provenance: Option<dl::Provenance>,
    term_consts: FxHashMap<Vec<Func>, Cst>,
}

impl BoundedMaterialization {
    /// Like [`BoundedMaterialization::run`], but records first-derivation
    /// provenance so that [`BoundedMaterialization::explain`] can produce
    /// proofs. Within the horizon this doubles as a *why* facility for the
    /// infinite fixpoint: a derivation found at any depth is a genuine
    /// derivation in `LFP(Z, D)`.
    pub fn run_traced(pure: &PureProgram, depth: usize, interner: &mut Interner) -> Result<Self> {
        let out = Self::build(pure, depth, interner, true, &dl::Governor::default())?;
        debug_assert!(out.provenance.is_some());
        Ok(out)
    }

    /// Grounds `pure` to depth `D` and saturates. `D` must be ≥ the depth
    /// of the deepest ground term in the program (`c`).
    pub fn run(pure: &PureProgram, depth: usize, interner: &mut Interner) -> Result<Self> {
        Self::build(pure, depth, interner, false, &dl::Governor::default())
    }

    /// Like [`BoundedMaterialization::run`], but the saturating fixpoint
    /// runs under `governor`: its budgets and cancellation token bound the
    /// grounding's (potentially enormous) saturation.
    pub fn run_governed(
        pure: &PureProgram,
        depth: usize,
        interner: &mut Interner,
        governor: &dl::Governor,
    ) -> Result<Self> {
        Self::build(pure, depth, interner, false, governor)
    }

    fn build(
        pure: &PureProgram,
        depth: usize,
        interner: &mut Interner,
        traced: bool,
        governor: &dl::Governor,
    ) -> Result<Self> {
        assert!(
            depth >= pure.schema.max_ground_depth,
            "materialization depth must cover the program's ground terms"
        );
        // Enumerate all terms of depth ≤ D as constants.
        let mut term_consts: FxHashMap<Vec<Func>, Cst> = FxHashMap::default();
        let mut paths: Vec<Vec<Func>> = vec![vec![]];
        let mut frontier: Vec<Vec<Func>> = vec![vec![]];
        for _ in 0..depth {
            let mut next = Vec::new();
            for p in &frontier {
                for &f in &pure.schema.pure_syms {
                    let mut q = p.clone();
                    q.push(f);
                    next.push(q);
                }
            }
            paths.extend(next.iter().cloned());
            frontier = next;
        }
        for p in &paths {
            let name = format!("⟦{}⟧", render_path(p, interner));
            let c = Cst(interner.intern(&name));
            term_consts.insert(p.clone(), c);
        }

        // Ground the rules.
        let mut rules: Vec<dl::Rule> = Vec::new();
        for rule in &pure.program.rules {
            let fvars = rule.functional_vars();
            match fvars.len() {
                0 => {
                    if let Some(ground) = ground_rule(rule, None, &term_consts, depth) {
                        rules.push(ground);
                    }
                }
                1 => {
                    for node in &paths {
                        if let Some(ground) = ground_rule(rule, Some(node), &term_consts, depth) {
                            rules.push(ground);
                        }
                    }
                }
                _ => panic!("bounded materialization requires a normal program"),
            }
        }

        // Facts.
        let mut db = dl::Database::new();
        for fact in &pure.db.facts {
            match fact {
                Atom::Functional { pred, fterm, args } => {
                    // Invariant: `to_pure` rejects non-ground facts, so every
                    // fact's functional term is a pure ground path and every
                    // argument is a constant.
                    let path = fterm.pure_path().expect("pure facts are ground paths");
                    let tc = term_consts[&path];
                    let mut row = Vec::with_capacity(args.len() + 1);
                    row.push(tc);
                    row.extend(args.iter().map(|a| a.as_const().expect("facts are ground")));
                    db.insert(*pred, &row);
                }
                Atom::Relational { pred, args } => {
                    let row: Vec<Cst> = args
                        .iter()
                        .map(|a| a.as_const().expect("facts are ground"))
                        .collect();
                    db.insert(*pred, &row);
                }
            }
        }

        let ground_rules = rules.len();
        let (eval, provenance) = if traced {
            let (stats, prov) = dl::evaluate_traced_governed(&mut db, &rules, governor)?;
            (stats, Some(prov))
        } else {
            (dl::evaluate_governed(&mut db, &rules, governor)?, None)
        };
        Ok(BoundedMaterialization {
            depth,
            db,
            ground_rules,
            eval,
            provenance,
            term_consts,
        })
    }

    /// A derivation tree for a functional fact, if it holds within the
    /// horizon and the materialization was built with
    /// [`BoundedMaterialization::run_traced`].
    pub fn explain(&self, pred: Pred, path: &[Func], args: &[Cst]) -> Option<dl::Derivation> {
        let prov = self.provenance.as_ref()?;
        let &tc = self.term_consts.get(path)?;
        let mut row = Vec::with_capacity(args.len() + 1);
        row.push(tc);
        row.extend_from_slice(args);
        prov.explain(&self.db, pred, &row)
    }

    /// Membership of a functional tuple (false beyond the depth bound).
    pub fn holds(&self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(&tc) = self.term_consts.get(path) else {
            return false;
        };
        let mut row = Vec::with_capacity(args.len() + 1);
        row.push(tc);
        row.extend_from_slice(args);
        self.db.contains(pred, &row)
    }

    /// Membership of a relational tuple.
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.db.contains(pred, args)
    }

    /// Total materialized fact count — the diverging quantity of E9.
    pub fn fact_count(&self) -> usize {
        self.db.fact_count()
    }
}

fn render_path(p: &[Func], interner: &Interner) -> String {
    if p.is_empty() {
        return "0".to_string();
    }
    p.iter()
        .map(|f| interner.resolve(f.sym()))
        .collect::<Vec<_>>()
        .join(".")
}

/// Grounds one rule at node `node` (None for rules without a functional
/// variable). Returns `None` if any functional term would exceed the depth
/// bound.
fn ground_rule(
    rule: &Rule,
    node: Option<&Vec<Func>>,
    term_consts: &FxHashMap<Vec<Func>, Cst>,
    depth: usize,
) -> Option<dl::Rule> {
    let head = ground_atom(&rule.head, node, term_consts, depth)?;
    let body = rule
        .body
        .iter()
        .map(|a| ground_atom(a, node, term_consts, depth))
        .collect::<Option<Vec<_>>>()?;
    Some(dl::Rule::new(head, body))
}

fn ground_atom(
    atom: &Atom,
    node: Option<&Vec<Func>>,
    term_consts: &FxHashMap<Vec<Func>, Cst>,
    depth: usize,
) -> Option<dl::Atom> {
    let map_args = |args: &[NTerm]| -> Vec<dl::Term> {
        args.iter()
            .map(|a| match a {
                NTerm::Var(v) => dl::Term::Var(*v),
                NTerm::Const(c) => dl::Term::Const(*c),
            })
            .collect()
    };
    match atom {
        Atom::Relational { pred, args } => Some(dl::Atom::new(*pred, map_args(args))),
        Atom::Functional { pred, fterm, args } => {
            let path: Vec<Func> = match fterm {
                FTerm::Var(_) => node?.clone(),
                FTerm::Pure(f, inner) if matches!(**inner, FTerm::Var(_)) => {
                    let mut p = node?.clone();
                    p.push(*f);
                    p
                }
                ground => ground.pure_path()?,
            };
            if path.len() > depth {
                return None;
            }
            let tc = *term_consts.get(&path)?;
            let mut terms = Vec::with_capacity(args.len() + 1);
            terms.push(dl::Term::Const(tc));
            terms.extend(map_args(args));
            Some(dl::Atom::new(*pred, terms))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Database, Program};
    use crate::pure::to_pure;
    use fundb_term::Var;

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    fn even_program(i: &mut Interner) -> (Program, Database, Pred, Func) {
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("s"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        (prog, db, even, succ)
    }

    #[test]
    fn even_materializes_to_depth() {
        let mut i = Interner::new();
        let (prog, db, even, succ) = even_program(&mut i);
        let normal = crate::normalize::normalize(&prog, &mut i);
        let pure = to_pure(&normal, &db, &mut i).unwrap();
        let mat = BoundedMaterialization::run(&pure, 10, &mut i).unwrap();
        for n in 0..=10usize {
            assert_eq!(mat.holds(even, &vec![succ; n], &[]), n % 2 == 0, "n={n}");
        }
        // Beyond the bound: nothing (the baseline's limitation).
        assert!(!mat.holds(even, &[succ; 12], &[]));
    }

    #[test]
    fn materialized_size_diverges_with_depth() {
        let mut i = Interner::new();
        let (prog, db, _, _) = even_program(&mut i);
        let normal = crate::normalize::normalize(&prog, &mut i);
        let pure = to_pure(&normal, &db, &mut i).unwrap();
        let small = BoundedMaterialization::run(&pure, 4, &mut i)
            .unwrap()
            .fact_count();
        let big = BoundedMaterialization::run(&pure, 40, &mut i)
            .unwrap()
            .fact_count();
        assert!(big > small * 5, "small={small} big={big}");
    }

    /// Soundness: everything the baseline derives is in the engine's LFP.
    #[test]
    fn naive_is_sound_wrt_engine() {
        let mut i = Interner::new();
        let (prog, db, even, succ) = even_program(&mut i);
        let normal = crate::normalize::normalize(&prog, &mut i);
        let pure = to_pure(&normal, &db, &mut i).unwrap();
        let mat = BoundedMaterialization::run(&pure, 8, &mut i).unwrap();
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        engine.solve().unwrap();
        for n in 0..=8usize {
            let path = vec![succ; n];
            if mat.holds(even, &path, &[]) {
                assert!(engine.holds(even, &path, &[]));
            }
        }
    }
}
