//! Domain independence via range-restrictedness (§2.3).
//!
//! A set of functional rules is *domain-independent* if its least fixpoint
//! does not depend on the domain the function symbols are drawn from. The
//! paper notes this "can be syntactically tested, because it is equivalent to
//! range-restrictedness [GMN84]: every variable in a head of a rule has to
//! appear also in the body." Domain independence is the precondition for
//! every finite-representation result in the paper (Theorem 3.1 etc.), so
//! the pipeline rejects non-range-restricted rules up front.

use crate::error::{Error, Result};
use crate::program::{display_rule, Atom, Program, Rule};
use fundb_term::{FxHashSet, Interner, Var};

/// All variables of an atom: the functional spine variable (if any) plus all
/// non-functional variables.
fn atom_vars(atom: &Atom, out: &mut FxHashSet<Var>) {
    if let Some(v) = atom.spine_var() {
        out.insert(v);
    }
    for v in atom.nvars() {
        out.insert(v);
    }
}

/// Checks a single rule for range-restrictedness.
pub fn check_rule(rule: &Rule, interner: &Interner) -> Result<()> {
    let mut body_vars = FxHashSet::default();
    for atom in &rule.body {
        atom_vars(atom, &mut body_vars);
    }
    let mut head_vars = FxHashSet::default();
    atom_vars(&rule.head, &mut head_vars);
    for v in head_vars {
        if !body_vars.contains(&v) {
            return Err(Error::NotRangeRestricted {
                rule: display_rule(rule, interner).to_string(),
                var: interner.resolve(v.sym()).to_string(),
            });
        }
    }
    Ok(())
}

/// Checks every rule of a program; i.e. tests domain independence (§2.3).
pub fn check_program(program: &Program, interner: &Interner) -> Result<()> {
    for rule in &program.rules {
        check_rule(rule, interner)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FTerm, NTerm};
    use fundb_term::{Cst, Func, Pred};

    /// The paper's §2.3 examples:
    /// domain-independent: `P(s) -> P(g(s))` and `P(s), R(x) -> P(g(s,x))`;
    /// domain-dependent: `R(x) -> P(s)`.
    #[test]
    fn paper_section_2_3_examples() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let r = Pred(i.intern("R"));
        let g = Func(i.intern("g"));
        let s = Var(i.intern("s"));
        let x = Var(i.intern("x"));
        let _ = Cst(i.intern("a"));

        let ok = Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Pure(g, Box::new(FTerm::Var(s))),
                args: vec![],
            },
            vec![Atom::Functional {
                pred: p,
                fterm: FTerm::Var(s),
                args: vec![],
            }],
        );
        assert!(check_rule(&ok, &i).is_ok());

        let bad = Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Var(s),
                args: vec![],
            },
            vec![Atom::Relational {
                pred: r,
                args: vec![NTerm::Var(x)],
            }],
        );
        let err = check_rule(&bad, &i).unwrap_err();
        assert!(matches!(err, Error::NotRangeRestricted { .. }));
    }

    #[test]
    fn mixed_symbol_argument_variables_count() {
        // P(s), R(x) -> P(g(s,x)) is range-restricted: x occurs in the body.
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let r = Pred(i.intern("R"));
        let g = fundb_term::MixedSym {
            name: i.intern("g"),
            extra_args: 1,
        };
        let s = Var(i.intern("s"));
        let x = Var(i.intern("x"));
        let rule = Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Mixed(g, Box::new(FTerm::Var(s)), vec![NTerm::Var(x)]),
                args: vec![],
            },
            vec![
                Atom::Functional {
                    pred: p,
                    fterm: FTerm::Var(s),
                    args: vec![],
                },
                Atom::Relational {
                    pred: r,
                    args: vec![NTerm::Var(x)],
                },
            ],
        );
        assert!(check_rule(&rule, &i).is_ok());
        // Without R(x) in the body, x is free in the head: rejected.
        let bad = Rule::new(rule.head.clone(), vec![rule.body[0].clone()]);
        assert!(check_rule(&bad, &i).is_err());
    }

    #[test]
    fn ground_heads_are_always_restricted() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let rule = Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Zero,
                args: vec![],
            },
            vec![],
        );
        assert!(check_rule(&rule, &i).is_ok());
    }
}
