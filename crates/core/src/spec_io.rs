//! Serialization of graph specifications.
//!
//! The paper stresses that relational specifications are *explicit*: "once
//! it is computed, the original deductive rules may be forgotten" (§1).
//! This module makes that operational — a [`GraphSpec`] can be written to a
//! stable, line-oriented text format and loaded back later (or elsewhere)
//! to answer membership and queries without the rules:
//!
//! ```text
//! fundbspec 1
//! c 0
//! funcs +1
//! mixed ext 1 A ext[A]          # mixed→pure instantiation (optional)
//! node 0 -                      # representative term: path from the root
//! node 1 +1
//! atom 0 Meets Tony             # slice tuple of a node
//! succ 0 +1 1                   # successor mapping
//! nf Next Tony Jan              # relational fact
//! merge +1.+1 0                 # equation: term path ≅ node (the R of §3.5)
//! end
//! ```
//!
//! Symbol names are emitted verbatim, so they must not contain whitespace
//! or `.` — true for everything the parser and the transformations produce
//! (including `ext[A]`-style instantiated symbols and `+1`).

use crate::error::{Error, Result};
use crate::gendb::AtomInterner;
use crate::graphspec::{GraphSpec, SpecNodeId};
use crate::state::State;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FuncOrder, FxHashMap, Interner, MixedSym, Pred, TermTree};

/// A serializable bundle: the specification plus the mixed→pure symbol map
/// needed to interpret user-facing terms against it.
#[derive(Clone)]
pub struct SpecBundle {
    /// The graph specification.
    pub spec: GraphSpec,
    /// `(g, ā) → f_ā` instantiations (possibly empty).
    pub sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func>,
}

/// A sealed specification plus the mixed→pure symbol map that interprets
/// user-facing terms against it.
pub type FrozenBundle = (
    crate::serve::FrozenGraphSpec,
    FxHashMap<(MixedSym, Box<[Cst]>), Func>,
);

impl SpecBundle {
    /// Seals the bundled specification for serving, keeping the symbol map
    /// for translating user-facing mixed terms. The paper's "the original
    /// deductive rules may be forgotten" (§1), operationally: load a spec
    /// file, freeze it, share it.
    pub fn freeze(self) -> FrozenBundle {
        (self.spec.freeze(), self.sym_map)
    }
}

/// Reads a specification file and seals it for serving in one step.
pub fn read_spec_file_frozen(path: &str, interner: &mut Interner) -> Result<FrozenBundle> {
    Ok(read_spec_file(path, interner)?.freeze())
}

/// Translates a ground (possibly mixed) functional term into a pure symbol
/// path using a mixed→pure instantiation map. `None` when the term is
/// non-ground or uses an instantiation absent from the map (such terms never
/// occur in the fixpoint, so membership is simply false).
pub fn pure_path_with_map(
    ft: &crate::program::FTerm,
    sym_map: &FxHashMap<(MixedSym, Box<[Cst]>), Func>,
) -> Option<Vec<Func>> {
    use crate::program::{FTerm, SpineStep};
    let (steps, end) = ft.decompose();
    if !matches!(end, FTerm::Zero) {
        return None;
    }
    let mut path = Vec::with_capacity(steps.len());
    for s in steps.into_iter().rev() {
        match s {
            SpineStep::Pure(f) => path.push(f),
            SpineStep::Mixed(g, args) => {
                let consts: Box<[Cst]> = args
                    .into_iter()
                    .map(|a| a.as_const())
                    .collect::<Option<_>>()?;
                path.push(*sym_map.get(&(g, consts))?);
            }
        }
    }
    Some(path)
}

/// Serializes a specification (and symbol map) to the text format.
pub fn write_spec(bundle: &SpecBundle, interner: &Interner) -> String {
    let spec = &bundle.spec;
    let name = |s: fundb_term::Sym| -> &str {
        let n = interner.resolve(s);
        assert!(
            !n.contains(char::is_whitespace) && !n.contains('.') && !n.is_empty(),
            "symbol `{n}` is not serializable"
        );
        n
    };
    let path_str = |path: &[Func]| -> String {
        if path.is_empty() {
            "-".to_string()
        } else {
            path.iter()
                .map(|f| name(f.sym()))
                .collect::<Vec<_>>()
                .join(".")
        }
    };

    let mut out = String::from("fundbspec 1\n");
    out.push_str(&format!("c {}\n", spec.c));
    out.push_str("funcs");
    for f in spec.funcs.symbols() {
        out.push(' ');
        out.push_str(name(f.sym()));
    }
    out.push('\n');
    for ((g, args), f) in &bundle.sym_map {
        out.push_str(&format!("mixed {} {}", name(g.name), g.extra_args));
        for a in args.iter() {
            out.push(' ');
            out.push_str(name(a.sym()));
        }
        out.push(' ');
        out.push_str(name(f.sym()));
        out.push('\n');
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        out.push_str(&format!(
            "node {i} {}\n",
            path_str(&spec.tree.path(node.term))
        ));
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        for id in node.state.iter() {
            let (p, args) = spec.atoms.resolve(id);
            out.push_str(&format!("atom {i} {}", name(p.sym())));
            for a in args {
                out.push(' ');
                out.push_str(name(a.sym()));
            }
            out.push('\n');
        }
    }
    for (i, _) in spec.nodes.iter().enumerate() {
        for f in spec.funcs.symbols() {
            if let Some(to) = spec.successor.get(&(node_id(i), *f)) {
                out.push_str(&format!("succ {i} {} {}\n", name(f.sym()), to.index()));
            }
        }
    }
    for (p, rel) in spec.nf.iter() {
        for row in rel.rows() {
            out.push_str(&format!("nf {}", name(p.sym())));
            for a in row.iter() {
                out.push(' ');
                out.push_str(name(a.sym()));
            }
            out.push('\n');
        }
    }
    for (path, rep) in &spec.merges {
        out.push_str(&format!("merge {} {}\n", path_str(path), rep.index()));
    }
    out.push_str("end\n");
    out
}

fn node_id(i: usize) -> SpecNodeId {
    // SpecNodeId construction is private to graphspec; go through the
    // public dense-iteration contract.
    SpecNodeId::from_dense_index(i)
}

/// Parses the text format back into a [`SpecBundle`]. Symbol names are
/// interned into `interner`.
pub fn read_spec(text: &str, interner: &mut Interner) -> Result<SpecBundle> {
    let mut lines = text.lines().enumerate();
    let err = |lineno: usize, detail: &str| Error::Parse {
        offset: lineno,
        detail: format!("spec file line {}: {detail}", lineno + 1),
    };

    let (n0, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty specification file"))?;
    if header.trim() != "fundbspec 1" {
        return Err(err(n0, "expected header `fundbspec 1`"));
    }

    let mut c: Option<usize> = None;
    let mut funcs: Vec<Func> = Vec::new();
    let mut tree = TermTree::new();
    let mut node_terms: Vec<fundb_term::NodeId> = Vec::new();
    let mut states: Vec<State> = Vec::new();
    let mut atoms = AtomInterner::new();
    let mut successor: FxHashMap<(SpecNodeId, Func), SpecNodeId> = FxHashMap::default();
    let mut nf = dl::Database::new();
    let mut merges: Vec<(Vec<Func>, SpecNodeId)> = Vec::new();
    let mut sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func> = FxHashMap::default();
    let mut ended = false;

    let parse_path = |tok: &str, interner: &mut Interner| -> Vec<Func> {
        if tok == "-" {
            Vec::new()
        } else {
            tok.split('.').map(|n| Func(interner.intern(n))).collect()
        }
    };

    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        // Invariant: `line` is trimmed and non-empty (checked above), so
        // `split_whitespace` yields at least one token.
        let kw = toks.next().expect("non-empty line has a token");
        let rest: Vec<&str> = toks.collect();
        match kw {
            "c" => {
                let v = rest
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "malformed `c`"))?;
                c = Some(v);
            }
            "funcs" => {
                funcs = rest.iter().map(|n| Func(interner.intern(n))).collect();
            }
            "mixed" => {
                if rest.len() < 3 {
                    return Err(err(lineno, "malformed `mixed`"));
                }
                let gname = interner.intern(rest[0]);
                let extra: usize = rest[1]
                    .parse()
                    .map_err(|_| err(lineno, "malformed mixed arity"))?;
                if rest.len() != extra + 3 {
                    return Err(err(lineno, "mixed argument count mismatch"));
                }
                let args: Box<[Cst]> = rest[2..2 + extra]
                    .iter()
                    .map(|n| Cst(interner.intern(n)))
                    .collect();
                let f = Func(interner.intern(rest[2 + extra]));
                sym_map.insert(
                    (
                        MixedSym {
                            name: gname,
                            extra_args: extra as u8,
                        },
                        args,
                    ),
                    f,
                );
            }
            "node" => {
                if rest.len() != 2 {
                    return Err(err(lineno, "malformed `node`"));
                }
                let idx: usize = rest[0]
                    .parse()
                    .map_err(|_| err(lineno, "malformed node index"))?;
                if idx != node_terms.len() {
                    return Err(err(lineno, "nodes must be listed densely in order"));
                }
                let path = parse_path(rest[1], interner);
                node_terms.push(tree.intern_path(&path));
                states.push(State::new());
            }
            "atom" => {
                if rest.len() < 2 {
                    return Err(err(lineno, "malformed `atom`"));
                }
                let idx: usize = rest[0]
                    .parse()
                    .map_err(|_| err(lineno, "malformed atom node index"))?;
                let pred = Pred(interner.intern(rest[1]));
                let args: Vec<Cst> = rest[2..].iter().map(|n| Cst(interner.intern(n))).collect();
                let id = atoms.intern(pred, &args);
                states
                    .get_mut(idx)
                    .ok_or_else(|| err(lineno, "atom refers to an unknown node"))?
                    .insert(id);
            }
            "succ" => {
                if rest.len() != 3 {
                    return Err(err(lineno, "malformed `succ`"));
                }
                let from: usize = rest[0]
                    .parse()
                    .map_err(|_| err(lineno, "malformed succ source"))?;
                let f = Func(interner.intern(rest[1]));
                let to: usize = rest[2]
                    .parse()
                    .map_err(|_| err(lineno, "malformed succ target"))?;
                successor.insert((node_id(from), f), node_id(to));
            }
            "nf" => {
                if rest.is_empty() {
                    return Err(err(lineno, "malformed `nf`"));
                }
                let pred = Pred(interner.intern(rest[0]));
                let row: Vec<Cst> = rest[1..].iter().map(|n| Cst(interner.intern(n))).collect();
                nf.insert(pred, &row);
            }
            "merge" => {
                if rest.len() != 2 {
                    return Err(err(lineno, "malformed `merge`"));
                }
                let path = parse_path(rest[0], interner);
                let rep: usize = rest[1]
                    .parse()
                    .map_err(|_| err(lineno, "malformed merge target"))?;
                merges.push((path, node_id(rep)));
            }
            "end" => {
                ended = true;
                break;
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
    }
    if !ended {
        return Err(Error::Parse {
            offset: 0,
            detail: "specification file missing `end`".into(),
        });
    }
    let c = c.ok_or(Error::Parse {
        offset: 0,
        detail: "specification file missing `c`".into(),
    })?;

    let nodes: Vec<crate::graphspec::SpecNode> = node_terms
        .iter()
        .zip(states)
        .map(|(&term, state)| crate::graphspec::SpecNode { term, state })
        .collect();
    let active_count = nodes.iter().filter(|n| tree.depth(n.term) > c).count();
    Ok(SpecBundle {
        spec: GraphSpec {
            c,
            funcs: FuncOrder::new(funcs),
            tree,
            nodes,
            successor,
            atoms,
            nf,
            merges,
            active_count,
        },
        sym_map,
    })
}

/// Reads a specification file from disk. I/O failures become
/// [`Error::Io`] and malformed content becomes [`Error::Parse`], so a bad
/// file never aborts the caller (the REPL keeps its session alive).
pub fn read_spec_file(path: &str, interner: &mut Interner) -> Result<SpecBundle> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, &e))?;
    read_spec(&text, interner)
}

/// Writes a specification file to disk, mapping I/O failures to
/// [`Error::Io`].
pub fn write_spec_file(path: &str, bundle: &SpecBundle, interner: &Interner) -> Result<()> {
    let text = write_spec(bundle, interner);
    std::fs::write(path, text).map_err(|e| Error::io(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::Var;

    fn meets_spec() -> (Interner, GraphSpec, Pred, Func, Cst, Cst) {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("+1"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("Tony")), Cst(i.intern("Jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: meets,
                fterm: FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                args: vec![NTerm::Var(y)],
            },
            vec![
                Atom::Functional {
                    pred: meets,
                    fterm: FTerm::Var(t),
                    args: vec![NTerm::Var(x)],
                },
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: meets,
            fterm: FTerm::Zero,
            args: vec![NTerm::Const(tony)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        (i, spec, meets, succ, tony, jan)
    }

    #[test]
    fn round_trip_preserves_membership_and_render() {
        let (i, spec, meets, succ, tony, jan) = meets_spec();
        let text = write_spec(
            &SpecBundle {
                spec: spec.clone(),
                sym_map: FxHashMap::default(),
            },
            &i,
        );
        let mut i2 = Interner::new();
        let bundle = read_spec(&text, &mut i2).unwrap();
        // Resolve symbols in the new interner.
        let meets2 = Pred(i2.get("Meets").unwrap());
        let succ2 = Func(i2.get("+1").unwrap());
        let tony2 = Cst(i2.get("Tony").unwrap());
        let jan2 = Cst(i2.get("Jan").unwrap());
        for n in 0..30usize {
            assert_eq!(
                spec.holds(meets, &vec![succ; n], &[tony]),
                bundle.spec.holds(meets2, &vec![succ2; n], &[tony2]),
                "n={n}"
            );
            assert_eq!(
                spec.holds(meets, &vec![succ; n], &[jan]),
                bundle.spec.holds(meets2, &vec![succ2; n], &[jan2]),
                "n={n}"
            );
        }
        // Rendering (a superset of the structure) is identical.
        assert_eq!(spec.render(&i), bundle.spec.render(&i2));
        // Second round trip is byte-identical (canonical form).
        let text2 = write_spec(&bundle, &i2);
        assert_eq!(text, text2);
    }

    #[test]
    fn read_rejects_garbage() {
        let mut i = Interner::new();
        assert!(read_spec("", &mut i).is_err());
        assert!(read_spec("fundbspec 2\nend\n", &mut i).is_err());
        assert!(read_spec("fundbspec 1\nc 0\n", &mut i).is_err()); // no end
        assert!(read_spec("fundbspec 1\nbogus x\nend\n", &mut i).is_err());
        assert!(read_spec("fundbspec 1\nnode 1 -\nend\n", &mut i).is_err()); // non-dense
    }

    #[test]
    fn mixed_map_round_trips() {
        let mut i = Interner::new();
        let g = MixedSym {
            name: i.intern("ext"),
            extra_args: 1,
        };
        let a = Cst(i.intern("A"));
        let fa = Func(i.intern("ext[A]"));
        let (i_spec, spec, ..) = {
            let (i2, spec, m, s, t, j) = meets_spec();
            (i2, spec, m, s, t, j)
        };
        // Graft the mixed map onto an unrelated spec, re-interning its
        // symbols in that spec's interner for a consistent write.
        let mut i3 = i_spec.clone();
        let g3 = MixedSym {
            name: i3.intern("ext"),
            extra_args: 1,
        };
        let a3 = Cst(i3.intern("A"));
        let fa3 = Func(i3.intern("ext[A]"));
        let mut sym_map = FxHashMap::default();
        sym_map.insert((g3, vec![a3].into_boxed_slice()), fa3);
        let text = write_spec(&SpecBundle { spec, sym_map }, &i3);
        let mut i4 = Interner::new();
        let bundle = read_spec(&text, &mut i4).unwrap();
        assert_eq!(bundle.sym_map.len(), 1);
        let g4 = MixedSym {
            name: i4.get("ext").unwrap(),
            extra_args: 1,
        };
        let a4 = Cst(i4.get("A").unwrap());
        let fa4 = Func(i4.get("ext[A]").unwrap());
        assert_eq!(bundle.sym_map[&(g4, vec![a4].into_boxed_slice())], fa4);
        let _ = (g, a, fa);
    }
}
