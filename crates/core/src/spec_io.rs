//! Serialization of graph specifications.
//!
//! The paper stresses that relational specifications are *explicit*: "once
//! it is computed, the original deductive rules may be forgotten" (§1).
//! This module makes that operational — a [`GraphSpec`] can be written to a
//! stable, line-oriented text format and loaded back later (or elsewhere)
//! to answer membership and queries without the rules:
//!
//! ```text
//! fundbspec 1
//! c 0
//! funcs +1
//! mixed ext 1 A ext[A]          # mixed→pure instantiation (optional)
//! node 0 -                      # representative term: path from the root
//! node 1 +1
//! atom 0 Meets Tony             # slice tuple of a node
//! succ 0 +1 1                   # successor mapping
//! nf Next Tony Jan              # relational fact
//! merge +1.+1 0                 # equation: term path ≅ node (the R of §3.5)
//! end
//! ```
//!
//! In the text format symbol names are emitted verbatim, so they must not
//! contain whitespace or `.` — true for everything the parser and the
//! transformations produce (including `ext[A]`-style instantiated symbols
//! and `+1`). [`write_spec`] *validates* this and returns an error rather
//! than emitting a file that would silently re-tokenize differently.
//!
//! Version 2 of the format is binary ([`write_spec_binary`] /
//! [`read_spec_binary`]): a magic-numbered, CRC-guarded container with a
//! length-prefixed string table, so symbol names are unrestricted. Files
//! from a *newer* format version are rejected explicitly instead of being
//! misparsed. [`read_spec_file`] auto-detects which format it is handed.

use crate::error::{Error, Result};
use crate::gendb::AtomInterner;
use crate::graphspec::{GraphSpec, SpecNodeId};
use crate::state::State;
use fundb_datalog as dl;
use fundb_storage::codec::{crc32c, put_str, put_u32, put_u64, CodecError, Reader};
use fundb_term::{Cst, Func, FuncOrder, FxHashMap, Interner, MixedSym, Pred, Sym, TermTree};

/// Magic prefix of binary (version ≥ 2) specification files.
pub const SPEC_BIN_MAGIC: [u8; 8] = *b"FDBSPECB";
/// Newest binary specification format version this build writes and reads.
/// (Version 1 is the line-oriented text format, which has no magic.)
pub const SPEC_BIN_VERSION: u32 = 2;

/// A serializable bundle: the specification plus the mixed→pure symbol map
/// needed to interpret user-facing terms against it.
#[derive(Clone)]
pub struct SpecBundle {
    /// The graph specification.
    pub spec: GraphSpec,
    /// `(g, ā) → f_ā` instantiations (possibly empty).
    pub sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func>,
}

/// A sealed specification plus the mixed→pure symbol map that interprets
/// user-facing terms against it.
pub type FrozenBundle = (
    crate::serve::FrozenGraphSpec,
    FxHashMap<(MixedSym, Box<[Cst]>), Func>,
);

impl SpecBundle {
    /// Seals the bundled specification for serving, keeping the symbol map
    /// for translating user-facing mixed terms. The paper's "the original
    /// deductive rules may be forgotten" (§1), operationally: load a spec
    /// file, freeze it, share it.
    pub fn freeze(self) -> FrozenBundle {
        (self.spec.freeze(), self.sym_map)
    }
}

/// Reads a specification file and seals it for serving in one step.
pub fn read_spec_file_frozen(path: &str, interner: &mut Interner) -> Result<FrozenBundle> {
    Ok(read_spec_file(path, interner)?.freeze())
}

/// Translates a ground (possibly mixed) functional term into a pure symbol
/// path using a mixed→pure instantiation map. `None` when the term is
/// non-ground or uses an instantiation absent from the map (such terms never
/// occur in the fixpoint, so membership is simply false).
pub fn pure_path_with_map(
    ft: &crate::program::FTerm,
    sym_map: &FxHashMap<(MixedSym, Box<[Cst]>), Func>,
) -> Option<Vec<Func>> {
    use crate::program::{FTerm, SpineStep};
    let (steps, end) = ft.decompose();
    if !matches!(end, FTerm::Zero) {
        return None;
    }
    let mut path = Vec::with_capacity(steps.len());
    for s in steps.into_iter().rev() {
        match s {
            SpineStep::Pure(f) => path.push(f),
            SpineStep::Mixed(g, args) => {
                let consts: Box<[Cst]> = args
                    .into_iter()
                    .map(|a| a.as_const())
                    .collect::<Option<_>>()?;
                path.push(*sym_map.get(&(g, consts))?);
            }
        }
    }
    Some(path)
}

/// Serializes a specification (and symbol map) to the text format.
///
/// Every symbol name is validated before it is emitted: a name that is
/// empty or contains whitespace or `.` would re-tokenize differently on
/// read (silent corruption), so it is rejected with [`Error::Parse`]
/// instead. Such bundles can still be saved with [`write_spec_binary`],
/// which has no character restrictions.
pub fn write_spec(bundle: &SpecBundle, interner: &Interner) -> Result<String> {
    let spec = &bundle.spec;
    let name = |s: Sym| -> Result<&str> {
        let n = interner.resolve(s);
        if n.is_empty() || n.contains(char::is_whitespace) || n.contains('.') {
            return Err(Error::Parse {
                offset: 0,
                detail: format!(
                    "symbol `{n}` cannot be written in the text spec format \
                     (empty, or contains whitespace or `.`); \
                     use the binary format instead"
                ),
            });
        }
        Ok(n)
    };
    let path_str = |path: &[Func]| -> Result<String> {
        if path.is_empty() {
            Ok("-".to_string())
        } else {
            Ok(path
                .iter()
                .map(|f| name(f.sym()))
                .collect::<Result<Vec<_>>>()?
                .join("."))
        }
    };

    let mut out = String::from("fundbspec 1\n");
    out.push_str(&format!("c {}\n", spec.c));
    out.push_str("funcs");
    for f in spec.funcs.symbols() {
        out.push(' ');
        out.push_str(name(f.sym())?);
    }
    out.push('\n');
    for ((g, args), f) in &bundle.sym_map {
        out.push_str(&format!("mixed {} {}", name(g.name)?, g.extra_args));
        for a in args.iter() {
            out.push(' ');
            out.push_str(name(a.sym())?);
        }
        out.push(' ');
        out.push_str(name(f.sym())?);
        out.push('\n');
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        out.push_str(&format!(
            "node {i} {}\n",
            path_str(&spec.tree.path(node.term))?
        ));
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        for id in node.state.iter() {
            let (p, args) = spec.atoms.resolve(id);
            out.push_str(&format!("atom {i} {}", name(p.sym())?));
            for a in args {
                out.push(' ');
                out.push_str(name(a.sym())?);
            }
            out.push('\n');
        }
    }
    for (i, _) in spec.nodes.iter().enumerate() {
        for f in spec.funcs.symbols() {
            if let Some(to) = spec.successor.get(&(node_id(i), *f)) {
                out.push_str(&format!("succ {i} {} {}\n", name(f.sym())?, to.index()));
            }
        }
    }
    for (p, rel) in spec.nf.iter() {
        for row in rel.rows() {
            out.push_str(&format!("nf {}", name(p.sym())?));
            for a in row.iter() {
                out.push(' ');
                out.push_str(name(a.sym())?);
            }
            out.push('\n');
        }
    }
    for (path, rep) in &spec.merges {
        out.push_str(&format!("merge {} {}\n", path_str(path)?, rep.index()));
    }
    out.push_str("end\n");
    Ok(out)
}

/// Builds the canonical string table of a binary spec: names registered in
/// first-use order, referenced by dense `u32` id.
struct SymTable<'a> {
    interner: &'a Interner,
    ids: FxHashMap<Sym, u32>,
    names: Vec<&'a str>,
}

impl<'a> SymTable<'a> {
    fn new(interner: &'a Interner) -> SymTable<'a> {
        SymTable {
            interner,
            ids: FxHashMap::default(),
            names: Vec::new(),
        }
    }

    fn id(&mut self, s: Sym) -> u32 {
        if let Some(&id) = self.ids.get(&s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(self.interner.resolve(s));
        self.ids.insert(s, id);
        id
    }
}

fn bin_err(detail: impl Into<String>) -> Error {
    Error::Parse {
        offset: 0,
        detail: format!("binary spec: {}", detail.into()),
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Error {
        bin_err(e.to_string())
    }
}

/// Serializes a specification (and symbol map) to the binary (version 2)
/// format: `FDBSPECB` magic, version, CRC-guarded body with a
/// length-prefixed string table. Unlike the text format there are no
/// restrictions on symbol names, and the output is canonical — the same
/// bundle always encodes to the same bytes.
pub fn write_spec_binary(bundle: &SpecBundle, interner: &Interner) -> Vec<u8> {
    let spec = &bundle.spec;
    let mut table = SymTable::new(interner);
    let mut body = Vec::new();

    put_u64(&mut body, spec.c as u64);

    put_u32(&mut body, spec.funcs.symbols().len() as u32);
    for f in spec.funcs.symbols() {
        put_u32(&mut body, table.id(f.sym()));
    }

    // Canonical order for the hash-map-backed sections: sort by resolved
    // names so identical bundles produce identical bytes regardless of
    // insertion history.
    #[allow(clippy::type_complexity)]
    let mut mixed: Vec<(&(MixedSym, Box<[Cst]>), &Func)> = bundle.sym_map.iter().collect();
    mixed.sort_by_key(|((g, args), _)| {
        (
            interner.resolve(g.name),
            args.iter()
                .map(|a| interner.resolve(a.sym()))
                .collect::<Vec<_>>(),
        )
    });
    put_u32(&mut body, mixed.len() as u32);
    for ((g, args), f) in mixed {
        put_u32(&mut body, table.id(g.name));
        body.push(g.extra_args);
        for a in args.iter() {
            put_u32(&mut body, table.id(a.sym()));
        }
        put_u32(&mut body, table.id(f.sym()));
    }

    put_u32(&mut body, spec.nodes.len() as u32);
    for node in &spec.nodes {
        let path = spec.tree.path(node.term);
        put_u32(&mut body, path.len() as u32);
        for f in &path {
            put_u32(&mut body, table.id(f.sym()));
        }
    }

    let mut atom_section = Vec::new();
    let mut atom_count = 0u32;
    for (i, node) in spec.nodes.iter().enumerate() {
        for id in node.state.iter() {
            let (p, args) = spec.atoms.resolve(id);
            put_u32(&mut atom_section, i as u32);
            put_u32(&mut atom_section, table.id(p.sym()));
            put_u32(&mut atom_section, args.len() as u32);
            for a in args {
                put_u32(&mut atom_section, table.id(a.sym()));
            }
            atom_count += 1;
        }
    }
    put_u32(&mut body, atom_count);
    body.extend_from_slice(&atom_section);

    let mut succ_section = Vec::new();
    let mut succ_count = 0u32;
    for (i, _) in spec.nodes.iter().enumerate() {
        for f in spec.funcs.symbols() {
            if let Some(to) = spec.successor.get(&(node_id(i), *f)) {
                put_u32(&mut succ_section, i as u32);
                put_u32(&mut succ_section, table.id(f.sym()));
                put_u32(&mut succ_section, to.index() as u32);
                succ_count += 1;
            }
        }
    }
    put_u32(&mut body, succ_count);
    body.extend_from_slice(&succ_section);

    let mut rels: Vec<(Pred, &dl::Relation)> = spec.nf.iter().collect();
    rels.sort_by_key(|(p, _)| interner.resolve(p.sym()));
    put_u32(&mut body, rels.len() as u32);
    for (p, rel) in rels {
        put_u32(&mut body, table.id(p.sym()));
        put_u32(&mut body, rel.arity() as u32);
        put_u64(&mut body, rel.len() as u64);
        for row in rel.rows() {
            for a in row {
                put_u32(&mut body, table.id(a.sym()));
            }
        }
    }

    put_u32(&mut body, spec.merges.len() as u32);
    for (path, rep) in &spec.merges {
        put_u32(&mut body, path.len() as u32);
        for f in path {
            put_u32(&mut body, table.id(f.sym()));
        }
        put_u32(&mut body, rep.index() as u32);
    }

    // Assemble: the string table precedes the sections that reference it.
    let mut full_body = Vec::new();
    put_u32(&mut full_body, table.names.len() as u32);
    for name in &table.names {
        put_str(&mut full_body, name);
    }
    full_body.extend_from_slice(&body);

    let mut out = Vec::with_capacity(full_body.len() + 24);
    out.extend_from_slice(&SPEC_BIN_MAGIC);
    put_u32(&mut out, SPEC_BIN_VERSION);
    put_u64(&mut out, full_body.len() as u64);
    put_u32(&mut out, crc32c(&full_body));
    out.extend_from_slice(&full_body);
    out
}

/// Parses the binary (version 2) format back into a [`SpecBundle`].
/// Corruption (bad magic, truncation, CRC mismatch, malformed body)
/// becomes [`Error::Parse`]; a file written by a *newer* format version is
/// rejected explicitly rather than misread.
pub fn read_spec_binary(bytes: &[u8], interner: &mut Interner) -> Result<SpecBundle> {
    let mut r = Reader::new(bytes);
    if r.bytes(8)
        .map_err(|_| bin_err("file too short for header"))?
        != SPEC_BIN_MAGIC
    {
        return Err(bin_err("bad magic (not a binary spec file)"));
    }
    let version = r.u32()?;
    if version > SPEC_BIN_VERSION {
        return Err(bin_err(format!(
            "format version {version} is from a newer build \
             (this build reads ≤ {SPEC_BIN_VERSION})"
        )));
    }
    if version < SPEC_BIN_VERSION {
        return Err(bin_err(format!(
            "format version {version} is not binary (text files have no magic)"
        )));
    }
    let body_len = r.u64()? as usize;
    let crc = r.u32()?;
    let body = r.bytes(body_len).map_err(|_| bin_err("truncated body"))?;
    if !r.is_empty() {
        return Err(bin_err("trailing bytes after body"));
    }
    if crc32c(body) != crc {
        return Err(bin_err("body checksum mismatch (corrupt file)"));
    }

    let mut r = Reader::new(body);
    let nstrings = r.u32()? as usize;
    let mut syms: Vec<Sym> = Vec::with_capacity(nstrings);
    for _ in 0..nstrings {
        syms.push(interner.intern(r.str()?));
    }
    let sym = |id: u32| -> Result<Sym> {
        syms.get(id as usize)
            .copied()
            .ok_or_else(|| bin_err(format!("string table id {id} out of range")))
    };

    let c = r.u64()? as usize;

    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        funcs.push(Func(sym(r.u32()?)?));
    }

    let nmixed = r.u32()? as usize;
    let mut sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func> = FxHashMap::default();
    for _ in 0..nmixed {
        let gname = sym(r.u32()?)?;
        let extra = r.u8()?;
        let args: Box<[Cst]> = (0..extra)
            .map(|_| Ok(Cst(sym(r.u32()?)?)))
            .collect::<Result<_>>()?;
        let f = Func(sym(r.u32()?)?);
        sym_map.insert(
            (
                MixedSym {
                    name: gname,
                    extra_args: extra,
                },
                args,
            ),
            f,
        );
    }

    let nnodes = r.u32()? as usize;
    let mut tree = TermTree::new();
    let mut node_terms = Vec::with_capacity(nnodes);
    let mut states = Vec::with_capacity(nnodes);
    let mut path_buf: Vec<Func> = Vec::new();
    for _ in 0..nnodes {
        let plen = r.u32()? as usize;
        path_buf.clear();
        for _ in 0..plen {
            path_buf.push(Func(sym(r.u32()?)?));
        }
        node_terms.push(tree.intern_path(&path_buf));
        states.push(State::new());
    }

    let natoms = r.u32()? as usize;
    let mut atoms = AtomInterner::new();
    for _ in 0..natoms {
        let idx = r.u32()? as usize;
        let pred = Pred(sym(r.u32()?)?);
        let argc = r.u32()? as usize;
        let args: Vec<Cst> = (0..argc)
            .map(|_| Ok(Cst(sym(r.u32()?)?)))
            .collect::<Result<_>>()?;
        let id = atoms.intern(pred, &args);
        states
            .get_mut(idx)
            .ok_or_else(|| bin_err("atom refers to an unknown node"))?
            .insert(id);
    }

    let nsucc = r.u32()? as usize;
    let mut successor: FxHashMap<(SpecNodeId, Func), SpecNodeId> = FxHashMap::default();
    for _ in 0..nsucc {
        let from = r.u32()? as usize;
        let f = Func(sym(r.u32()?)?);
        let to = r.u32()? as usize;
        if from >= nnodes || to >= nnodes {
            return Err(bin_err("successor refers to an unknown node"));
        }
        successor.insert((node_id(from), f), node_id(to));
    }

    let nrels = r.u32()? as usize;
    let mut nf = dl::Database::new();
    let mut row_buf: Vec<Cst> = Vec::new();
    for _ in 0..nrels {
        let pred = Pred(sym(r.u32()?)?);
        let arity = r.u32()? as usize;
        let nrows = r.u64()? as usize;
        for _ in 0..nrows {
            row_buf.clear();
            for _ in 0..arity {
                row_buf.push(Cst(sym(r.u32()?)?));
            }
            nf.insert(pred, &row_buf);
        }
    }

    let nmerges = r.u32()? as usize;
    let mut merges = Vec::with_capacity(nmerges);
    for _ in 0..nmerges {
        let plen = r.u32()? as usize;
        let path: Vec<Func> = (0..plen)
            .map(|_| Ok(Func(sym(r.u32()?)?)))
            .collect::<Result<_>>()?;
        let rep = r.u32()? as usize;
        if rep >= nnodes {
            return Err(bin_err("merge refers to an unknown node"));
        }
        merges.push((path, node_id(rep)));
    }

    if !r.is_empty() {
        return Err(bin_err("trailing bytes inside body"));
    }

    let nodes: Vec<crate::graphspec::SpecNode> = node_terms
        .iter()
        .zip(states)
        .map(|(&term, state)| crate::graphspec::SpecNode { term, state })
        .collect();
    let active_count = nodes.iter().filter(|n| tree.depth(n.term) > c).count();
    Ok(SpecBundle {
        spec: GraphSpec {
            c,
            funcs: FuncOrder::new(funcs),
            tree,
            nodes,
            successor,
            atoms,
            nf,
            merges,
            active_count,
        },
        sym_map,
    })
}

fn node_id(i: usize) -> SpecNodeId {
    // SpecNodeId construction is private to graphspec; go through the
    // public dense-iteration contract.
    SpecNodeId::from_dense_index(i)
}

/// Parses the text format back into a [`SpecBundle`]. Symbol names are
/// interned into `interner`.
pub fn read_spec(text: &str, interner: &mut Interner) -> Result<SpecBundle> {
    let mut lines = text.lines().enumerate();
    let err = |lineno: usize, detail: &str| Error::Parse {
        offset: lineno,
        detail: format!("spec file line {}: {detail}", lineno + 1),
    };

    let (n0, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty specification file"))?;
    if header.trim() != "fundbspec 1" {
        return Err(err(n0, "expected header `fundbspec 1`"));
    }

    let mut c: Option<usize> = None;
    let mut funcs: Vec<Func> = Vec::new();
    let mut tree = TermTree::new();
    let mut node_terms: Vec<fundb_term::NodeId> = Vec::new();
    let mut states: Vec<State> = Vec::new();
    let mut atoms = AtomInterner::new();
    let mut successor: FxHashMap<(SpecNodeId, Func), SpecNodeId> = FxHashMap::default();
    let mut nf = dl::Database::new();
    let mut merges: Vec<(Vec<Func>, SpecNodeId)> = Vec::new();
    let mut sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func> = FxHashMap::default();
    let mut ended = false;

    let parse_path = |tok: &str, interner: &mut Interner| -> Vec<Func> {
        if tok == "-" {
            Vec::new()
        } else {
            tok.split('.').map(|n| Func(interner.intern(n))).collect()
        }
    };

    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        // Invariant: `line` is trimmed and non-empty (checked above), so
        // `split_whitespace` yields at least one token.
        let kw = toks.next().expect("non-empty line has a token");
        let rest: Vec<&str> = toks.collect();
        match kw {
            "c" => {
                let v = rest
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "malformed `c`"))?;
                c = Some(v);
            }
            "funcs" => {
                funcs = rest.iter().map(|n| Func(interner.intern(n))).collect();
            }
            "mixed" => {
                if rest.len() < 3 {
                    return Err(err(lineno, "malformed `mixed`"));
                }
                let gname = interner.intern(rest[0]);
                let extra: usize = rest[1]
                    .parse()
                    .map_err(|_| err(lineno, "malformed mixed arity"))?;
                if rest.len() != extra + 3 {
                    return Err(err(lineno, "mixed argument count mismatch"));
                }
                let args: Box<[Cst]> = rest[2..2 + extra]
                    .iter()
                    .map(|n| Cst(interner.intern(n)))
                    .collect();
                let f = Func(interner.intern(rest[2 + extra]));
                sym_map.insert(
                    (
                        MixedSym {
                            name: gname,
                            extra_args: extra as u8,
                        },
                        args,
                    ),
                    f,
                );
            }
            "node" => {
                if rest.len() != 2 {
                    return Err(err(lineno, "malformed `node`"));
                }
                let idx: usize = rest[0]
                    .parse()
                    .map_err(|_| err(lineno, "malformed node index"))?;
                if idx != node_terms.len() {
                    return Err(err(lineno, "nodes must be listed densely in order"));
                }
                let path = parse_path(rest[1], interner);
                node_terms.push(tree.intern_path(&path));
                states.push(State::new());
            }
            "atom" => {
                if rest.len() < 2 {
                    return Err(err(lineno, "malformed `atom`"));
                }
                let idx: usize = rest[0]
                    .parse()
                    .map_err(|_| err(lineno, "malformed atom node index"))?;
                let pred = Pred(interner.intern(rest[1]));
                let args: Vec<Cst> = rest[2..].iter().map(|n| Cst(interner.intern(n))).collect();
                let id = atoms.intern(pred, &args);
                states
                    .get_mut(idx)
                    .ok_or_else(|| err(lineno, "atom refers to an unknown node"))?
                    .insert(id);
            }
            "succ" => {
                if rest.len() != 3 {
                    return Err(err(lineno, "malformed `succ`"));
                }
                let from: usize = rest[0]
                    .parse()
                    .map_err(|_| err(lineno, "malformed succ source"))?;
                let f = Func(interner.intern(rest[1]));
                let to: usize = rest[2]
                    .parse()
                    .map_err(|_| err(lineno, "malformed succ target"))?;
                successor.insert((node_id(from), f), node_id(to));
            }
            "nf" => {
                if rest.is_empty() {
                    return Err(err(lineno, "malformed `nf`"));
                }
                let pred = Pred(interner.intern(rest[0]));
                let row: Vec<Cst> = rest[1..].iter().map(|n| Cst(interner.intern(n))).collect();
                nf.insert(pred, &row);
            }
            "merge" => {
                if rest.len() != 2 {
                    return Err(err(lineno, "malformed `merge`"));
                }
                let path = parse_path(rest[0], interner);
                let rep: usize = rest[1]
                    .parse()
                    .map_err(|_| err(lineno, "malformed merge target"))?;
                merges.push((path, node_id(rep)));
            }
            "end" => {
                ended = true;
                break;
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
    }
    if !ended {
        return Err(Error::Parse {
            offset: 0,
            detail: "specification file missing `end`".into(),
        });
    }
    let c = c.ok_or(Error::Parse {
        offset: 0,
        detail: "specification file missing `c`".into(),
    })?;

    let nodes: Vec<crate::graphspec::SpecNode> = node_terms
        .iter()
        .zip(states)
        .map(|(&term, state)| crate::graphspec::SpecNode { term, state })
        .collect();
    let active_count = nodes.iter().filter(|n| tree.depth(n.term) > c).count();
    Ok(SpecBundle {
        spec: GraphSpec {
            c,
            funcs: FuncOrder::new(funcs),
            tree,
            nodes,
            successor,
            atoms,
            nf,
            merges,
            active_count,
        },
        sym_map,
    })
}

/// Reads a specification file from disk, auto-detecting the format: files
/// that open with the [`SPEC_BIN_MAGIC`] bytes are parsed as binary
/// (version ≥ 2), anything else as the version-1 text format. I/O failures
/// become [`Error::Io`] and malformed content becomes [`Error::Parse`], so
/// a bad file never aborts the caller (the REPL keeps its session alive).
pub fn read_spec_file(path: &str, interner: &mut Interner) -> Result<SpecBundle> {
    let bytes = std::fs::read(path).map_err(|e| Error::io(path, &e))?;
    if bytes.starts_with(&SPEC_BIN_MAGIC) {
        return read_spec_binary(&bytes, interner);
    }
    let text = String::from_utf8(bytes).map_err(|_| Error::Parse {
        offset: 0,
        detail: format!("{path}: neither a binary spec (no magic) nor UTF-8 text"),
    })?;
    read_spec(&text, interner)
}

/// Writes a specification file to disk in the text format, mapping I/O
/// failures to [`Error::Io`]. Fails without touching the file if the
/// bundle contains symbols the text format cannot carry — use
/// [`write_spec_file_binary`] for those.
pub fn write_spec_file(path: &str, bundle: &SpecBundle, interner: &Interner) -> Result<()> {
    let text = write_spec(bundle, interner)?;
    std::fs::write(path, text).map_err(|e| Error::io(path, &e))
}

/// Writes a specification file to disk in the binary (version 2) format,
/// mapping I/O failures to [`Error::Io`].
pub fn write_spec_file_binary(path: &str, bundle: &SpecBundle, interner: &Interner) -> Result<()> {
    let bytes = write_spec_binary(bundle, interner);
    std::fs::write(path, bytes).map_err(|e| Error::io(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::Var;

    fn meets_spec() -> (Interner, GraphSpec, Pred, Func, Cst, Cst) {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("+1"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("Tony")), Cst(i.intern("Jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: meets,
                fterm: FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                args: vec![NTerm::Var(y)],
            },
            vec![
                Atom::Functional {
                    pred: meets,
                    fterm: FTerm::Var(t),
                    args: vec![NTerm::Var(x)],
                },
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: meets,
            fterm: FTerm::Zero,
            args: vec![NTerm::Const(tony)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        (i, spec, meets, succ, tony, jan)
    }

    #[test]
    fn round_trip_preserves_membership_and_render() {
        let (i, spec, meets, succ, tony, jan) = meets_spec();
        let text = write_spec(
            &SpecBundle {
                spec: spec.clone(),
                sym_map: FxHashMap::default(),
            },
            &i,
        )
        .unwrap();
        let mut i2 = Interner::new();
        let bundle = read_spec(&text, &mut i2).unwrap();
        // Resolve symbols in the new interner.
        let meets2 = Pred(i2.get("Meets").unwrap());
        let succ2 = Func(i2.get("+1").unwrap());
        let tony2 = Cst(i2.get("Tony").unwrap());
        let jan2 = Cst(i2.get("Jan").unwrap());
        for n in 0..30usize {
            assert_eq!(
                spec.holds(meets, &vec![succ; n], &[tony]),
                bundle.spec.holds(meets2, &vec![succ2; n], &[tony2]),
                "n={n}"
            );
            assert_eq!(
                spec.holds(meets, &vec![succ; n], &[jan]),
                bundle.spec.holds(meets2, &vec![succ2; n], &[jan2]),
                "n={n}"
            );
        }
        // Rendering (a superset of the structure) is identical.
        assert_eq!(spec.render(&i), bundle.spec.render(&i2));
        // Second round trip is byte-identical (canonical form).
        let text2 = write_spec(&bundle, &i2).unwrap();
        assert_eq!(text, text2);
    }

    #[test]
    fn read_rejects_garbage() {
        let mut i = Interner::new();
        assert!(read_spec("", &mut i).is_err());
        assert!(read_spec("fundbspec 2\nend\n", &mut i).is_err());
        assert!(read_spec("fundbspec 1\nc 0\n", &mut i).is_err()); // no end
        assert!(read_spec("fundbspec 1\nbogus x\nend\n", &mut i).is_err());
        assert!(read_spec("fundbspec 1\nnode 1 -\nend\n", &mut i).is_err()); // non-dense
    }

    #[test]
    fn mixed_map_round_trips() {
        let mut i = Interner::new();
        let g = MixedSym {
            name: i.intern("ext"),
            extra_args: 1,
        };
        let a = Cst(i.intern("A"));
        let fa = Func(i.intern("ext[A]"));
        let (i_spec, spec, ..) = {
            let (i2, spec, m, s, t, j) = meets_spec();
            (i2, spec, m, s, t, j)
        };
        // Graft the mixed map onto an unrelated spec, re-interning its
        // symbols in that spec's interner for a consistent write.
        let mut i3 = i_spec.clone();
        let g3 = MixedSym {
            name: i3.intern("ext"),
            extra_args: 1,
        };
        let a3 = Cst(i3.intern("A"));
        let fa3 = Func(i3.intern("ext[A]"));
        let mut sym_map = FxHashMap::default();
        sym_map.insert((g3, vec![a3].into_boxed_slice()), fa3);
        let text = write_spec(&SpecBundle { spec, sym_map }, &i3).unwrap();
        let mut i4 = Interner::new();
        let bundle = read_spec(&text, &mut i4).unwrap();
        assert_eq!(bundle.sym_map.len(), 1);
        let g4 = MixedSym {
            name: i4.get("ext").unwrap(),
            extra_args: 1,
        };
        let a4 = Cst(i4.get("A").unwrap());
        let fa4 = Func(i4.get("ext[A]").unwrap());
        assert_eq!(bundle.sym_map[&(g4, vec![a4].into_boxed_slice())], fa4);
        let _ = (g, a, fa);
    }

    #[test]
    fn text_write_rejects_unserializable_symbols_binary_carries_them() {
        let (mut i, mut spec, meets, succ, tony, _) = meets_spec();
        // A predicate name with a space would re-tokenize differently in
        // the text format; writing it used to be an assert (process
        // abort), now it is a reported error.
        let weird = Pred(i.intern("has space"));
        let dotted = Cst(i.intern("a.b"));
        spec.nf.insert(weird, &[dotted]);
        let bundle = SpecBundle {
            spec,
            sym_map: FxHashMap::default(),
        };
        let err = write_spec(&bundle, &i).unwrap_err();
        assert!(
            matches!(&err, Error::Parse { detail, .. } if detail.contains("binary")),
            "unexpected error: {err}"
        );
        // The binary format has no such restriction: full round trip.
        let bytes = write_spec_binary(&bundle, &i);
        let mut i2 = Interner::new();
        let back = read_spec_binary(&bytes, &mut i2).unwrap();
        let weird2 = Pred(i2.get("has space").unwrap());
        let dotted2 = Cst(i2.get("a.b").unwrap());
        assert!(back.spec.nf.contains(weird2, &[dotted2]));
        let meets2 = Pred(i2.get("Meets").unwrap());
        let succ2 = Func(i2.get("+1").unwrap());
        let tony2 = Cst(i2.get("Tony").unwrap());
        for n in 0..20usize {
            assert_eq!(
                bundle.spec.holds(meets, &vec![succ; n], &[tony]),
                back.spec.holds(meets2, &vec![succ2; n], &[tony2]),
                "n={n}"
            );
        }
    }

    #[test]
    fn binary_round_trip_is_canonical_and_auto_detected() {
        let (i, spec, meets, succ, tony, jan) = meets_spec();
        let bundle = SpecBundle {
            spec,
            sym_map: FxHashMap::default(),
        };
        let bytes = write_spec_binary(&bundle, &i);
        let mut i2 = Interner::new();
        let back = read_spec_binary(&bytes, &mut i2).unwrap();
        let meets2 = Pred(i2.get("Meets").unwrap());
        let succ2 = Func(i2.get("+1").unwrap());
        let tony2 = Cst(i2.get("Tony").unwrap());
        let jan2 = Cst(i2.get("Jan").unwrap());
        for n in 0..30usize {
            assert_eq!(
                bundle.spec.holds(meets, &vec![succ; n], &[tony]),
                back.spec.holds(meets2, &vec![succ2; n], &[tony2]),
                "n={n}"
            );
            assert_eq!(
                bundle.spec.holds(meets, &vec![succ; n], &[jan]),
                back.spec.holds(meets2, &vec![succ2; n], &[jan2]),
                "n={n}"
            );
        }
        assert_eq!(bundle.spec.render(&i), back.spec.render(&i2));
        // Canonical: re-encoding from the fresh interner is byte-identical.
        assert_eq!(bytes, write_spec_binary(&back, &i2));

        // read_spec_file auto-detects both formats on disk.
        let dir = std::env::temp_dir().join(format!("fundb-specio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bin_path = dir.join("spec.bin");
        let txt_path = dir.join("spec.txt");
        write_spec_file_binary(bin_path.to_str().unwrap(), &bundle, &i).unwrap();
        write_spec_file(txt_path.to_str().unwrap(), &bundle, &i).unwrap();
        let mut i3 = Interner::new();
        let from_bin = read_spec_file(bin_path.to_str().unwrap(), &mut i3).unwrap();
        let mut i4 = Interner::new();
        let from_txt = read_spec_file(txt_path.to_str().unwrap(), &mut i4).unwrap();
        assert_eq!(from_bin.spec.render(&i3), from_txt.spec.render(&i4));
    }

    #[test]
    fn binary_rejects_corruption_and_future_versions() {
        let (i, spec, ..) = meets_spec();
        let bundle = SpecBundle {
            spec,
            sym_map: FxHashMap::default(),
        };
        let bytes = write_spec_binary(&bundle, &i);

        let mut i2 = Interner::new();
        assert!(read_spec_binary(b"garbage", &mut i2).is_err());
        assert!(read_spec_binary(&bytes[..bytes.len() - 1], &mut i2).is_err());

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        let Err(err) = read_spec_binary(&flipped, &mut i2) else {
            panic!("flipped byte accepted");
        };
        assert!(err.to_string().contains("checksum"), "got: {err}");

        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        let Err(err) = read_spec_binary(&future, &mut i2) else {
            panic!("future version accepted");
        };
        assert!(err.to_string().contains("newer build"), "got: {err}");
    }
}
