//! Abstract syntax of functional deductive databases (§2.1).
//!
//! A *functional term* is built from the unique functional constant `0`,
//! functional variables, pure (unary) function symbols and mixed (k-ary)
//! function symbols whose extra arguments are non-functional. A *functional
//! atom* `P(v, x̄)` carries its functional term in the first position; a
//! *relational atom* `R(x̄)` has none. Rules are Horn; a *functional
//! deductive database* is a set of rules plus a set of ground facts.

use crate::error::{Error, Result};
use fundb_term::{Cst, Func, FxHashMap, FxHashSet, Interner, MixedSym, Pred, Var};
use std::fmt;

/// A non-functional term: an ordinary database constant or variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NTerm {
    /// A non-functional variable.
    Var(Var),
    /// A non-functional constant.
    Const(Cst),
}

impl NTerm {
    /// The constant, if this is one.
    pub fn as_const(self) -> Option<Cst> {
        match self {
            NTerm::Const(c) => Some(c),
            NTerm::Var(_) => None,
        }
    }

    /// The variable, if this is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            NTerm::Var(v) => Some(v),
            NTerm::Const(_) => None,
        }
    }
}

/// A functional term (§2.1). Exactly one functional "spine" runs through the
/// term, ending in `0` or in a functional variable.
///
/// Terms can be arbitrarily deep (a timestamp like `Meets(10⁶, …)` is a
/// million applications of `+1`), so every operation on `FTerm` — including
/// `Clone`, `Drop`, equality and hashing, which are implemented manually
/// below — walks the spine iteratively rather than recursively.
pub enum FTerm {
    /// The functional constant `0`.
    Zero,
    /// A functional variable.
    Var(Var),
    /// A pure (unary) application `f(v)`.
    Pure(Func, Box<FTerm>),
    /// A mixed application `g(v, x̄)` with `x̄` non-functional.
    Mixed(MixedSym, Box<FTerm>, Vec<NTerm>),
}

/// One application step of a spine, outermost first (see
/// [`FTerm::spine_steps`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpineStep {
    /// A pure application.
    Pure(Func),
    /// A mixed application with its non-functional arguments.
    Mixed(MixedSym, Vec<NTerm>),
}

impl Drop for FTerm {
    fn drop(&mut self) {
        // Unlink the spine iteratively so dropping a million-deep term does
        // not recurse.
        let mut cur = match self {
            FTerm::Pure(_, t) | FTerm::Mixed(_, t, _) => std::mem::replace(&mut **t, FTerm::Zero),
            _ => return,
        };
        loop {
            cur = match &mut cur {
                FTerm::Pure(_, t) | FTerm::Mixed(_, t, _) => {
                    std::mem::replace(&mut **t, FTerm::Zero)
                }
                _ => return,
            };
        }
    }
}

impl Clone for FTerm {
    fn clone(&self) -> FTerm {
        let (steps, end) = self.decompose();
        let end = match end {
            FTerm::Zero => FTerm::Zero,
            FTerm::Var(v) => FTerm::Var(*v),
            _ => unreachable!("decompose ends at Zero or Var"),
        };
        FTerm::rebuild(end, steps.into_iter().rev())
    }
}

impl PartialEq for FTerm {
    fn eq(&self, other: &FTerm) -> bool {
        let (mut a, mut b) = (self, other);
        loop {
            match (a, b) {
                (FTerm::Zero, FTerm::Zero) => return true,
                (FTerm::Var(x), FTerm::Var(y)) => return x == y,
                (FTerm::Pure(f, t1), FTerm::Pure(g, t2)) => {
                    if f != g {
                        return false;
                    }
                    a = t1;
                    b = t2;
                }
                (FTerm::Mixed(f, t1, a1), FTerm::Mixed(g, t2, a2)) => {
                    if f != g || a1 != a2 {
                        return false;
                    }
                    a = t1;
                    b = t2;
                }
                _ => return false,
            }
        }
    }
}

impl Eq for FTerm {}

impl std::hash::Hash for FTerm {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero => {
                    0u8.hash(state);
                    return;
                }
                FTerm::Var(v) => {
                    1u8.hash(state);
                    v.hash(state);
                    return;
                }
                FTerm::Pure(f, t) => {
                    2u8.hash(state);
                    f.hash(state);
                    cur = t;
                }
                FTerm::Mixed(g, t, args) => {
                    3u8.hash(state);
                    g.hash(state);
                    args.hash(state);
                    cur = t;
                }
            }
        }
    }
}

impl fmt::Debug for FTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (steps, end) = self.decompose();
        for s in &steps {
            match s {
                SpineStep::Pure(sym) => write!(f, "f{}(", sym.index())?,
                SpineStep::Mixed(g, args) => write!(f, "g{}[{:?}](", g.name.index(), args)?,
            }
        }
        match end {
            FTerm::Zero => write!(f, "0")?,
            FTerm::Var(v) => write!(f, "v{}", v.index())?,
            _ => unreachable!(),
        }
        for _ in &steps {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl FTerm {
    /// Decomposes the term into its spine steps (outermost first) and its
    /// end (`Zero` or `Var`). The workhorse behind the iterative traversals.
    pub fn decompose(&self) -> (Vec<SpineStep>, &FTerm) {
        let mut steps = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero | FTerm::Var(_) => return (steps, cur),
                FTerm::Pure(f, t) => {
                    steps.push(SpineStep::Pure(*f));
                    cur = t;
                }
                FTerm::Mixed(g, t, args) => {
                    steps.push(SpineStep::Mixed(*g, args.clone()));
                    cur = t;
                }
            }
        }
    }

    /// Rebuilds a term by applying `steps` (innermost application first) to
    /// `end`.
    pub fn rebuild(end: FTerm, steps: impl Iterator<Item = SpineStep>) -> FTerm {
        let mut t = end;
        for s in steps {
            t = match s {
                SpineStep::Pure(f) => FTerm::Pure(f, Box::new(t)),
                SpineStep::Mixed(g, args) => FTerm::Mixed(g, Box::new(t), args),
            };
        }
        t
    }

    /// The end of the spine: `Zero` or a variable.
    pub fn spine_end(&self) -> &FTerm {
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero | FTerm::Var(_) => return cur,
                FTerm::Pure(_, t) | FTerm::Mixed(_, t, _) => cur = t,
            }
        }
    }

    /// Depth: number of function applications along the spine.
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero | FTerm::Var(_) => return n,
                FTerm::Pure(_, t) | FTerm::Mixed(_, t, _) => {
                    n += 1;
                    cur = t;
                }
            }
        }
    }

    /// The functional variable at the spine's end, if any.
    pub fn spine_var(&self) -> Option<Var> {
        match self.spine_end() {
            FTerm::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the term contains no variables at all (spine or mixed args).
    pub fn is_ground(&self) -> bool {
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero => return true,
                FTerm::Var(_) => return false,
                FTerm::Pure(_, t) => cur = t,
                FTerm::Mixed(_, t, args) => {
                    if !args.iter().all(|a| a.as_const().is_some()) {
                        return false;
                    }
                    cur = t;
                }
            }
        }
    }

    /// Whether the term uses only pure symbols (and `0`/a variable).
    pub fn is_pure(&self) -> bool {
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero | FTerm::Var(_) => return true,
                FTerm::Pure(_, t) => cur = t,
                FTerm::Mixed(..) => return false,
            }
        }
    }

    /// For a ground pure term, its root-to-leaf symbol path (innermost
    /// application first), suitable for `fundb_term::TermTree::intern_path`.
    pub fn pure_path(&self) -> Option<Vec<Func>> {
        let mut path = Vec::with_capacity(self.depth());
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero => {
                    path.reverse();
                    return Some(path);
                }
                FTerm::Var(_) | FTerm::Mixed(..) => return None,
                FTerm::Pure(f, t) => {
                    path.push(*f);
                    cur = t;
                }
            }
        }
    }

    /// Builds a ground pure term from a symbol path (innermost first).
    pub fn from_path(path: &[Func]) -> FTerm {
        let mut t = FTerm::Zero;
        for &f in path {
            t = FTerm::Pure(f, Box::new(t));
        }
        t
    }

    /// Visits every non-functional term in mixed argument positions,
    /// outermost application first.
    pub fn visit_nterms(&self, f: &mut impl FnMut(&NTerm)) {
        let mut cur = self;
        loop {
            match cur {
                FTerm::Zero | FTerm::Var(_) => return,
                FTerm::Pure(_, t) => cur = t,
                FTerm::Mixed(_, t, args) => {
                    for a in args {
                        f(a);
                    }
                    cur = t;
                }
            }
        }
    }

    /// Substitutes non-functional variables in mixed argument positions.
    pub fn subst_nvars(&self, map: &FxHashMap<Var, Cst>) -> FTerm {
        let (steps, end) = self.decompose();
        let end = match end {
            FTerm::Zero => FTerm::Zero,
            FTerm::Var(v) => FTerm::Var(*v),
            _ => unreachable!("decompose ends at Zero or Var"),
        };
        FTerm::rebuild(
            end,
            steps.into_iter().rev().map(|s| match s {
                SpineStep::Pure(f) => SpineStep::Pure(f),
                SpineStep::Mixed(g, args) => SpineStep::Mixed(
                    g,
                    args.into_iter()
                        .map(|a| match a {
                            NTerm::Var(v) => map
                                .get(&v)
                                .map(|&c| NTerm::Const(c))
                                .unwrap_or(NTerm::Var(v)),
                            NTerm::Const(c) => NTerm::Const(c),
                        })
                        .collect(),
                ),
            }),
        )
    }

    /// Replaces the spine end (variable or `0`) with `inner`. Used by the
    /// normalization pass to re-root terms.
    pub fn replace_spine_end(&self, inner: &FTerm) -> FTerm {
        let (steps, _) = self.decompose();
        FTerm::rebuild(inner.clone(), steps.into_iter().rev())
    }
}

/// An atom: functional (`P(v, x̄)`) or relational (`R(x̄)`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// `P(v, x̄)` with functional term `v` in the fixed first position.
    Functional {
        /// Predicate symbol.
        pred: Pred,
        /// The functional term in the fixed position.
        fterm: FTerm,
        /// Non-functional arguments.
        args: Vec<NTerm>,
    },
    /// `R(x̄)` over non-functional terms only.
    Relational {
        /// Predicate symbol.
        pred: Pred,
        /// Arguments.
        args: Vec<NTerm>,
    },
}

impl Atom {
    /// The predicate symbol.
    pub fn pred(&self) -> Pred {
        match self {
            Atom::Functional { pred, .. } | Atom::Relational { pred, .. } => *pred,
        }
    }

    /// The non-functional arguments.
    pub fn args(&self) -> &[NTerm] {
        match self {
            Atom::Functional { args, .. } | Atom::Relational { args, .. } => args,
        }
    }

    /// The functional term, if this atom is functional.
    pub fn fterm(&self) -> Option<&FTerm> {
        match self {
            Atom::Functional { fterm, .. } => Some(fterm),
            Atom::Relational { .. } => None,
        }
    }

    /// The functional variable of the atom's spine, if any.
    pub fn spine_var(&self) -> Option<Var> {
        self.fterm().and_then(FTerm::spine_var)
    }

    /// All non-functional variables (argument positions and mixed-symbol
    /// argument positions).
    pub fn nvars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for a in self.args() {
            if let NTerm::Var(v) = a {
                out.push(*v);
            }
        }
        if let Some(ft) = self.fterm() {
            ft.visit_nterms(&mut |n| {
                if let NTerm::Var(v) = n {
                    out.push(*v);
                }
            });
        }
        out
    }

    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args().iter().all(|a| a.as_const().is_some())
            && self.fterm().is_none_or(FTerm::is_ground)
    }

    /// Substitutes non-functional variables.
    pub fn subst_nvars(&self, map: &FxHashMap<Var, Cst>) -> Atom {
        let sub_args = |args: &[NTerm]| {
            args.iter()
                .map(|a| match a {
                    NTerm::Var(v) => map
                        .get(v)
                        .map(|&c| NTerm::Const(c))
                        .unwrap_or(NTerm::Var(*v)),
                    NTerm::Const(c) => NTerm::Const(*c),
                })
                .collect::<Vec<_>>()
        };
        match self {
            Atom::Functional { pred, fterm, args } => Atom::Functional {
                pred: *pred,
                fterm: fterm.subst_nvars(map),
                args: sub_args(args),
            },
            Atom::Relational { pred, args } => Atom::Relational {
                pred: *pred,
                args: sub_args(args),
            },
        }
    }
}

/// A Horn rule `body₁, …, bodyₙ → head`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body atoms (a conjunction; may be empty for a ground fact rule).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Convenience constructor.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule { head, body }
    }

    /// All functional (spine) variables of the rule, deduplicated in order
    /// of first occurrence.
    pub fn functional_vars(&self) -> Vec<Var> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for atom in std::iter::once(&self.head).chain(&self.body) {
            if let Some(v) = atom.spine_var() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Whether the rule is *normal* (§2.4): at most one functional variable
    /// and every non-ground functional term of depth ≤ 1.
    pub fn is_normal(&self) -> bool {
        if self.functional_vars().len() > 1 {
            return false;
        }
        std::iter::once(&self.head)
            .chain(&self.body)
            .all(|a| a.fterm().is_none_or(|ft| ft.is_ground() || ft.depth() <= 1))
    }
}

/// A database: ground facts (functional and relational tuples).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Database {
    /// Ground atoms.
    pub facts: Vec<Atom>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fact, verifying groundness.
    pub fn insert(&mut self, fact: Atom, interner: &Interner) -> Result<()> {
        if !fact.is_ground() {
            return Err(Error::NonGroundFact {
                fact: display_atom(&fact, interner).to_string(),
            });
        }
        self.facts.push(fact);
        Ok(())
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// A set of functional rules.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Whether every rule is normal (§2.4).
    pub fn is_normal(&self) -> bool {
        self.rules.iter().all(Rule::is_normal)
    }
}

/// Signature of a predicate: kind (functional or relational) and the number
/// of non-functional arguments.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PredSig {
    /// Whether the predicate carries a functional first argument.
    pub functional: bool,
    /// Number of non-functional arguments (excludes the functional
    /// position).
    pub extra: usize,
}

/// Schema extracted from a program plus database: predicate signatures,
/// function symbols, constants, and the parameter `c` (§2.5).
#[derive(Clone, Default, Debug)]
pub struct Schema {
    /// Predicate signatures.
    pub sigs: FxHashMap<Pred, PredSig>,
    /// Pure function symbols, in first-occurrence order (this order defines
    /// the precedence ordering of §3.4).
    pub pure_syms: Vec<Func>,
    /// Mixed function symbols in first-occurrence order.
    pub mixed_syms: Vec<MixedSym>,
    /// Non-functional constants in first-occurrence order.
    pub constants: Vec<Cst>,
    /// Depth of the largest ground functional term in rules and database
    /// (`c` in §2.5; 0 if none).
    pub max_ground_depth: usize,
}

impl Schema {
    /// Validates `program` and `db` against the restrictions of §2.1 and
    /// §2.3 and builds the schema:
    ///
    /// * consistent predicate signatures,
    /// * disjoint functional / non-functional variable sorts,
    /// * range-restrictedness of every rule (domain independence, §2.3).
    pub fn infer(program: &Program, db: &Database, interner: &Interner) -> Result<Schema> {
        let mut schema = Schema::default();
        let mut fvars: FxHashSet<Var> = FxHashSet::default();
        let mut nvars: FxHashSet<Var> = FxHashSet::default();
        let mut seen_pure: FxHashSet<Func> = FxHashSet::default();
        let mut seen_mixed: FxHashSet<MixedSym> = FxHashSet::default();
        let mut seen_const: FxHashSet<Cst> = FxHashSet::default();

        let visit_atom = |schema: &mut Schema,
                          fvars: &mut FxHashSet<Var>,
                          nvars: &mut FxHashSet<Var>,
                          seen_pure: &mut FxHashSet<Func>,
                          seen_mixed: &mut FxHashSet<MixedSym>,
                          seen_const: &mut FxHashSet<Cst>,
                          atom: &Atom|
         -> Result<()> {
            let sig = PredSig {
                functional: atom.fterm().is_some(),
                extra: atom.args().len(),
            };
            match schema.sigs.get(&atom.pred()) {
                None => {
                    schema.sigs.insert(atom.pred(), sig);
                }
                Some(prev) if *prev != sig => {
                    return Err(Error::InconsistentPredicate {
                        pred: interner.resolve(atom.pred().sym()).to_string(),
                        detail: format!(
                            "previously used as {} with {} non-functional argument(s), \
                             now as {} with {}",
                            kind_name(prev.functional),
                            prev.extra,
                            kind_name(sig.functional),
                            sig.extra
                        ),
                    });
                }
                Some(_) => {}
            }
            // Record terms.
            for a in atom.args() {
                match a {
                    NTerm::Var(v) => {
                        nvars.insert(*v);
                    }
                    NTerm::Const(c) => {
                        if seen_const.insert(*c) {
                            schema.constants.push(*c);
                        }
                    }
                }
            }
            if let Some(ft) = atom.fterm() {
                record_fterm(schema, fvars, seen_pure, seen_mixed, seen_const, nvars, ft);
                if ft.is_ground() {
                    schema.max_ground_depth = schema.max_ground_depth.max(ft.depth());
                }
            }
            Ok(())
        };

        for rule in &program.rules {
            for atom in std::iter::once(&rule.head).chain(&rule.body) {
                visit_atom(
                    &mut schema,
                    &mut fvars,
                    &mut nvars,
                    &mut seen_pure,
                    &mut seen_mixed,
                    &mut seen_const,
                    atom,
                )?;
            }
        }
        for fact in &db.facts {
            visit_atom(
                &mut schema,
                &mut fvars,
                &mut nvars,
                &mut seen_pure,
                &mut seen_mixed,
                &mut seen_const,
                fact,
            )?;
        }

        // Disjoint variable sorts (§2.1).
        if let Some(v) = fvars.intersection(&nvars).next() {
            return Err(Error::MixedVariableSorts {
                var: interner.resolve(v.sym()).to_string(),
            });
        }

        // Range-restrictedness = domain independence (§2.3).
        for rule in &program.rules {
            crate::domaincheck::check_rule(rule, interner)?;
        }

        Ok(schema)
    }

    /// The signature of `p`; panics if `p` is unknown to the schema.
    pub fn sig(&self, p: Pred) -> PredSig {
        self.sigs[&p]
    }

    /// Predicates in deterministic (symbol-index) order.
    pub fn preds_sorted(&self) -> Vec<Pred> {
        let mut v: Vec<Pred> = self.sigs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of predicates (`s` in §2.5).
    pub fn pred_count(&self) -> usize {
        self.sigs.len()
    }
}

fn record_fterm(
    schema: &mut Schema,
    fvars: &mut FxHashSet<Var>,
    seen_pure: &mut FxHashSet<Func>,
    seen_mixed: &mut FxHashSet<MixedSym>,
    seen_const: &mut FxHashSet<Cst>,
    nvars: &mut FxHashSet<Var>,
    ft: &FTerm,
) {
    let mut cur = ft;
    loop {
        match cur {
            FTerm::Zero => return,
            FTerm::Var(v) => {
                fvars.insert(*v);
                return;
            }
            FTerm::Pure(f, t) => {
                if seen_pure.insert(*f) {
                    schema.pure_syms.push(*f);
                }
                cur = t;
            }
            FTerm::Mixed(g, t, args) => {
                if seen_mixed.insert(*g) {
                    schema.mixed_syms.push(*g);
                }
                for a in args {
                    match a {
                        NTerm::Var(v) => {
                            nvars.insert(*v);
                        }
                        NTerm::Const(c) => {
                            if seen_const.insert(*c) {
                                schema.constants.push(*c);
                            }
                        }
                    }
                }
                cur = t;
            }
        }
    }
}

fn kind_name(functional: bool) -> &'static str {
    if functional {
        "functional"
    } else {
        "relational"
    }
}

// ---------------------------------------------------------------------------
// Display helpers
// ---------------------------------------------------------------------------

/// Renders a functional term.
pub fn display_fterm<'a>(ft: &'a FTerm, interner: &'a Interner) -> impl fmt::Display + 'a {
    struct D<'a>(&'a FTerm, &'a Interner);
    impl fmt::Display for D<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt_fterm(self.0, self.1, f)
        }
    }
    D(ft, interner)
}

fn fmt_fterm(ft: &FTerm, i: &Interner, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Iterative renderer. Runs of the temporal successor symbol `+1` are
    // printed as the concrete syntax's postfix sugar (`t+2`, `7`), other
    // applications as prefix `f(…)`; a closer stack keeps it single-pass
    // even for million-deep terms.
    let (steps, end) = ft.decompose();
    let is_plus = |s: &SpineStep| matches!(s, SpineStep::Pure(sym) if i.resolve(sym.sym()) == "+1");

    // Pure number: all steps are +1 over 0.
    if matches!(end, FTerm::Zero) && !steps.is_empty() && steps.iter().all(is_plus) {
        return write!(f, "{}", steps.len());
    }

    let mut closers: Vec<String> = Vec::new();
    let mut idx = 0;
    while idx < steps.len() {
        let run = steps[idx..].iter().take_while(|s| is_plus(s)).count();
        if run > 0 {
            closers.push(format!("+{run}"));
            idx += run;
            continue;
        }
        match &steps[idx] {
            SpineStep::Pure(sym) => {
                write!(f, "{}(", i.resolve(sym.sym()))?;
                closers.push(")".to_string());
            }
            SpineStep::Mixed(g, args) => {
                write!(f, "{}(", i.resolve(g.name))?;
                let mut closer = String::new();
                for a in args {
                    closer.push(',');
                    match a {
                        NTerm::Var(v) => closer.push_str(i.resolve(v.sym())),
                        NTerm::Const(c) => closer.push_str(i.resolve(c.sym())),
                    }
                }
                closer.push(')');
                closers.push(closer);
            }
        }
        idx += 1;
    }
    match end {
        FTerm::Zero => write!(f, "0")?,
        FTerm::Var(v) => write!(f, "{}", i.resolve(v.sym()))?,
        _ => unreachable!("decompose ends at Zero or Var"),
    }
    while let Some(c) = closers.pop() {
        write!(f, "{c}")?;
    }
    Ok(())
}

fn fmt_nterm(n: &NTerm, i: &Interner, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match n {
        NTerm::Var(v) => write!(f, "{}", i.resolve(v.sym())),
        NTerm::Const(c) => write!(f, "{}", i.resolve(c.sym())),
    }
}

/// Renders an atom.
pub fn display_atom<'a>(atom: &'a Atom, interner: &'a Interner) -> impl fmt::Display + 'a {
    struct D<'a>(&'a Atom, &'a Interner);
    impl fmt::Display for D<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let i = self.1;
            write!(f, "{}(", i.resolve(self.0.pred().sym()))?;
            let mut first = true;
            if let Some(ft) = self.0.fterm() {
                fmt_fterm(ft, i, f)?;
                first = false;
            }
            for a in self.0.args() {
                if !first {
                    write!(f, ",")?;
                }
                first = false;
                fmt_nterm(a, i, f)?;
            }
            write!(f, ")")
        }
    }
    D(atom, interner)
}

/// Renders a rule as `body -> head.`
pub fn display_rule<'a>(rule: &'a Rule, interner: &'a Interner) -> impl fmt::Display + 'a {
    struct D<'a>(&'a Rule, &'a Interner);
    impl fmt::Display for D<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for (i, b) in self.0.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", display_atom(b, self.1))?;
            }
            if !self.0.body.is_empty() {
                write!(f, " -> ")?;
            }
            write!(f, "{}.", display_atom(&self.0.head, self.1))
        }
    }
    D(rule, interner)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fx {
        i: Interner,
        meets: Pred,
        next: Pred,
        t: Var,
        x: Var,
        y: Var,
        tony: Cst,
        jan: Cst,
        succ: Func,
    }

    fn fx() -> Fx {
        let mut i = Interner::new();
        Fx {
            meets: Pred(i.intern("Meets")),
            next: Pred(i.intern("Next")),
            t: Var(i.intern("t")),
            x: Var(i.intern("x")),
            y: Var(i.intern("y")),
            tony: Cst(i.intern("tony")),
            jan: Cst(i.intern("jan")),
            succ: Func(i.intern("succ")),
            i,
        }
    }

    /// The paper's introductory rule:
    /// `Meets(t,x), Next(x,y) -> Meets(t+1,y)`.
    fn meets_rule(fx: &Fx) -> Rule {
        Rule::new(
            Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Pure(fx.succ, Box::new(FTerm::Var(fx.t))),
                args: vec![NTerm::Var(fx.y)],
            },
            vec![
                Atom::Functional {
                    pred: fx.meets,
                    fterm: FTerm::Var(fx.t),
                    args: vec![NTerm::Var(fx.x)],
                },
                Atom::Relational {
                    pred: fx.next,
                    args: vec![NTerm::Var(fx.x), NTerm::Var(fx.y)],
                },
            ],
        )
    }

    fn meets_db(fx: &Fx) -> Database {
        Database {
            facts: vec![
                Atom::Functional {
                    pred: fx.meets,
                    fterm: FTerm::Zero,
                    args: vec![NTerm::Const(fx.tony)],
                },
                Atom::Relational {
                    pred: fx.next,
                    args: vec![NTerm::Const(fx.tony), NTerm::Const(fx.jan)],
                },
                Atom::Relational {
                    pred: fx.next,
                    args: vec![NTerm::Const(fx.jan), NTerm::Const(fx.tony)],
                },
            ],
        }
    }

    #[test]
    fn depth_and_spine() {
        let fx = fx();
        let t = FTerm::Pure(
            fx.succ,
            Box::new(FTerm::Pure(fx.succ, Box::new(FTerm::Var(fx.t)))),
        );
        assert_eq!(t.depth(), 2);
        assert_eq!(t.spine_var(), Some(fx.t));
        assert!(!t.is_ground());
        assert!(t.is_pure());
    }

    #[test]
    fn pure_path_round_trips() {
        let fx = fx();
        let t = FTerm::from_path(&[fx.succ, fx.succ]);
        assert_eq!(t.pure_path().unwrap(), vec![fx.succ, fx.succ]);
        assert!(t.is_ground());
        let v = FTerm::Pure(fx.succ, Box::new(FTerm::Var(fx.t)));
        assert!(v.pure_path().is_none());
    }

    #[test]
    fn schema_infers_meets_example() {
        let fx = fx();
        let mut p = Program::new();
        p.push(meets_rule(&fx));
        let db = meets_db(&fx);
        let schema = Schema::infer(&p, &db, &fx.i).unwrap();
        assert_eq!(schema.pred_count(), 2);
        assert!(schema.sig(fx.meets).functional);
        assert_eq!(schema.sig(fx.meets).extra, 1);
        assert!(!schema.sig(fx.next).functional);
        assert_eq!(schema.pure_syms, vec![fx.succ]);
        assert_eq!(schema.constants, vec![fx.tony, fx.jan]);
        assert_eq!(schema.max_ground_depth, 0);
    }

    #[test]
    fn inconsistent_predicate_rejected() {
        let fx = fx();
        let mut p = Program::new();
        p.push(meets_rule(&fx));
        // Next used as functional elsewhere.
        p.push(Rule::new(
            Atom::Functional {
                pred: fx.next,
                fterm: FTerm::Var(fx.t),
                args: vec![],
            },
            vec![Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Var(fx.t),
                args: vec![NTerm::Var(fx.x)],
            }],
        ));
        let err = Schema::infer(&p, &Database::new(), &fx.i).unwrap_err();
        assert!(matches!(err, Error::InconsistentPredicate { .. }));
    }

    #[test]
    fn mixed_variable_sorts_rejected() {
        let fx = fx();
        let mut p = Program::new();
        // Meets(x, x): x used as both spine variable and argument.
        p.push(Rule::new(
            Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Var(fx.x),
                args: vec![NTerm::Var(fx.x)],
            },
            vec![Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Var(fx.x),
                args: vec![NTerm::Var(fx.x)],
            }],
        ));
        let err = Schema::infer(&p, &Database::new(), &fx.i).unwrap_err();
        assert!(matches!(err, Error::MixedVariableSorts { .. }));
    }

    #[test]
    fn range_restriction_enforced() {
        let fx = fx();
        let mut p = Program::new();
        // P(s) with s not in the body: domain-dependent (§2.3 example).
        p.push(Rule::new(
            Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Var(fx.t),
                args: vec![NTerm::Const(fx.tony)],
            },
            vec![Atom::Relational {
                pred: fx.next,
                args: vec![NTerm::Const(fx.tony), NTerm::Const(fx.jan)],
            }],
        ));
        let err = Schema::infer(&p, &Database::new(), &fx.i).unwrap_err();
        assert!(matches!(err, Error::NotRangeRestricted { .. }));
    }

    #[test]
    fn non_ground_fact_rejected() {
        let fx = fx();
        let mut db = Database::new();
        let err = db
            .insert(
                Atom::Relational {
                    pred: fx.next,
                    args: vec![NTerm::Var(fx.x), NTerm::Const(fx.jan)],
                },
                &fx.i,
            )
            .unwrap_err();
        assert!(matches!(err, Error::NonGroundFact { .. }));
    }

    #[test]
    fn rule_normality() {
        let fx = fx();
        let r = meets_rule(&fx);
        assert!(r.is_normal());
        // Depth-2 head term: not normal.
        let deep = Rule::new(
            Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Pure(
                    fx.succ,
                    Box::new(FTerm::Pure(fx.succ, Box::new(FTerm::Var(fx.t)))),
                ),
                args: vec![NTerm::Var(fx.x)],
            },
            vec![Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::Var(fx.t),
                args: vec![NTerm::Var(fx.x)],
            }],
        );
        assert!(!deep.is_normal());
    }

    #[test]
    fn display_round_trip_shapes() {
        let fx = fx();
        let r = meets_rule(&fx);
        let s = display_rule(&r, &fx.i).to_string();
        assert_eq!(s, "Meets(t,x), Next(x,y) -> Meets(succ(t),y).");
    }

    #[test]
    fn ground_depth_recorded() {
        let fx = fx();
        let mut db = Database::new();
        db.insert(
            Atom::Functional {
                pred: fx.meets,
                fterm: FTerm::from_path(&[fx.succ, fx.succ, fx.succ]),
                args: vec![NTerm::Const(fx.tony)],
            },
            &fx.i,
        )
        .unwrap();
        let schema = Schema::infer(&Program::new(), &db, &fx.i).unwrap();
        assert_eq!(schema.max_ground_depth, 3);
    }
}
