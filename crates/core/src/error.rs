//! Error types for program validation and the pipeline.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong between a raw program and a specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A predicate was used both with and without a functional first
    /// argument, or with two different arities.
    InconsistentPredicate {
        /// Offending predicate name.
        pred: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// A variable was used both in functional and non-functional positions;
    /// the paper requires the two variable sorts to be disjoint (§2.1).
    MixedVariableSorts {
        /// Offending variable name.
        var: String,
    },
    /// A rule is not range-restricted, so the rule set is not
    /// domain-independent (§2.3) and its least fixpoint cannot be finitely
    /// represented by this method.
    NotRangeRestricted {
        /// Rendering of the offending rule.
        rule: String,
        /// The head variable that does not occur in the body.
        var: String,
    },
    /// A database fact contains a variable.
    NonGroundFact {
        /// Rendering of the offending fact.
        fact: String,
    },
    /// A query violates the restrictions of §5 (positive, at most one
    /// functional variable).
    UnsupportedQuery {
        /// Human-readable explanation.
        detail: String,
    },
    /// Parse error (produced by `fundb-parser`, carried here so downstream
    /// code handles one error type).
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// Human-readable explanation.
        detail: String,
    },
    /// The operation needed a functional predicate but got a relational one
    /// (or vice versa).
    KindMismatch {
        /// Offending predicate name.
        pred: String,
    },
    /// An I/O failure while reading or writing a spec/database file,
    /// reduced to its message (keeps this enum `Clone`/`Eq`).
    Io {
        /// Path involved, if known.
        path: String,
        /// The underlying `std::io::Error` message.
        detail: String,
    },
    /// An evaluation stopped early: budget exhausted, cancelled, or a
    /// worker panicked (see [`fundb_datalog::governor::EvalError`]).
    Eval(fundb_datalog::EvalError),
}

impl From<fundb_datalog::EvalError> for Error {
    fn from(e: fundb_datalog::EvalError) -> Error {
        Error::Eval(e)
    }
}

impl Error {
    /// Wraps an `std::io::Error` with the path it concerned.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Error {
        Error::Io {
            path: path.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InconsistentPredicate { pred, detail } => {
                write!(f, "inconsistent use of predicate {pred}: {detail}")
            }
            Error::MixedVariableSorts { var } => write!(
                f,
                "variable {var} is used in both functional and non-functional positions"
            ),
            Error::NotRangeRestricted { rule, var } => write!(
                f,
                "rule `{rule}` is not range-restricted: head variable {var} \
                 does not occur in the body (the rule set is not domain-independent, §2.3)"
            ),
            Error::NonGroundFact { fact } => {
                write!(f, "database fact `{fact}` contains a variable")
            }
            Error::UnsupportedQuery { detail } => write!(f, "unsupported query: {detail}"),
            Error::Parse { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            Error::KindMismatch { pred } => {
                write!(
                    f,
                    "predicate {pred} used with the wrong kind (functional vs relational)"
                )
            }
            Error::Io { path, detail } => write!(f, "io error on {path}: {detail}"),
            Error::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = Error::NotRangeRestricted {
            rule: "R(x) -> P(s)".into(),
            var: "s".into(),
        };
        let s = e.to_string();
        assert!(s.contains("range-restricted"));
        assert!(s.contains("domain-independent"));
    }
}
