//! Query answers as relational specifications (§5).
//!
//! Queries are positive conjunctions of atoms with at most one functional
//! variable; free (output) variables form the answer tuple. Two evaluation
//! strategies from the paper:
//!
//! 1. **By extension**: add the query as a rule `body → QUERY(…)` to `Z`,
//!    recompute the graph specification of `LFP(Z', D)`, and read the
//!    `QUERY` predicate off the new primary database — the answer is itself
//!    a relational specification `(B', F')`.
//! 2. **Incrementally** (Theorem 5.1): a *uniform* query — one whose only
//!    non-ground functional term is a bare variable — can be evaluated
//!    directly against the existing primary database, keeping the successor
//!    mappings unchanged: the answer is `(Q(B), F)`. "The second approach is
//!    preferable, because to process new queries we don't have to recompute
//!    the specification of the least fixpoint."
//!
//! Ground functional terms in a query are replaced by the representative
//! term of their cluster, as §5 prescribes.

use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::graphspec::{GraphSpec, SpecNodeId};
use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
use fundb_datalog as dl;
use fundb_datalog::{Probe, RowId};
use fundb_term::{Cst, Func, FxHashMap, FxHashSet, Interner, Pred, Sym, Var};

/// A purely relational atom in function-free Datalog form; `None` if the
/// atom is functional.
fn to_dl_atom(atom: &Atom) -> Option<dl::Atom> {
    match atom {
        Atom::Relational { pred, args } => Some(dl::Atom::new(
            *pred,
            args.iter()
                .map(|t| match t {
                    NTerm::Var(v) => dl::Term::Var(*v),
                    NTerm::Const(c) => dl::Term::Const(*c),
                })
                .collect(),
        )),
        Atom::Functional { .. } => None,
    }
}

/// The rules of a purely relational program in function-free Datalog form;
/// `None` as soon as any rule mentions a functional atom.
pub fn relational_rules(program: &Program) -> Option<Vec<dl::Rule>> {
    program
        .rules
        .iter()
        .map(|r| {
            let head = to_dl_atom(&r.head)?;
            let body = r.body.iter().map(to_dl_atom).collect::<Option<Vec<_>>>()?;
            Some(dl::Rule::new(head, body))
        })
        .collect()
}

/// The facts of a purely relational database as a Datalog [`dl::Database`];
/// `None` as soon as any fact is functional.
pub fn relational_facts(db: &Database) -> Option<dl::Database> {
    let mut out = dl::Database::new();
    for fact in &db.facts {
        match fact {
            Atom::Relational { pred, args } => {
                let row: Vec<Cst> = args.iter().map(|t| t.as_const()).collect::<Option<_>>()?;
                out.insert(*pred, &row);
            }
            Atom::Functional { .. } => return None,
        }
    }
    Some(out)
}

/// A positive conjunctive query with at most one functional variable.
///
/// ```
/// use fundb_parser::Workspace;
///
/// let mut ws = Workspace::new();
/// ws.parse(
///     "Meets(t, x), Next(x, y) -> Meets(t+1, y).
///      Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
/// ).unwrap();
/// let spec = ws.graph_spec().unwrap();
/// let q = ws.parse_query("Meets(t, x)").unwrap();          // {(t,x) : Meets(t,x)}
/// let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
/// let first = ans.enumerate_terms(&spec, 2);                // infinite answer, finite spec
/// assert_eq!(first[0].0.len(), 0);                          // day 0: Tony
/// assert_eq!(first[1].0.len(), 1);                          // day 1: Jan
/// ```
#[derive(Clone, Debug)]
pub struct Query {
    /// The functional output variable, if the query asks for terms.
    pub out_fvar: Option<Var>,
    /// Non-functional output variables.
    pub out_nvars: Vec<Var>,
    /// The body conjunction.
    pub body: Vec<Atom>,
}

impl Query {
    /// Validates the §5 restrictions.
    pub fn validate(&self, interner: &Interner) -> Result<()> {
        let mut fvars: FxHashSet<Var> = FxHashSet::default();
        let mut nvars: FxHashSet<Var> = FxHashSet::default();
        for atom in &self.body {
            if let Some(v) = atom.spine_var() {
                fvars.insert(v);
            }
            for v in atom.nvars() {
                nvars.insert(v);
            }
        }
        if fvars.len() > 1 {
            return Err(Error::UnsupportedQuery {
                detail: "more than one functional variable (§5 allows at most one)".into(),
            });
        }
        if let Some(v) = self.out_fvar {
            if !fvars.contains(&v) {
                return Err(Error::UnsupportedQuery {
                    detail: format!(
                        "functional output variable {} does not occur in the body",
                        interner.resolve(v.sym())
                    ),
                });
            }
        }
        for v in &self.out_nvars {
            if !nvars.contains(v) {
                return Err(Error::UnsupportedQuery {
                    detail: format!(
                        "output variable {} does not occur in the body",
                        interner.resolve(v.sym())
                    ),
                });
            }
        }
        Ok(())
    }

    /// Whether the query is *uniform*: its only non-ground functional term
    /// is a bare variable (Theorem 5.1's condition).
    pub fn is_uniform(&self) -> bool {
        self.body.iter().all(|a| {
            a.fterm()
                .is_none_or(|ft| ft.is_ground() || matches!(ft, FTerm::Var(_)))
        })
    }

    /// The query as a rule defining a fresh `QUERY` predicate.
    pub fn to_rule(&self, query_pred: Pred) -> Rule {
        let head = match self.out_fvar {
            Some(v) => Atom::Functional {
                pred: query_pred,
                fterm: FTerm::Var(v),
                args: self.out_nvars.iter().map(|&v| NTerm::Var(v)).collect(),
            },
            None => Atom::Relational {
                pred: query_pred,
                args: self.out_nvars.iter().map(|&v| NTerm::Var(v)).collect(),
            },
        };
        Rule::new(head, self.body.clone())
    }

    /// Strategy 1: extend the program with the query rule and rebuild the
    /// specification. Returns the new spec and the `QUERY` predicate.
    pub fn answer_by_extension(
        &self,
        program: &Program,
        db: &Database,
        interner: &mut Interner,
    ) -> Result<(GraphSpec, Pred)> {
        self.validate(interner)?;
        let query_pred = Pred(interner.fresh("QUERY"));
        let mut extended = program.clone();
        extended.push(self.to_rule(query_pred));
        let mut engine = Engine::build(&extended, db, interner)?;
        Ok((GraphSpec::from_engine(&mut engine)?, query_pred))
    }

    /// Strategy 2 (Theorem 5.1): evaluate a uniform query against the
    /// primary database only, reusing the successor mappings.
    pub fn answer_incremental(
        &self,
        spec: &GraphSpec,
        interner: &Interner,
    ) -> Result<IncrementalAnswer> {
        self.validate(interner)?;
        if !self.is_uniform() {
            return Err(Error::UnsupportedQuery {
                detail: "incremental specifications require a uniform query (Theorem 5.1)".into(),
            });
        }
        let has_fvar = self.body.iter().any(|a| a.spine_var().is_some());
        if !has_fvar {
            // A body with no functional atom at all routes through the
            // shared Datalog query executor over the primary relational
            // store — the same compiled-join path goal-directed answering
            // uses — rather than the per-cluster interpreter.
            if let Some((body, out)) = self.to_datalog_goal() {
                let rows = dl::query(&spec.nf, &body, &out)?;
                return Ok(IncrementalAnswer::Tuples(rows.into_iter().collect()));
            }
        }
        // Compile the conjunction once; every cluster reuses the program.
        let compiled = CompiledBody::compile(&self.body, &self.out_nvars);
        if !has_fvar {
            // Ground functional atoms present: evaluate once against the
            // spec (cluster representatives resolve the ground spines).
            let tuples = compiled.eval_at(spec, None);
            return Ok(IncrementalAnswer::Tuples(tuples));
        }
        let mut map: FxHashMap<SpecNodeId, FxHashSet<Vec<Cst>>> = FxHashMap::default();
        for cluster in spec.node_ids() {
            let tuples = compiled.eval_at(spec, Some(cluster));
            if !tuples.is_empty() {
                map.insert(cluster, tuples);
            }
        }
        if self.out_fvar.is_some() {
            Ok(IncrementalAnswer::PerCluster(map))
        } else {
            // ∃s: project clusters away.
            let mut tuples = FxHashSet::default();
            for set in map.into_values() {
                tuples.extend(set);
            }
            Ok(IncrementalAnswer::Tuples(tuples))
        }
    }

    /// The body and output variables in function-free Datalog form, if the
    /// query is purely relational (no functional atom, no functional
    /// output).
    pub fn to_datalog_goal(&self) -> Option<(Vec<dl::Atom>, Vec<Var>)> {
        if self.out_fvar.is_some() {
            return None;
        }
        let body = self
            .body
            .iter()
            .map(to_dl_atom)
            .collect::<Option<Vec<_>>>()?;
        Some((body, self.out_nvars.clone()))
    }

    /// Strategy 3 (goal-directed): when program, database, and query are
    /// all purely relational, skip the graph specification entirely —
    /// rewrite the rules by the magic-set transformation for this goal's
    /// binding pattern and evaluate only the demanded cone into a scratch
    /// overlay ([`dl::query_demand_governed`]). Ground and partially-bound
    /// goals touch a fraction of the full fixpoint; degenerate goals fall
    /// back to full materialization inside the same call (see
    /// [`dl::DemandAnswer::goal_directed`]).
    ///
    /// Returns `None` when a functional atom occurs anywhere, so callers
    /// fall back to spec-based answering.
    pub fn answer_goal_directed(
        &self,
        program: &Program,
        db: &Database,
        governor: &dl::Governor,
    ) -> Option<Result<dl::DemandAnswer>> {
        let (body, out_vars) = self.to_datalog_goal()?;
        let rules = relational_rules(program)?;
        let facts = relational_facts(db)?;
        Some(
            dl::query_demand_governed(&facts, &rules, &body, &out_vars, governor)
                .map_err(Error::from),
        )
    }

    /// Batched [`Query::answer_incremental`]: answers every query against
    /// the same specification, chunked over `std::thread::scope` workers.
    /// Each worker owns a disjoint input-ordered chunk of the output, so
    /// the result vector is byte-identical at any thread count; on failure
    /// the error of the *first* failing query in input order is returned
    /// (never a race winner's).
    pub fn answer_incremental_batch(
        queries: &[Query],
        spec: &GraphSpec,
        interner: &Interner,
        threads: usize,
    ) -> Result<Vec<IncrementalAnswer>> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let workers = threads.clamp(1, queries.len());
        let chunk = queries.len().div_ceil(workers);
        let mut slots: Vec<Option<Result<IncrementalAnswer>>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        std::thread::scope(|s| {
            for (qs, outs) in queries.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (q, slot) in qs.iter().zip(outs.iter_mut()) {
                        *slot = Some(q.answer_incremental(spec, interner));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot is written by exactly one worker"))
            .collect()
    }
}

/// An incremental query answer `(Q(B), F)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IncrementalAnswer {
    /// The answer is a plain finite set of tuples (no functional output).
    Tuples(FxHashSet<Vec<Cst>>),
    /// The answer has a functional output: per-cluster tuple sets, to be
    /// read together with the specification's successor mappings.
    PerCluster(FxHashMap<SpecNodeId, FxHashSet<Vec<Cst>>>),
}

impl IncrementalAnswer {
    /// Membership of a concrete answer `(t, ā)` (functional output) — walks
    /// `F` to find `t`'s cluster.
    pub fn holds_term(&self, spec: &GraphSpec, path: &[Func], tuple: &[Cst]) -> bool {
        match self {
            IncrementalAnswer::Tuples(_) => false,
            IncrementalAnswer::PerCluster(map) => spec
                .representative_of(path)
                .is_some_and(|rep| map.get(&rep).is_some_and(|s| s.contains(tuple))),
        }
    }

    /// Membership of a non-functional answer tuple.
    pub fn holds_tuple(&self, tuple: &[Cst]) -> bool {
        match self {
            IncrementalAnswer::Tuples(s) => s.contains(tuple),
            IncrementalAnswer::PerCluster(_) => false,
        }
    }

    /// Total number of tuples in the finite representation.
    pub fn size(&self) -> usize {
        match self {
            IncrementalAnswer::Tuples(s) => s.len(),
            IncrementalAnswer::PerCluster(m) => m.values().map(FxHashSet::len).sum(),
        }
    }

    /// Enumerates concrete answers `(term path, tuple)` in breadth-first
    /// (precedence `≺`) order, up to `limit` — materializing a finite prefix
    /// of a possibly infinite answer.
    ///
    /// Paths are tracked per *cluster*, not per path (keeping only the
    /// `limit` `≺`-smallest paths into each cluster per level), so the cost
    /// is polynomial even when the symbol alphabet branches widely.
    pub fn enumerate_terms(&self, spec: &GraphSpec, limit: usize) -> Vec<(Vec<Func>, Vec<Cst>)> {
        let IncrementalAnswer::PerCluster(map) = self else {
            return Vec::new();
        };
        if limit == 0 || map.is_empty() {
            return Vec::new();
        }
        // Clusters from which a matching cluster is reachable (pruning).
        let mut productive: FxHashSet<SpecNodeId> = map.keys().copied().collect();
        loop {
            let mut grew = false;
            for (&(from, _), &to) in &spec.successor {
                if productive.contains(&to) && productive.insert(from) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if !productive.contains(&spec.root()) {
            return Vec::new();
        }

        let mut out: Vec<(Vec<Func>, Vec<Cst>)> = Vec::new();
        // ≺-smallest `limit` paths reaching each cluster at the current
        // level.
        let mut per_node: FxHashMap<SpecNodeId, Vec<Vec<Func>>> = FxHashMap::default();
        per_node.insert(spec.root(), vec![vec![]]);
        let lex = |a: &Vec<Func>, b: &Vec<Func>| {
            let ra: Vec<u32> = a.iter().map(|f| spec.funcs.rank(*f)).collect();
            let rb: Vec<u32> = b.iter().map(|f| spec.funcs.rank(*f)).collect();
            ra.cmp(&rb)
        };
        // Depth bound: answers, if any remain, recur within one pass around
        // the finite graph.
        let max_level = spec.cluster_count() * (limit + 1) + spec.c + 2;
        for _level in 0..=max_level {
            // Emit this level's answers in ≺ order.
            let mut hits: Vec<(Vec<Func>, Vec<Cst>)> = Vec::new();
            for (node, paths) in &per_node {
                if let Some(tuples) = map.get(node) {
                    let mut sorted: Vec<&Vec<Cst>> = tuples.iter().collect();
                    sorted.sort_unstable();
                    for p in paths {
                        for t in &sorted {
                            hits.push((p.clone(), (*t).clone()));
                        }
                    }
                }
            }
            hits.sort_by(|(a, ta), (b, tb)| lex(a, b).then_with(|| ta.cmp(tb)));
            for h in hits {
                if out.len() >= limit {
                    return out;
                }
                out.push(h);
            }
            // Advance one level.
            let mut next: FxHashMap<SpecNodeId, Vec<Vec<Func>>> = FxHashMap::default();
            for (node, paths) in &per_node {
                for &f in spec.funcs.symbols() {
                    let to = spec.successor[&(*node, f)];
                    if !productive.contains(&to) {
                        continue;
                    }
                    let entry = next.entry(to).or_default();
                    for p in paths {
                        let mut q = p.clone();
                        q.push(f);
                        entry.push(q);
                    }
                }
            }
            for paths in next.values_mut() {
                paths.sort_by(|a, b| lex(a, b));
                paths.truncate(limit);
            }
            if next.is_empty() {
                break;
            }
            per_node = next;
        }
        out
    }
}

/// Where a compiled atom draws its candidate rows from.
enum QSource {
    /// A relational predicate: probed through the relation's indexes.
    Relational(Pred),
    /// A functional predicate at a ground term's representative cluster
    /// (`Some(path)`) or at the current evaluation cluster (`None`).
    Functional(Pred, Option<Vec<Func>>),
}

/// A key column resolved at probe time: a query constant or a register
/// bound by an earlier atom.
enum QSlot {
    Const(Cst),
    Reg(u32),
}

impl QSlot {
    #[inline]
    fn resolve(&self, regs: &[Cst]) -> Cst {
        match *self {
            QSlot::Const(c) => c,
            QSlot::Reg(r) => regs[r as usize],
        }
    }
}

/// Per-column action against a candidate row (mirrors the datalog
/// substrate's compiled scheme; see `fundb_datalog::program`).
enum QColOp {
    /// Row column must equal a query constant.
    CheckConst(u32, Cst),
    /// Row column must equal an already-bound register.
    CheckReg(u32, u32),
    /// Row column binds a fresh register.
    Load(u32, u32),
}

/// One compiled body atom: candidate source, probe signature/key over the
/// bound columns, and the per-column ops run on each candidate.
struct QAtom {
    source: QSource,
    arity: usize,
    /// Bitmask of columns bound before this atom runs (relational only).
    sig: u64,
    key: Vec<QSlot>,
    cols: Vec<QColOp>,
}

/// A query body compiled once to a register program, reused across every
/// cluster. Registers are numbered by first occurrence in written body
/// order (the atom order is *not* reordered here: candidate enumeration
/// order is part of the per-cluster evaluation contract).
struct CompiledBody {
    atoms: Vec<QAtom>,
    /// Register index of each output variable (validated queries bind all
    /// outputs in the body).
    out_regs: Vec<u32>,
    nregs: usize,
}

impl CompiledBody {
    fn compile(body: &[Atom], out_vars: &[Var]) -> Self {
        let mut regs: FxHashMap<Var, u32> = FxHashMap::default();
        // Variables bound by *earlier* atoms: only those may enter a probe
        // key. A within-atom repeat gets a CheckReg op (confirmed per row)
        // but its register holds nothing at probe time.
        let mut prebound: FxHashSet<Var> = FxHashSet::default();
        let mut atoms = Vec::with_capacity(body.len());
        for atom in body {
            let source = match atom {
                Atom::Relational { pred, .. } => QSource::Relational(*pred),
                Atom::Functional { pred, fterm, .. } => {
                    QSource::Functional(*pred, fterm.pure_path())
                }
            };
            let relational = matches!(source, QSource::Relational(_));
            let args = atom.args();
            assert!(
                !relational || args.len() <= 64,
                "relational atoms are limited to 64 columns (signature bitmask)"
            );
            let mut sig = 0u64;
            let mut key = Vec::new();
            let mut cols = Vec::with_capacity(args.len());
            for (i, t) in args.iter().enumerate() {
                let col = i as u32;
                match t {
                    NTerm::Const(c) => {
                        if relational {
                            sig |= 1 << i;
                            key.push(QSlot::Const(*c));
                        }
                        cols.push(QColOp::CheckConst(col, *c));
                    }
                    NTerm::Var(v) => match regs.get(v) {
                        Some(&r) => {
                            if relational && prebound.contains(v) {
                                sig |= 1 << i;
                                key.push(QSlot::Reg(r));
                            }
                            cols.push(QColOp::CheckReg(col, r));
                        }
                        None => {
                            let r = regs.len() as u32;
                            regs.insert(*v, r);
                            cols.push(QColOp::Load(col, r));
                        }
                    },
                }
            }
            for t in args {
                if let NTerm::Var(v) = t {
                    prebound.insert(*v);
                }
            }
            atoms.push(QAtom {
                source,
                arity: args.len(),
                sig,
                key,
                cols,
            });
        }
        // Invariant: `Query::validate` rejects queries whose output
        // variables do not occur in the body, so every output variable was
        // assigned a register while compiling the body atoms above.
        let out_regs = out_vars
            .iter()
            .map(|v| *regs.get(v).expect("outputs bound by validated query"))
            .collect();
        CompiledBody {
            atoms,
            out_regs,
            nregs: regs.len(),
        }
    }

    /// Evaluates at a cluster (or globally when `cluster` is `None`),
    /// returning the distinct bindings of the output variables.
    fn eval_at(&self, spec: &GraphSpec, cluster: Option<SpecNodeId>) -> FxHashSet<Vec<Cst>> {
        let mut out = FxHashSet::default();
        // Every register is written (Load) before it is read (CheckReg /
        // output), so a placeholder initialisation is safe and lets one
        // flat buffer serve the whole recursion — no per-probe maps.
        let mut regs = vec![Cst(Sym::PLACEHOLDER); self.nregs];
        self.eval_rec(spec, 0, cluster, &mut regs, &mut |regs| {
            let tuple: Vec<Cst> = self.out_regs.iter().map(|&r| regs[r as usize]).collect();
            out.insert(tuple);
        });
        out
    }

    fn eval_rec(
        &self,
        spec: &GraphSpec,
        depth: usize,
        cluster: Option<SpecNodeId>,
        regs: &mut [Cst],
        emit: &mut dyn FnMut(&[Cst]),
    ) {
        if depth == self.atoms.len() {
            emit(regs);
            return;
        }
        let ca = &self.atoms[depth];
        match &ca.source {
            QSource::Relational(pred) => {
                let Some(rel) = spec.nf.relation(*pred) else {
                    return;
                };
                if ca.sig == 0 {
                    for row in rel.rows() {
                        if row.len() == ca.arity && apply_cols(&ca.cols, row, regs) {
                            self.eval_rec(spec, depth + 1, cluster, regs, emit);
                        }
                    }
                    return;
                }
                // Resolve the key against the registers and probe; hash
                // buckets may collide, so the column ops re-confirm every
                // candidate.
                let key: Vec<Cst> = ca.key.iter().map(|s| s.resolve(regs)).collect();
                match rel.probe(ca.sig, &key) {
                    Probe::Index(ids) | Probe::Partial(ids) => {
                        for &id in ids {
                            let row = rel.row(RowId(id));
                            if row.len() == ca.arity && apply_cols(&ca.cols, row, regs) {
                                self.eval_rec(spec, depth + 1, cluster, regs, emit);
                            }
                        }
                    }
                    Probe::Scan => {
                        for row in rel.rows() {
                            if row.len() == ca.arity && apply_cols(&ca.cols, row, regs) {
                                self.eval_rec(spec, depth + 1, cluster, regs, emit);
                            }
                        }
                    }
                }
            }
            QSource::Functional(pred, path) => {
                let node = match path {
                    // Ground term: replaced by its representative (§5).
                    Some(p) => match spec.representative_of(p) {
                        Some(n) => n,
                        None => return,
                    },
                    // Invariant: a `None` path (functional *variable*) is
                    // only compiled for uniform queries, and those are
                    // always evaluated once per cluster with `Some(node)`.
                    None => cluster.expect("functional variable implies per-cluster evaluation"),
                };
                for (p, row) in spec.slice(node) {
                    if p == *pred && row.len() == ca.arity && apply_cols(&ca.cols, row, regs) {
                        self.eval_rec(spec, depth + 1, cluster, regs, emit);
                    }
                }
            }
        }
    }
}

/// Runs an atom's column ops against a candidate row. No unwinding on
/// failure: a register is always re-loaded before any later read.
#[inline]
fn apply_cols(cols: &[QColOp], row: &[Cst], regs: &mut [Cst]) -> bool {
    for op in cols {
        match *op {
            QColOp::CheckConst(c, k) => {
                if row[c as usize] != k {
                    return false;
                }
            }
            QColOp::CheckReg(c, r) => {
                if row[c as usize] != regs[r as usize] {
                    return false;
                }
            }
            QColOp::Load(c, r) => regs[r as usize] = row[c as usize],
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::Func;

    struct Meets {
        i: Interner,
        prog: Program,
        db: Database,
        meets: Pred,
        succ: Func,
        t: Var,
        x: Var,
        tony: Cst,
        jan: Cst,
    }

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    fn meets_setup() -> Meets {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("succ"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("tony")), Cst(i.intern("jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        Meets {
            i,
            prog,
            db,
            meets,
            succ,
            t,
            x,
            tony,
            jan,
        }
    }

    /// The paper's introductory query Q = {(t,x) : Meets(t,x)}: the
    /// incremental answer is finite and covers the infinite set of days.
    #[test]
    fn incremental_answer_for_meets() {
        let mut m = meets_setup();
        let mut engine = Engine::build(&m.prog, &m.db, &mut m.i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let q = Query {
            out_fvar: Some(m.t),
            out_nvars: vec![m.x],
            body: vec![fat(m.meets, FTerm::Var(m.t), vec![NTerm::Var(m.x)])],
        };
        assert!(q.is_uniform());
        let ans = q.answer_incremental(&spec, &m.i).unwrap();
        // Finite representation; infinite extension.
        assert!(ans.size() >= 2);
        for n in 0..30usize {
            let path = vec![m.succ; n];
            assert_eq!(ans.holds_term(&spec, &path, &[m.tony]), n % 2 == 0);
            assert_eq!(ans.holds_term(&spec, &path, &[m.jan]), n % 2 == 1);
        }
        // Enumeration yields concrete answers breadth-first.
        let first = ans.enumerate_terms(&spec, 4);
        assert_eq!(first.len(), 4);
        assert_eq!(first[0], (vec![], vec![m.tony]));
        assert_eq!(first[1], (vec![m.succ], vec![m.jan]));
    }

    /// Theorem 5.1: incremental and by-extension answers agree on uniform
    /// queries.
    #[test]
    fn incremental_agrees_with_extension() {
        let mut m = meets_setup();
        let mut engine = Engine::build(&m.prog, &m.db, &mut m.i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let q = Query {
            out_fvar: Some(m.t),
            out_nvars: vec![],
            body: vec![fat(m.meets, FTerm::Var(m.t), vec![NTerm::Const(m.jan)])],
        };
        let inc = q.answer_incremental(&spec, &m.i).unwrap();
        let (ext_spec, query_pred) = q.answer_by_extension(&m.prog, &m.db, &mut m.i).unwrap();
        for n in 0..25usize {
            let path = vec![m.succ; n];
            assert_eq!(
                inc.holds_term(&spec, &path, &[]),
                ext_spec.holds(query_pred, &path, &[]),
                "n={n}"
            );
        }
    }

    /// A query with no functional output projects ∃s.
    #[test]
    fn existential_projection() {
        let mut m = meets_setup();
        let mut engine = Engine::build(&m.prog, &m.db, &mut m.i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        // {x : ∃t Meets(t,x)} = {tony, jan}.
        let q = Query {
            out_fvar: None,
            out_nvars: vec![m.x],
            body: vec![fat(m.meets, FTerm::Var(m.t), vec![NTerm::Var(m.x)])],
        };
        let ans = q.answer_incremental(&spec, &m.i).unwrap();
        assert!(ans.holds_tuple(&[m.tony]));
        assert!(ans.holds_tuple(&[m.jan]));
        assert_eq!(ans.size(), 2);
    }

    /// Ground functional terms in queries are replaced by representatives.
    #[test]
    fn ground_terms_use_representatives() {
        let mut m = meets_setup();
        let mut engine = Engine::build(&m.prog, &m.db, &mut m.i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        // {x : Meets(succ(succ(succ(0))), x)} = {jan}.
        let q = Query {
            out_fvar: None,
            out_nvars: vec![m.x],
            body: vec![fat(
                m.meets,
                FTerm::from_path(&[m.succ, m.succ, m.succ]),
                vec![NTerm::Var(m.x)],
            )],
        };
        let ans = q.answer_incremental(&spec, &m.i).unwrap();
        assert!(ans.holds_tuple(&[m.jan]));
        assert!(!ans.holds_tuple(&[m.tony]));
    }

    /// Validation rejects queries with two functional variables or unbound
    /// outputs.
    #[test]
    fn validation_rejects_bad_queries() {
        let mut m = meets_setup();
        let s2 = Var(m.i.intern("t2"));
        let q = Query {
            out_fvar: None,
            out_nvars: vec![],
            body: vec![
                fat(m.meets, FTerm::Var(m.t), vec![NTerm::Var(m.x)]),
                fat(m.meets, FTerm::Var(s2), vec![NTerm::Var(m.x)]),
            ],
        };
        assert!(matches!(
            q.validate(&m.i),
            Err(Error::UnsupportedQuery { .. })
        ));
        let q2 = Query {
            out_fvar: None,
            out_nvars: vec![Var(m.i.intern("zz"))],
            body: vec![fat(m.meets, FTerm::Var(m.t), vec![NTerm::Var(m.x)])],
        };
        assert!(q2.validate(&m.i).is_err());
    }

    /// Non-uniform queries are rejected by the incremental path but work by
    /// extension.
    #[test]
    fn non_uniform_falls_back_to_extension() {
        let mut m = meets_setup();
        let mut engine = Engine::build(&m.prog, &m.db, &mut m.i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        // {x : Meets(succ(t), x)} — non-ground depth-1 term: not uniform.
        let q = Query {
            out_fvar: None,
            out_nvars: vec![m.x],
            body: vec![fat(
                m.meets,
                FTerm::Pure(m.succ, Box::new(FTerm::Var(m.t))),
                vec![NTerm::Var(m.x)],
            )],
        };
        assert!(!q.is_uniform());
        assert!(q.answer_incremental(&spec, &m.i).is_err());
        let (ext_spec, query_pred) = q.answer_by_extension(&m.prog, &m.db, &mut m.i).unwrap();
        // ∃t Meets(succ(t), x): both tony and jan qualify.
        assert!(ext_spec.holds_relational(query_pred, &[m.tony]));
        assert!(ext_spec.holds_relational(query_pred, &[m.jan]));
    }
}
