//! States of the least fixpoint (§3.1).
//!
//! Fixing a ground functional term `t`, the *slice* `L[t]` of the least
//! fixpoint is the set of tuples whose functional component is `t`; with the
//! functional component abstracted away it "behaves like a function-free
//! database" — a finite set of abstract atoms `P(ā)` over the constants of
//! `Z ∪ D`. Two terms are state-equivalent (`t₁ ∼ t₂`) iff their slices are
//! equal (§3.1). Since there are at most `2^gsize` distinct slices, the
//! equivalence has finite index (Lemma: `scope∼(L) ≤ 2^gsize`).
//!
//! [`State`] is a compact bitset over [`crate::gendb::AtomId`]s with
//! canonical equality and hashing, so states can serve directly as the keys
//! of the engine's memo table and as the `∼`-comparison of Algorithm Q.

use crate::gendb::AtomId;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A set of abstract atoms — one slice of the least fixpoint, or a seed for
/// the engine's uniform-subtree table.
///
/// Invariant: `words` never ends in a zero word, so `==`/`Hash` are
/// structural.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct State {
    words: Vec<u64>,
}

impl State {
    /// The empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an atom; returns `true` if it was absent.
    pub fn insert(&mut self, id: AtomId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        true
    }

    /// Membership test.
    pub fn contains(&self, id: AtomId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns `true` if anything changed.
    pub fn union_with(&mut self, other: &State) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &State) -> bool {
        self.words.iter().enumerate().all(|(i, w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Number of atoms in the state.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates the atom ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let b = word.trailing_zeros();
                word &= word - 1;
                Some(AtomId::from_index(wi * 64 + b as usize))
            })
        })
    }

    /// Restores the no-trailing-zero-words invariant after removals or
    /// resize; called internally by mutators that can strand zeros.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl Hash for State {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // words has no trailing zeros, so equal sets hash equally.
        self.words.hash(state);
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "State{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id.index())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AtomId> for State {
    fn from_iter<T: IntoIterator<Item = AtomId>>(iter: T) -> Self {
        let mut s = State::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

// `normalize` is currently only needed if a removal API is added; keep the
// compiler honest about it being intentionally private.
#[allow(dead_code)]
fn _assert_normalize_exists(s: &mut State) {
    s.normalize();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    #[test]
    fn insert_contains_len() {
        let mut s = State::new();
        assert!(s.insert(id(3)));
        assert!(!s.insert(id(3)));
        assert!(s.insert(id(130)));
        assert!(s.contains(id(3)));
        assert!(s.contains(id(130)));
        assert!(!s.contains(id(4)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn equality_is_structural_across_capacities() {
        let mut a = State::new();
        a.insert(id(1));
        let mut b = State::new();
        b.insert(id(200));
        b.insert(id(1));
        // b temporarily had more words; removing nothing — instead compare
        // a fresh state with the same single element.
        let mut c = State::new();
        c.insert(id(1));
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn union_reports_change() {
        let mut a = State::from_iter([id(1), id(2)]);
        let b = State::from_iter([id(2), id(3)]);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn subset_checks() {
        let a = State::from_iter([id(1), id(65)]);
        let b = State::from_iter([id(1), id(65), id(200)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(State::new().is_subset(&a));
    }

    #[test]
    fn iter_round_trips() {
        let ids = [id(0), id(63), id(64), id(127), id(128)];
        let s = State::from_iter(ids);
        let back: Vec<AtomId> = s.iter().collect();
        assert_eq!(back, ids);
    }

    #[test]
    fn hash_agrees_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let a = State::from_iter([id(5), id(70)]);
        let b = State::from_iter([id(70), id(5)]);
        let h = |s: &State| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }
}
