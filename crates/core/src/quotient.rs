//! Quotient models (§3.3).
//!
//! Collapsing congruent terms yields the *quotient interpretation* of
//! `Z ∧ D`: its universe consists of the congruence clusters plus the
//! non-functional constants, every non-constant function symbol is
//! interpreted as the finite successor mapping between clusters, and a
//! functional fact `P(t, ā)` is true iff `P(ā)` is in the slice of `t`'s
//! cluster. Proposition 3.2: this (non-Herbrand) interpretation is a model
//! of `Z ∧ D`, and it preserves the truth values of all atomic facts of the
//! least fixpoint.
//!
//! [`QuotientModel`] wraps a [`GraphSpec`] with the model-theoretic reading,
//! and [`QuotientModel::is_model_of`] checks Proposition 3.2 mechanically by
//! firing every compiled rule at every cluster and verifying that nothing
//! new is derivable — a strong internal consistency check used by the test
//! suite.

use crate::compile::{CompiledProgram, Loc};
use crate::error::Result;
use crate::graphspec::{GraphSpec, SpecNodeId};
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FxHashMap, Pred};

/// The quotient model `L≅` of a functional deductive database.
pub struct QuotientModel<'a> {
    spec: &'a GraphSpec,
}

impl<'a> QuotientModel<'a> {
    /// Wraps a graph specification.
    pub fn new(spec: &'a GraphSpec) -> Self {
        QuotientModel { spec }
    }

    /// The universe size: clusters (the constants are shared with the
    /// Herbrand side and not counted here).
    pub fn universe_size(&self) -> usize {
        self.spec.cluster_count()
    }

    /// Function symbol interpretation: `f(cluster)`.
    pub fn apply(&self, f: Func, cluster: SpecNodeId) -> SpecNodeId {
        self.spec.successor[&(cluster, f)]
    }

    /// Truth of `P(cluster, ā)` in the quotient model.
    pub fn check(&self, pred: Pred, cluster: SpecNodeId, args: &[Cst]) -> bool {
        self.spec
            .atoms
            .get(pred, args)
            .is_some_and(|id| self.spec.nodes[cluster.index()].state.contains(id))
    }

    /// Truth of a relational fact.
    pub fn check_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.spec.nf.contains(pred, args)
    }

    /// Verifies Proposition 3.2 ("the quotient interpretation is a model of
    /// Z ∧ D"): fires every compiled star rule at every cluster, and the
    /// fixed rules once, checking that no rule derives a fact the model does
    /// not already satisfy. Returns `Ok(true)` if the interpretation is
    /// closed (`Err` only if an evaluation budget or injected fault stopped
    /// a saturation early).
    pub fn is_model_of(&self, cp: &CompiledProgram) -> Result<bool> {
        // Fixed rules.
        let mut db = dl::Database::new();
        self.inject_fixed_and_nf(cp, &mut db);
        dl::evaluate(&mut db, &cp.fixed_rules)?;
        if !self.absorbed(cp, &db) {
            return Ok(false);
        }

        // Star rules at every cluster.
        for cluster in self.spec.node_ids() {
            let mut db = dl::Database::new();
            self.fill(cp, &mut db, cluster, None);
            for &f in self.spec.funcs.symbols() {
                self.fill(cp, &mut db, self.apply(f, cluster), Some(f));
            }
            self.inject_fixed_and_nf(cp, &mut db);
            dl::evaluate(&mut db, &cp.star_rules)?;
            if !self.absorbed_at(cp, &db, cluster) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn fill(
        &self,
        cp: &CompiledProgram,
        db: &mut dl::Database,
        cluster: SpecNodeId,
        child: Option<Func>,
    ) {
        let state = &self.spec.nodes[cluster.index()].state;
        for id in state.iter() {
            let (p, args) = self.spec.atoms.resolve(id);
            let tag = match child {
                None => cp.tag_of(p, Loc::Here),
                Some(f) => cp.tag_of(p, Loc::Child(f)),
            };
            if let Some(tag) = tag {
                db.insert(tag, args);
            }
        }
    }

    fn inject_fixed_and_nf(&self, cp: &CompiledProgram, db: &mut dl::Database) {
        for (p, n, tag) in cp.fixed_tags() {
            // Ground node n of the compile tree = the same path in the spec
            // tree; its representative is itself (depth ≤ c).
            let path = cp.tree.path(n);
            let rep = self
                .spec
                .representative_of(&path)
                .expect("ground rule terms are in the spec vocabulary");
            let state = &self.spec.nodes[rep.index()].state;
            for id in state.iter() {
                let (pp, args) = self.spec.atoms.resolve(id);
                if pp == p {
                    db.insert(tag, args);
                }
            }
        }
        for (p, rel) in self.spec.nf.iter() {
            for row in rel.rows() {
                db.insert(p, row);
            }
        }
    }

    /// Every fact in `db` is already satisfied by the model (global parts).
    fn absorbed(&self, cp: &CompiledProgram, db: &dl::Database) -> bool {
        for (tagged, rel) in db.iter() {
            match cp.untag(tagged) {
                Some((p, Loc::Fixed(n))) => {
                    let path = cp.tree.path(n);
                    let rep = self
                        .spec
                        .representative_of(&path)
                        .expect("ground rule terms are in the spec vocabulary");
                    for row in rel.rows() {
                        if !self.check(p, rep, row) {
                            return false;
                        }
                    }
                }
                Some(_) => {}
                None => {
                    for row in rel.rows() {
                        if !self.spec.nf.contains(tagged, row) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Every fact in `db` is satisfied, including here/child locations
    /// relative to `cluster`.
    fn absorbed_at(&self, cp: &CompiledProgram, db: &dl::Database, cluster: SpecNodeId) -> bool {
        if !self.absorbed(cp, db) {
            return false;
        }
        let mut succ: FxHashMap<Func, SpecNodeId> = FxHashMap::default();
        for &f in self.spec.funcs.symbols() {
            succ.insert(f, self.apply(f, cluster));
        }
        for (tagged, rel) in db.iter() {
            match cp.untag(tagged) {
                Some((p, Loc::Here)) => {
                    for row in rel.rows() {
                        if !self.check(p, cluster, row) {
                            return false;
                        }
                    }
                }
                Some((p, Loc::Child(f))) => {
                    for row in rel.rows() {
                        if !self.check(p, succ[&f], row) {
                            return false;
                        }
                    }
                }
                _ => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::{Interner, Var};

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    /// Proposition 3.2 on the Meets example: the quotient interpretation is
    /// a model.
    #[test]
    fn meets_quotient_is_a_model() {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("succ"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("tony")), Cst(i.intern("jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = crate::graphspec::GraphSpec::from_engine(&mut engine).unwrap();
        let model = QuotientModel::new(&spec);
        assert!(model.is_model_of(engine.compiled()).unwrap());

        // Atomic truth preservation: Meets alternates over clusters.
        let even_cluster = spec.representative_of(&[succ, succ]).unwrap();
        let odd_cluster = spec.representative_of(&[succ]).unwrap();
        assert!(model.check(meets, even_cluster, &[tony]));
        assert!(!model.check(meets, even_cluster, &[jan]));
        assert!(model.check(meets, odd_cluster, &[jan]));
        assert!(model.check_relational(next, &[tony, jan]));
    }

    /// A deliberately broken interpretation is rejected: dropping a fact
    /// from a cluster state violates model-hood.
    #[test]
    fn broken_interpretation_is_not_a_model() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(p, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(p, FTerm::Var(s), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(p, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let mut spec = crate::graphspec::GraphSpec::from_engine(&mut engine).unwrap();
        assert!(QuotientModel::new(&spec)
            .is_model_of(engine.compiled())
            .unwrap());
        // Break it: clear the state of the deep cluster.
        let deep = spec.representative_of(&[f]).unwrap();
        spec.nodes[deep.index()].state = crate::state::State::new();
        assert!(!QuotientModel::new(&spec)
            .is_model_of(engine.compiled())
            .unwrap());
    }
}
