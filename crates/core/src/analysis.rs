//! Finiteness (safety) analysis of least fixpoints.
//!
//! The approach the paper argues against — [RBS87] — detects *unsafe*
//! programs (infinite least fixpoints or answers) in order to disallow
//! them. With a graph specification in hand that detection becomes a simple
//! graph property, so we provide it both as a baseline and as a useful API:
//!
//! A term `t` has a non-empty slice iff its representative's state is
//! non-empty. The set of terms mapping onto a representative `u` is the set
//! of root-to-`u` walks in the successor graph; it is infinite exactly when
//! `u` is reachable from a node that lies on a cycle. Hence the least
//! fixpoint is finite iff no non-empty representative is reachable from a
//! cycle, and when finite, the number of functional facts is the (finite)
//! weighted path count.

use crate::graphspec::{GraphSpec, SpecNodeId};
use fundb_term::FxHashMap;

/// Verdict of the finiteness analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinitenessReport {
    /// Whether the least fixpoint is a finite set of facts.
    pub finite: bool,
    /// If infinite: a representative with a non-empty slice that infinitely
    /// many terms map onto.
    pub infinite_witness: Option<SpecNodeId>,
    /// If finite: the exact number of functional facts in the fixpoint
    /// (relational facts are always finite and not counted here).
    pub functional_fact_count: Option<u128>,
}

/// Analyzes a graph specification for finiteness of the underlying least
/// fixpoint.
pub fn analyze(spec: &GraphSpec) -> FinitenessReport {
    let n = spec.cluster_count();
    // Adjacency in dense index space.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for ((from, _f), to) in &spec.successor {
        adj[from.index()].push(to.index());
    }

    // Nodes on cycles: iterative DFS with colors (0 new, 1 on stack, 2 done).
    // A back edge u→v marks every node on the current stack from v to u as
    // cyclic.
    let mut color = vec![0u8; n];
    let mut on_cycle = vec![false; n];
    let mut stack_pos: FxHashMap<usize, usize> = FxHashMap::default();
    let mut stack: Vec<usize> = Vec::new();
    // Explicit DFS to avoid recursion depth issues.
    let mut call: Vec<(usize, usize)> = vec![(spec.root().index(), 0)];
    color[spec.root().index()] = 1;
    stack_pos.insert(spec.root().index(), 0);
    stack.push(spec.root().index());
    while let Some((u, i)) = call.pop() {
        if i < adj[u].len() {
            call.push((u, i + 1));
            let v = adj[u][i];
            match color[v] {
                0 => {
                    color[v] = 1;
                    stack_pos.insert(v, stack.len());
                    stack.push(v);
                    call.push((v, 0));
                }
                1 => {
                    // Back edge: everything from v's stack position on is
                    // cyclic.
                    let from = stack_pos[&v];
                    for &w in &stack[from..] {
                        on_cycle[w] = true;
                    }
                }
                _ => {}
            }
        } else {
            color[u] = 2;
            stack_pos.remove(&u);
            stack.pop();
        }
    }

    // Forward-reachable set from cyclic nodes.
    let mut infinite_preimage = on_cycle.clone();
    let mut work: Vec<usize> = (0..n).filter(|&u| on_cycle[u]).collect();
    while let Some(u) = work.pop() {
        for &v in &adj[u] {
            if !infinite_preimage[v] {
                infinite_preimage[v] = true;
                work.push(v);
            }
        }
    }

    let witness = spec
        .node_ids()
        .find(|u| infinite_preimage[u.index()] && !spec.nodes[u.index()].state.is_empty());
    if let Some(w) = witness {
        return FinitenessReport {
            finite: false,
            infinite_witness: Some(w),
            functional_fact_count: None,
        };
    }

    // Finite: every term with a non-empty slice maps to a node outside the
    // cycle-reachable set, and the walks to such nodes all stay within the
    // acyclic part, so they have length < n. Count facts = Σ over walks
    // (slice size of the endpoint), by breadth-first walk counting.
    let mut total: u128 = 0;
    let mut walks: Vec<(usize, u128)> = vec![(spec.root().index(), 1)];
    total += spec.nodes[spec.root().index()].state.len() as u128;
    for _ in 0..n {
        let mut next: FxHashMap<usize, u128> = FxHashMap::default();
        for (u, cnt) in walks.drain(..) {
            for &v in &adj[u] {
                if infinite_preimage[v] {
                    continue;
                }
                *next.entry(v).or_insert(0) += cnt;
            }
        }
        for (&v, &cnt) in &next {
            total += cnt * spec.nodes[v].state.len() as u128;
        }
        walks = next.into_iter().collect();
        if walks.is_empty() {
            break;
        }
    }
    FinitenessReport {
        finite: true,
        infinite_witness: None,
        functional_fact_count: Some(total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::{Func, Interner, Pred, Var};

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    #[test]
    fn infinite_fixpoint_detected() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(p, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(p, FTerm::Var(s), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(p, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = crate::graphspec::GraphSpec::from_engine(&mut engine).unwrap();
        let report = analyze(&spec);
        assert!(!report.finite);
        assert!(report.infinite_witness.is_some());
    }

    #[test]
    fn finite_fixpoint_counted_exactly() {
        // No recursion through function symbols: P holds at 0 and f(0)
        // only. The symbol g exists but never carries facts.
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        // P(s) → Q(f(s)): one step up, no recursion (Q does not feed P).
        prog.push(Rule::new(
            fat(q, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(p, FTerm::Var(s), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(p, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = crate::graphspec::GraphSpec::from_engine(&mut engine).unwrap();
        let report = analyze(&spec);
        assert!(report.finite, "witness: {:?}", report.infinite_witness);
        // Facts: P(0) and Q(f(0)).
        assert_eq!(report.functional_fact_count, Some(2));
    }

    #[test]
    fn empty_program_is_finite() {
        let mut i = Interner::new();
        let prog = Program::new();
        let db = Database::new();
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = crate::graphspec::GraphSpec::from_engine(&mut engine).unwrap();
        let report = analyze(&spec);
        assert!(report.finite);
        assert_eq!(report.functional_fact_count, Some(0));
    }
}
