//! The mixed→pure function symbol transformation (§2.4).
//!
//! "Take a term `g(s, z̄)` and a vector `ā` of non-functional constants
//! appearing in the database or in the rules. … Create a new unary function
//! symbol `f_ā` and a new instance of every rule `r` in Z where `g(s, z̄)` is
//! replaced by `f_ā(s)` and the occurrences of elements of `z̄` in `r` by the
//! corresponding elements of `ā`." (§2.4)
//!
//! For domain-independent rule sets this transformation is faithful: the
//! number and arity of predicates do not change, the number of new rules is
//! polynomial in the database size, and normality is preserved. The paper's
//! §3.4 list example shows it in action: `ext(s, x)` over `P(a), P(b)`
//! becomes the two unary symbols `exta` and `extb`.

use crate::error::Result;
use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule, Schema};
use fundb_term::{Cst, Func, FxHashMap, Interner, MixedSym, Var};

/// A program with only pure (unary) function symbols, plus the bookkeeping
/// of which unary symbol instantiates which mixed application.
#[derive(Clone, Debug)]
pub struct PureProgram {
    /// The transformed (still normal) rules.
    pub program: Program,
    /// The transformed database.
    pub db: Database,
    /// Schema re-inferred after the transformation (no mixed symbols).
    pub schema: Schema,
    /// `(g, ā) → f_ā` instantiation map.
    pub sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func>,
}

/// Applies the mixed→pure transformation to a normal program and database.
/// The `interner` receives the new unary symbol names (`g[a,b]`-style).
///
/// The transformation is database-dependent (it enumerates the constants of
/// rules ∪ database); adding constants later requires re-running it.
pub fn to_pure(program: &Program, db: &Database, interner: &mut Interner) -> Result<PureProgram> {
    let schema = Schema::infer(program, db, interner)?;
    let constants = schema.constants.clone();
    let mut mapper = SymMapper {
        map: FxHashMap::default(),
    };

    // --- Rules -----------------------------------------------------------
    let mut out_rules = Vec::new();
    let mut worklist: Vec<Rule> = program.rules.clone();
    worklist.reverse();
    while let Some(rule) = worklist.pop() {
        match find_action(&rule) {
            None => out_rules.push(rule),
            Some(MixedAction::Rewrite) => {
                worklist.push(rewrite_rule(&rule, &mut mapper, interner));
            }
            Some(MixedAction::Enumerate(vars)) => {
                // Instantiate each variable of the innermost mixed node with
                // every constant; the rewritten instances come back through
                // the worklist.
                let mut assignments: Vec<FxHashMap<Var, Cst>> = vec![FxHashMap::default()];
                for v in vars {
                    let mut next = Vec::with_capacity(assignments.len() * constants.len());
                    for a in &assignments {
                        for &c in &constants {
                            let mut a2 = a.clone();
                            a2.insert(v, c);
                            next.push(a2);
                        }
                    }
                    assignments = next;
                }
                for a in assignments.iter().rev() {
                    worklist.push(Rule::new(
                        rule.head.subst_nvars(a),
                        rule.body.iter().map(|b| b.subst_nvars(a)).collect(),
                    ));
                }
            }
        }
    }

    // --- Database --------------------------------------------------------
    let mut out_db = Database::new();
    for fact in &db.facts {
        let mut f = fact.clone();
        while atom_has_mixed(&f) {
            f = rewrite_atom(&f, &mut mapper, interner);
        }
        out_db.facts.push(f);
    }

    let out_prog = Program { rules: out_rules };
    let out_schema = Schema::infer(&out_prog, &out_db, interner)?;
    debug_assert!(out_schema.mixed_syms.is_empty());
    debug_assert!(out_prog.is_normal() || !program.is_normal());
    Ok(PureProgram {
        program: out_prog,
        db: out_db,
        schema: out_schema,
        sym_map: mapper.map,
    })
}

struct SymMapper {
    map: FxHashMap<(MixedSym, Box<[Cst]>), Func>,
}

impl SymMapper {
    fn func_for(&mut self, g: MixedSym, args: &[Cst], interner: &mut Interner) -> Func {
        if let Some(&f) = self.map.get(&(g, args.into())) {
            return f;
        }
        let mut name = interner.resolve(g.name).to_string();
        name.push('[');
        for (i, c) in args.iter().enumerate() {
            if i > 0 {
                name.push(',');
            }
            name.push_str(interner.resolve(c.sym()));
        }
        name.push(']');
        let f = Func(interner.intern(&name));
        self.map.insert((g, args.into()), f);
        f
    }
}

enum MixedAction {
    /// The innermost-leftmost mixed node has all-constant arguments: rewrite
    /// it directly.
    Rewrite,
    /// It has these variables: enumerate constants for them first.
    Enumerate(Vec<Var>),
}

/// Finds the innermost-leftmost mixed node across the rule's atoms.
fn find_action(rule: &Rule) -> Option<MixedAction> {
    for atom in std::iter::once(&rule.head).chain(&rule.body) {
        if let Some(ft) = atom.fterm() {
            if let Some(node) = innermost_mixed(ft) {
                let vars: Vec<Var> = match node {
                    FTerm::Mixed(_, _, nargs) => {
                        let mut vs = Vec::new();
                        for n in nargs {
                            if let NTerm::Var(v) = n {
                                if !vs.contains(v) {
                                    vs.push(*v);
                                }
                            }
                        }
                        vs
                    }
                    _ => unreachable!(),
                };
                return Some(if vars.is_empty() {
                    MixedAction::Rewrite
                } else {
                    MixedAction::Enumerate(vars)
                });
            }
        }
    }
    None
}

/// The innermost mixed node along the spine, if any.
fn innermost_mixed(ft: &FTerm) -> Option<&FTerm> {
    let mut cur = ft;
    let mut best = None;
    loop {
        match cur {
            FTerm::Zero | FTerm::Var(_) => return best,
            FTerm::Pure(_, t) => cur = t,
            FTerm::Mixed(_, t, _) => {
                best = Some(cur);
                cur = t;
            }
        }
    }
}

fn atom_has_mixed(atom: &Atom) -> bool {
    atom.fterm().is_some_and(|ft| !ft.is_pure())
}

/// Rewrites every mixed application with constant arguments into its unary
/// instantiation, innermost first (iterative — facts can be deep).
fn rewrite_fterm(ft: &FTerm, mapper: &mut SymMapper, interner: &mut Interner) -> FTerm {
    use crate::program::SpineStep;
    let (steps, end) = ft.decompose();
    let end = match end {
        FTerm::Zero => FTerm::Zero,
        FTerm::Var(v) => FTerm::Var(*v),
        _ => unreachable!("decompose ends at Zero or Var"),
    };
    FTerm::rebuild(
        end,
        steps.into_iter().rev().map(|s| match s {
            SpineStep::Pure(f) => SpineStep::Pure(f),
            SpineStep::Mixed(g, nargs) => {
                let consts: Option<Vec<Cst>> = nargs.iter().map(|n| n.as_const()).collect();
                match consts {
                    Some(cs) => SpineStep::Pure(mapper.func_for(g, &cs, interner)),
                    // Variables still present: left for a later enumeration
                    // pass.
                    None => SpineStep::Mixed(g, nargs),
                }
            }
        }),
    )
}

fn rewrite_atom(atom: &Atom, mapper: &mut SymMapper, interner: &mut Interner) -> Atom {
    match atom {
        Atom::Functional { pred, fterm, args } => Atom::Functional {
            pred: *pred,
            fterm: rewrite_fterm(fterm, mapper, interner),
            args: args.clone(),
        },
        Atom::Relational { .. } => atom.clone(),
    }
}

fn rewrite_rule(rule: &Rule, mapper: &mut SymMapper, interner: &mut Interner) -> Rule {
    Rule::new(
        rewrite_atom(&rule.head, mapper, interner),
        rule.body
            .iter()
            .map(|b| rewrite_atom(b, mapper, interner))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::Pred;

    /// Builds the paper's §3.4 list-membership example:
    ///
    /// ```text
    /// P(x) → Member(ext(0,x), x).
    /// P(y), Member(s,x) → Member(ext(s,y), y).
    /// P(y), Member(s,x) → Member(ext(s,y), x).
    /// D = { P(a), P(b) }
    /// ```
    pub(crate) fn lists_example(i: &mut Interner) -> (Program, Database) {
        let p = Pred(i.intern("P"));
        let member = Pred(i.intern("Member"));
        let ext = MixedSym {
            name: i.intern("ext"),
            extra_args: 1,
        };
        let s = Var(i.intern("s"));
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let a = Cst(i.intern("a"));
        let b = Cst(i.intern("b"));

        let pm = |v: Var| Atom::Relational {
            pred: p,
            args: vec![NTerm::Var(v)],
        };
        let member_at = |ft: FTerm, arg: NTerm| Atom::Functional {
            pred: member,
            fterm: ft,
            args: vec![arg],
        };

        let mut prog = Program::new();
        prog.push(Rule::new(
            member_at(
                FTerm::Mixed(ext, Box::new(FTerm::Zero), vec![NTerm::Var(x)]),
                NTerm::Var(x),
            ),
            vec![pm(x)],
        ));
        prog.push(Rule::new(
            member_at(
                FTerm::Mixed(ext, Box::new(FTerm::Var(s)), vec![NTerm::Var(y)]),
                NTerm::Var(y),
            ),
            vec![pm(y), member_at(FTerm::Var(s), NTerm::Var(x))],
        ));
        prog.push(Rule::new(
            member_at(
                FTerm::Mixed(ext, Box::new(FTerm::Var(s)), vec![NTerm::Var(y)]),
                NTerm::Var(x),
            ),
            vec![pm(y), member_at(FTerm::Var(s), NTerm::Var(x))],
        ));

        let mut db = Database::new();
        db.facts.push(Atom::Relational {
            pred: p,
            args: vec![NTerm::Const(a)],
        });
        db.facts.push(Atom::Relational {
            pred: p,
            args: vec![NTerm::Const(b)],
        });
        (prog, db)
    }

    #[test]
    fn lists_example_becomes_pure() {
        let mut i = Interner::new();
        let (prog, db) = lists_example(&mut i);
        let pure = to_pure(&prog, &db, &mut i).unwrap();
        // Two new symbols: ext[a] and ext[b] (the paper's exta/extb).
        assert_eq!(pure.sym_map.len(), 2);
        assert!(pure.schema.mixed_syms.is_empty());
        assert_eq!(pure.schema.pure_syms.len(), 2);
        // 3 original rules, the two with variable mixed args doubled:
        // 1×2 (first rule: ext(0,x), x∈{a,b}) + 2×2 = 6 rules.
        assert_eq!(pure.program.rules.len(), 6);
        assert!(pure.program.is_normal());
    }

    #[test]
    fn substitution_is_applied_throughout_the_rule() {
        // P(y), Member(s,x) → Member(ext(s,y), y): after instantiating y:=a,
        // *both* occurrences of y must be a.
        let mut i = Interner::new();
        let (prog, db) = lists_example(&mut i);
        let pure = to_pure(&prog, &db, &mut i).unwrap();
        for rule in &pure.program.rules {
            // No variable may appear in a rule if it was an enumerated mixed
            // argument; here simply check: any head functional symbol f=ext[c]
            // implies the head's non-functional argument of the second rule
            // family is the constant c or a body variable x.
            if let Some(FTerm::Pure(f, _)) = rule.head.fterm() {
                let name = i.resolve(f.sym());
                assert!(name == "ext[a]" || name == "ext[b]");
            }
        }
    }

    #[test]
    fn ground_facts_with_mixed_terms_are_rewritten() {
        let mut i = Interner::new();
        let member = Pred(i.intern("Member"));
        let ext = MixedSym {
            name: i.intern("ext"),
            extra_args: 1,
        };
        let a = Cst(i.intern("a"));
        let b = Cst(i.intern("b"));
        // Member(ext(ext(0,a),b), a).
        let t = FTerm::Mixed(
            ext,
            Box::new(FTerm::Mixed(
                ext,
                Box::new(FTerm::Zero),
                vec![NTerm::Const(a)],
            )),
            vec![NTerm::Const(b)],
        );
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: member,
            fterm: t,
            args: vec![NTerm::Const(a)],
        });
        let pure = to_pure(&Program::new(), &db, &mut i).unwrap();
        let ft = pure.db.facts[0].fterm().unwrap();
        assert!(ft.is_pure());
        assert_eq!(ft.depth(), 2);
        let path = ft.pure_path().unwrap();
        assert_eq!(i.resolve(path[0].sym()), "ext[a]");
        assert_eq!(i.resolve(path[1].sym()), "ext[b]");
    }

    #[test]
    fn pure_programs_pass_through_unchanged() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Pure(f, Box::new(FTerm::Var(s))),
                args: vec![],
            },
            vec![Atom::Functional {
                pred: p,
                fterm: FTerm::Var(s),
                args: vec![],
            }],
        ));
        let before = prog.clone();
        let pure = to_pure(&prog, &Database::new(), &mut i).unwrap();
        assert_eq!(pure.program, before);
        assert!(pure.sym_map.is_empty());
    }

    #[test]
    fn repeated_variable_in_mixed_args_instantiated_consistently() {
        // Q(s,x) → P(g(s,x,x)): the two x's must receive the same constant.
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let g = MixedSym {
            name: i.intern("g"),
            extra_args: 2,
        };
        let s = Var(i.intern("s"));
        let x = Var(i.intern("x"));
        let a = Cst(i.intern("a"));
        let b = Cst(i.intern("b"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Mixed(
                    g,
                    Box::new(FTerm::Var(s)),
                    vec![NTerm::Var(x), NTerm::Var(x)],
                ),
                args: vec![],
            },
            vec![Atom::Functional {
                pred: q,
                fterm: FTerm::Var(s),
                args: vec![NTerm::Var(x)],
            }],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: q,
            fterm: FTerm::Zero,
            args: vec![NTerm::Const(a)],
        });
        db.facts.push(Atom::Functional {
            pred: q,
            fterm: FTerm::Zero,
            args: vec![NTerm::Const(b)],
        });
        let pure = to_pure(&prog, &db, &mut i).unwrap();
        // Only diagonal instantiations g[a,a] and g[b,b].
        let names: Vec<String> = pure
            .sym_map
            .values()
            .map(|f| i.resolve(f.sym()).to_string())
            .collect();
        assert_eq!(pure.sym_map.len(), 2);
        assert!(names.contains(&"g[a,a]".to_string()));
        assert!(names.contains(&"g[b,b]".to_string()));
    }
}
