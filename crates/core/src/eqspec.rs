//! Equational specifications (§3.5).
//!
//! The *equational specification* of a least fixpoint `L` is a pair
//! `(B, R)`: the primary database `B` (as in the graph specification) plus a
//! finite set `R` of ground equations whose closure
//!
//! ```text
//! Cl(R) = closure of R under reflexivity, symmetry, transitivity and
//!         congruence ((t,t') ∈ Cl(R) ⇒ (f(t),f(t')) ∈ Cl(R))
//! ```
//!
//! equals the state congruence `≅`. `R` is obtained from Algorithm Q (§3.5):
//! `R(t₁, t₂)` iff `t₁` is `Active`, `t₂` is `Potential` and `t₁ ∼ t₂` —
//! i.e. each merge the algorithm performs contributes one equation.
//!
//! To verify `P(t₀, ā) ∈ L`, compute the finite set `T = {t : P(t, ā) ∈ B}`
//! and check whether `(t₀, t) ∈ Cl(R)` for some `t ∈ T` with the congruence
//! closure procedure [DST80] (`fundb-congruence`). "Although the entire
//! Cl(R) is infinite, the test needs to examine only finitely many terms,
//! because of the finiteness of B and R."

use crate::gendb::{AtomId, AtomInterner};
use crate::graphspec::GraphSpec;
use crate::state::State;
use fundb_congruence::CongruenceClosure;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FuncOrder, Interner, Pred};

/// An equational specification `(B, R)`.
#[derive(Clone)]
pub struct EqSpec {
    /// Depth of the largest ground term (`c`); terms of depth ≤ c are
    /// looked up directly in `B`.
    pub c: usize,
    /// Function symbols.
    pub funcs: FuncOrder,
    /// Primary database `B`: representative terms (as symbol paths) with
    /// their slices.
    pub primary: Vec<(Vec<Func>, State)>,
    /// The ground equations `R`.
    pub equations: Vec<(Vec<Func>, Vec<Func>)>,
    /// Abstract-atom vocabulary.
    pub atoms: AtomInterner,
    /// Relational facts.
    pub nf: dl::Database,
    /// Congruence closure over `R` (extended lazily by membership queries).
    cc: CongruenceClosure,
}

impl EqSpec {
    /// Extracts the equational specification from a graph specification:
    /// `B` is the same primary database; `R` is Algorithm Q's merge list.
    ///
    /// ```
    /// use fundb_parser::Workspace;
    ///
    /// let mut ws = Workspace::new();
    /// ws.parse("Even(t) -> Even(t+2). Even(0).").unwrap();
    /// let mut eq = ws.eq_spec().unwrap();
    /// assert!(ws.holds_eq(&mut eq, "Even(4)").unwrap());   // (2,4) ∈ Cl(R)
    /// assert!(!ws.holds_eq(&mut eq, "Even(3)").unwrap());
    /// ```
    pub fn from_graph(spec: &GraphSpec) -> EqSpec {
        let primary: Vec<(Vec<Func>, State)> = spec
            .nodes
            .iter()
            .map(|n| (spec.tree.path(n.term), n.state.clone()))
            .collect();
        let equations: Vec<(Vec<Func>, Vec<Func>)> = spec
            .merges
            .iter()
            .map(|(potential, rep)| {
                (
                    spec.tree.path(spec.nodes[rep.index()].term),
                    potential.clone(),
                )
            })
            .collect();
        let mut cc = CongruenceClosure::new();
        for (a, b) in &equations {
            cc.equate_paths(a, b);
        }
        EqSpec {
            c: spec.c,
            funcs: spec.funcs.clone(),
            primary,
            equations,
            atoms: spec.atoms.clone(),
            nf: spec.nf.clone(),
            cc,
        }
    }

    /// Number of equations (|R|).
    pub fn equation_count(&self) -> usize {
        self.equations.len()
    }

    /// Total number of tuples in `B`.
    pub fn primary_size(&self) -> usize {
        self.primary.iter().map(|(_, s)| s.len()).sum::<usize>() + self.nf.fact_count()
    }

    /// Yes-no membership `P(t₀, ā) ∈ L` via `(B, R)` and congruence closure.
    ///
    /// Takes `&mut self`: the closure's term universe is extended by the
    /// query term, exactly as §3.5 describes ("when we want to verify
    /// P(t0,ā) ∈ L, we compute the finite set T = {t : P(t,ā) ∈ B} … the
    /// last test is performed by the congruence closure procedure").
    pub fn holds(&mut self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(id) = self.atoms.get(pred, args) else {
            return false;
        };
        if path.len() <= self.c {
            // Shallow terms are singleton clusters: direct lookup.
            return self
                .primary
                .iter()
                .any(|(t, s)| t == path && s.contains(id));
        }
        // T = {t : P(t, ā) ∈ B}, deep representatives only.
        let candidates: Vec<Vec<Func>> = self
            .primary
            .iter()
            .filter(|(t, s)| t.len() > self.c && s.contains(id))
            .map(|(t, _)| t.clone())
            .collect();
        let q = self.cc.term(path);
        candidates.iter().any(|t| {
            let tn = self.cc.term(t);
            self.cc.congruent(q, tn)
        })
    }

    /// Yes-no membership for a relational tuple.
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.nf.contains(pred, args)
    }

    /// Drops equations that are congruence consequences of the remaining
    /// ones, returning the number removed. Algorithm Q emits one equation
    /// per merged potential term, which is often redundant — e.g. once
    /// `a ≅ aa` is known, `ab ≅ aab` follows by congruence. (The paper's
    /// §3.6 remark that "techniques for optimizing the database C are also
    /// necessary", applied to `R`.)
    ///
    /// Greedy quadratic sweep: an equation is removed if the closure of the
    /// others already relates its sides. Membership answers are unchanged
    /// (the closure is identical).
    pub fn minimize_equations(&mut self) -> usize {
        let original = self.equations.clone();
        let mut kept: Vec<(Vec<Func>, Vec<Func>)> = Vec::with_capacity(original.len());
        for (i, (a, b)) in original.iter().enumerate() {
            // Closure of everything except equation i (kept ∪ not-yet-seen).
            let mut cc = CongruenceClosure::new();
            for (j, (x, y)) in original.iter().enumerate() {
                if j != i && (j > i || kept.iter().any(|(kx, ky)| kx == x && ky == y)) {
                    cc.equate_paths(x, y);
                }
            }
            if !cc.congruent_paths(a, b) {
                kept.push((a.clone(), b.clone()));
            }
        }
        let removed = self.equations.len() - kept.len();
        if removed > 0 {
            self.equations = kept;
            let mut cc = CongruenceClosure::new();
            for (a, b) in &self.equations {
                cc.equate_paths(a, b);
            }
            self.cc = cc;
        }
        removed
    }

    /// Whether two ground terms are congruent under `Cl(R)` — the raw
    /// congruence test of §3.5's examples.
    pub fn congruent(&mut self, a: &[Func], b: &[Func]) -> bool {
        self.cc.congruent_paths(a, b)
    }

    /// The congruence closure over `R`, for the serving layer's freeze.
    pub(crate) fn closure(&self) -> &CongruenceClosure {
        &self.cc
    }

    /// Renders `R` deterministically.
    pub fn render_equations(&self, interner: &Interner) -> Vec<String> {
        let show = |p: &[Func]| {
            let mut s = String::new();
            for f in p.iter().rev() {
                s.push_str(interner.resolve(f.sym()));
                s.push('(');
            }
            s.push('0');
            for _ in p {
                s.push(')');
            }
            s
        };
        let mut out: Vec<String> = self
            .equations
            .iter()
            .map(|(a, b)| format!("{} == {}", show(a), show(b)))
            .collect();
        out.sort_unstable();
        out
    }

    /// The slice atoms of `B` for a representative path, if present.
    pub fn slice_of(&self, path: &[Func]) -> Option<impl Iterator<Item = AtomId> + '_> {
        self.primary
            .iter()
            .find(|(t, _)| t == path)
            .map(|(_, s)| s.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::Var;

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    /// §3.5's worked example: D = {Even(0)}, Even(t) → Even(t+2),
    /// B = D and R = {(0,2)} — and the membership tests from the paper:
    /// Even(4) ∈ L (via (0,4) ∈ Cl(R)) but Even(3) ∉ L ((0,3) ∉ Cl(R)).
    #[test]
    fn even_example_matches_paper() {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let mut eq = EqSpec::from_graph(&spec);

        // Membership mirrors the paper's tests.
        assert!(eq.holds(even, &[], &[]));
        assert!(eq.holds(even, &[succ; 4], &[]));
        assert!(!eq.holds(even, &[succ; 3], &[]));
        assert!(eq.holds(even, &vec![succ; 100], &[]));
        assert!(!eq.holds(even, &vec![succ; 101], &[]));

        // The congruence relates exactly the pairs of equal parity among
        // deep terms: (1,3) ∈ Cl(R) and (0,3) ∉ Cl(R), as in the paper.
        // Note one presentational difference: the paper's §3.5 narrative
        // uses the temporal-rules improvement of footnote 3 (potentials
        // start at depth c), giving R = {(0,2)} and hence (0,4) ∈ Cl(R);
        // the general Algorithm Q implemented here starts at depth c+1, so
        // the congruence never relates the shallow term 0 to deep terms —
        // membership answers are identical either way (Even(0) is looked up
        // directly in B). The temporal crate reproduces the paper's exact
        // R = {(0,2)}.
        assert!(eq.congruent(&[succ; 1], &[succ; 3]));
        assert!(!eq.congruent(&[succ; 0], &[succ; 3]));
        assert!(eq.congruent(&[succ; 2], &[succ; 4]));
        assert!(eq.congruent(&[succ; 2], &vec![succ; 100]));
        assert!(!eq.congruent(&[succ; 2], &[succ; 5]));
    }

    /// Equational and graph specifications answer identically.
    #[test]
    fn eqspec_agrees_with_graphspec() {
        let mut i = Interner::new();
        let a = Pred(i.intern("A"));
        let b = Pred(i.intern("B"));
        let f = Func(i.intern("f"));
        let g = Func(i.intern("g"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Var(s), vec![])],
        ));
        prog.push(Rule::new(
            fat(b, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Var(s), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let mut eq = EqSpec::from_graph(&spec);

        let mut paths: Vec<Vec<Func>> = vec![vec![]];
        let mut frontier: Vec<Vec<Func>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for p in &frontier {
                for &sym in &[f, g] {
                    let mut q = p.clone();
                    q.push(sym);
                    next.push(q);
                }
            }
            paths.extend(next.iter().cloned());
            frontier = next;
        }
        for path in &paths {
            for pred in [a, b] {
                assert_eq!(
                    eq.holds(pred, path, &[]),
                    spec.holds(pred, path, &[]),
                    "pred {pred:?} path {path:?}"
                );
            }
        }
    }

    #[test]
    fn equations_render() {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("s"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let eq = EqSpec::from_graph(&spec);
        let lines = eq.render_equations(&i);
        assert!(!lines.is_empty());
        assert!(lines.iter().all(|l| l.contains("==")));
    }
}
