//! The generalized database and the data-complexity parameters of §2.5.
//!
//! For a database `D` and a domain-independent rule set `Z`, the paper's
//! *generalized database* `B` is the set of all possible tuples over the
//! predicates of `Z ∪ D` built from the ground terms appearing in `Z ∪ D`.
//! Its size `gsize` is polynomial in the size of `D` (at most
//! `(s+1)·n^(k+1)`) and is the size measure used throughout the complexity
//! section.
//!
//! [`AtomInterner`] assigns dense ids to *abstract atoms* — tuples with the
//! functional component abstracted away — which the engine's [`crate::State`]
//! bitsets range over. [`DataParams`] reports the parameters `s, k, d, c, m`
//! and the bounds of §3.1–§3.2.

use crate::program::Schema;
use fundb_term::{Cst, FxHashMap, Interner, Pred};
use std::fmt;

/// Dense id of an abstract atom `P(ā)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(u32);

impl AtomId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        AtomId(u32::try_from(i).expect("atom id overflow"))
    }
}

impl fmt::Debug for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Interner of abstract atoms `(P, ā)`.
#[derive(Clone, Default)]
pub struct AtomInterner {
    map: FxHashMap<(Pred, Box<[Cst]>), AtomId>,
    list: Vec<(Pred, Box<[Cst]>)>,
}

impl AtomInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an abstract atom.
    pub fn intern(&mut self, pred: Pred, args: &[Cst]) -> AtomId {
        if let Some(&id) = self.map.get(&(pred, args.into())) {
            return id;
        }
        let id = AtomId::from_index(self.list.len());
        self.map.insert((pred, args.into()), id);
        self.list.push((pred, args.into()));
        id
    }

    /// Looks up an abstract atom without interning.
    pub fn get(&self, pred: Pred, args: &[Cst]) -> Option<AtomId> {
        self.map.get(&(pred, args.into())).copied()
    }

    /// Resolves an id.
    pub fn resolve(&self, id: AtomId) -> (Pred, &[Cst]) {
        let (p, args) = &self.list[id.index()];
        (*p, args)
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Iterates all interned atoms as `(id, pred, args)`.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, Pred, &[Cst])> {
        self.list
            .iter()
            .enumerate()
            .map(|(i, (p, args))| (AtomId::from_index(i), *p, &args[..]))
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Renders an atom id for diagnostics.
    pub fn display(&self, id: AtomId, interner: &Interner) -> String {
        let (p, args) = self.resolve(id);
        let args = args
            .iter()
            .map(|c| interner.resolve(c.sym()))
            .collect::<Vec<_>>()
            .join(",");
        format!("{}({})", interner.resolve(p.sym()), args)
    }
}

/// The data-complexity parameters of §2.5 together with the §3.1–§3.2 scope
/// bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataParams {
    /// Number of predicates (`s`).
    pub s: usize,
    /// Maximal number of non-functional arguments of a predicate (`k`;
    /// functional position excluded).
    pub k: usize,
    /// Number of distinct non-functional constants (`d`).
    pub d: usize,
    /// Depth of the largest ground functional term (`c`).
    pub c: usize,
    /// Number of successors of a state (`m`): the number of pure function
    /// symbols after the mixed→pure transformation.
    pub m: usize,
    /// Size of the generalized database: the number of possible abstract
    /// atoms, `Σ_P d^extra(P)`.
    pub gsize: u128,
}

impl DataParams {
    /// Computes the parameters from a (pure) schema.
    pub fn of(schema: &Schema) -> DataParams {
        let d = schema.constants.len();
        let mut gsize: u128 = 0;
        let mut k = 0usize;
        for sig in schema.sigs.values() {
            k = k.max(sig.extra);
            gsize = gsize.saturating_add((d.max(1) as u128).saturating_pow(sig.extra as u32));
        }
        DataParams {
            s: schema.sigs.len(),
            k,
            d,
            c: schema.max_ground_depth,
            m: schema.pure_syms.len(),
            gsize,
        }
    }

    /// The §3.1 bound `scope∼(L) ≤ 2^gsize` (saturating).
    pub fn equivalence_scope_bound(&self) -> u128 {
        if self.gsize >= 127 {
            u128::MAX
        } else {
            1u128 << self.gsize
        }
    }

    /// The Lemma 3.2 bound `scope≅(L) ≤ 1 + m·s·2^gsize` (saturating).
    pub fn congruence_scope_bound(&self) -> u128 {
        let pow = self.equivalence_scope_bound();
        (self.m as u128)
            .saturating_mul(self.s as u128)
            .saturating_mul(pow)
            .saturating_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Database, Program};

    #[test]
    fn intern_and_resolve() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let b = Cst(i.intern("b"));
        let mut at = AtomInterner::new();
        let id1 = at.intern(p, &[a, b]);
        let id2 = at.intern(p, &[a, b]);
        let id3 = at.intern(p, &[b, a]);
        assert_eq!(id1, id2);
        assert_ne!(id1, id3);
        assert_eq!(at.resolve(id1), (p, &[a, b][..]));
        assert_eq!(at.display(id3, &i), "P(b,a)");
        assert_eq!(at.len(), 2);
    }

    #[test]
    fn params_of_empty_schema() {
        let i = Interner::new();
        let schema = Schema::infer(&Program::new(), &Database::new(), &i).unwrap();
        let p = DataParams::of(&schema);
        assert_eq!(p.s, 0);
        assert_eq!(p.gsize, 0);
        assert_eq!(p.equivalence_scope_bound(), 1);
        assert_eq!(p.congruence_scope_bound(), 1);
    }

    #[test]
    fn gsize_counts_abstract_atoms() {
        // Two predicates: functional P with 1 extra arg, relational R with
        // 2 args; constants {a, b} ⇒ gsize = 2 + 4 = 6.
        use crate::program::{Atom, FTerm, NTerm, Rule};
        use fundb_term::Var;
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let r = Pred(i.intern("R"));
        let s = Var(i.intern("s"));
        let a = Cst(i.intern("a"));
        let b = Cst(i.intern("b"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Var(s),
                args: vec![NTerm::Const(a)],
            },
            vec![Atom::Functional {
                pred: p,
                fterm: FTerm::Var(s),
                args: vec![NTerm::Const(b)],
            }],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Relational {
            pred: r,
            args: vec![NTerm::Const(a), NTerm::Const(b)],
        });
        let schema = Schema::infer(&prog, &db, &i).unwrap();
        let params = DataParams::of(&schema);
        assert_eq!(params.s, 2);
        assert_eq!(params.k, 2);
        assert_eq!(params.d, 2);
        assert_eq!(params.gsize, 6);
        assert_eq!(params.equivalence_scope_bound(), 64);
    }
}
