//! Rule normalization (§2.4 and the paper's Appendix).
//!
//! A rule is *normal* when it contains at most one functional variable and
//! every non-ground functional term has depth ≤ 1. "For every functional
//! rule, there is a set of normal rules (obtained through the introduction of
//! additional predicates and rules) which is equivalent to the original set
//! with respect to the original predicates." (§2.4)
//!
//! The pass applies three rewrites until every rule is normal:
//!
//! 1. **Projection** of extra functional variables: body atoms sharing a
//!    functional variable other than the head's are replaced by a fresh
//!    relational predicate holding their non-functional join variables,
//!    defined by an auxiliary rule (which is then normalized recursively).
//! 2. **Head splitting**: a head `P(outer(w), x̄)` with non-ground `w` of
//!    depth ≥ 1 becomes `body → P↑(w, ȳ)` and `P↑(u, ȳ) → P(outer(u), x̄)`,
//!    peeling one application per step — exactly the Appendix construction.
//! 3. **Body peeling**: a body atom `P(outer(w), x̄)` with non-ground deep
//!    term gets a cached *peel* predicate with the single defining rule
//!    `P(outer(u), z̄) → P▽(u, z̄')`, and the atom is replaced by
//!    `P▽(w, …)`.
//!
//! The transformation is database-independent and preserves
//! range-restrictedness, hence domain independence (§2.4).

use crate::program::{Atom, FTerm, NTerm, Program, Rule};
use fundb_term::{FxHashMap, FxHashSet, Interner, Pred, Var};

/// Key identifying the outermost application of a functional term.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum OuterKey {
    Pure(fundb_term::Func),
    Mixed(fundb_term::MixedSym),
}

/// Normalizes a program. Fresh auxiliary predicate and variable names are
/// interned into `interner`. The result is equivalent to the input with
/// respect to the input's predicates.
pub fn normalize(program: &Program, interner: &mut Interner) -> Program {
    let mut out = Program::new();
    let mut peel_cache: FxHashMap<(Pred, OuterKey), Pred> = FxHashMap::default();
    let mut worklist: Vec<Rule> = program.rules.clone();
    // Deterministic processing order: FIFO.
    worklist.reverse();

    while let Some(rule) = worklist.pop() {
        if let Some(new_rules) = project_extra_fvars(&rule, interner) {
            for r in new_rules.into_iter().rev() {
                worklist.push(r);
            }
            continue;
        }
        if let Some(new_rules) = split_deep_head(&rule, interner) {
            for r in new_rules.into_iter().rev() {
                worklist.push(r);
            }
            continue;
        }
        if let Some(new_rules) = peel_deep_body(&rule, interner, &mut peel_cache) {
            for r in new_rules.into_iter().rev() {
                worklist.push(r);
            }
            continue;
        }
        debug_assert!(rule.is_normal());
        out.push(rule);
    }
    out
}

/// Non-functional variables of an atom sequence, deduplicated in order.
fn nvars_of(atoms: &[&Atom]) -> Vec<Var> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for atom in atoms {
        for v in atom.nvars() {
            if seen.insert(v) {
                out.push(v);
            }
        }
    }
    out
}

/// Rewrite 1: if the rule has more than one functional variable, project one
/// non-head group away. Returns the replacement rules, or `None` if nothing
/// to do.
fn project_extra_fvars(rule: &Rule, interner: &mut Interner) -> Option<Vec<Rule>> {
    let fvars = rule.functional_vars();
    if fvars.len() <= 1 {
        return None;
    }
    let main = rule.head.spine_var();
    // Pick the first functional variable that is not the head's.
    let victim = *fvars.iter().find(|v| Some(**v) != main)?;

    let (group, rest): (Vec<&Atom>, Vec<&Atom>) = rule
        .body
        .iter()
        .partition(|a| a.spine_var() == Some(victim));
    debug_assert!(!group.is_empty(), "functional variable must occur in body");

    let join_vars = nvars_of(&group);
    let aux = Pred(interner.fresh("Proj"));
    let aux_rule = Rule::new(
        Atom::Relational {
            pred: aux,
            args: join_vars.iter().map(|&v| NTerm::Var(v)).collect(),
        },
        group.into_iter().cloned().collect(),
    );
    let mut new_body: Vec<Atom> = rest.into_iter().cloned().collect();
    new_body.push(Atom::Relational {
        pred: aux,
        args: join_vars.iter().map(|&v| NTerm::Var(v)).collect(),
    });
    Some(vec![aux_rule, Rule::new(rule.head.clone(), new_body)])
}

/// Rewrite 2: head functional term non-ground with depth ≥ 2 — peel one
/// outer application into a follow-up rule (the Appendix construction).
fn split_deep_head(rule: &Rule, interner: &mut Interner) -> Option<Vec<Rule>> {
    let Atom::Functional { pred, fterm, args } = &rule.head else {
        return None;
    };
    if fterm.is_ground() || fterm.depth() < 2 {
        return None;
    }
    let (outer_builder, inner, outer_nterms): (OuterBuilder, FTerm, Vec<NTerm>) = match fterm {
        FTerm::Pure(f, t) => (OuterBuilder::Pure(*f), (**t).clone(), vec![]),
        FTerm::Mixed(g, t, nargs) => (
            OuterBuilder::Mixed(*g, nargs.clone()),
            (**t).clone(),
            nargs.clone(),
        ),
        FTerm::Zero | FTerm::Var(_) => unreachable!("depth ≥ 2 term has an application"),
    };

    // Variables the follow-up rule needs: head args + outer's own
    // non-functional args.
    let mut carried = Vec::new();
    let mut seen = FxHashSet::default();
    for nt in args.iter().chain(outer_nterms.iter()) {
        if let NTerm::Var(v) = nt {
            if seen.insert(*v) {
                carried.push(*v);
            }
        }
    }

    let up = Pred(interner.fresh(&format!("{}Up", interner_name(interner, *pred))));
    let u = Var(interner.fresh("u@"));

    // r1: body → P↑(w, carried)
    let r1 = Rule::new(
        Atom::Functional {
            pred: up,
            fterm: inner,
            args: carried.iter().map(|&v| NTerm::Var(v)).collect(),
        },
        rule.body.clone(),
    );
    // r2: P↑(u, carried) → P(outer(u), args)
    let rebuilt = match outer_builder {
        OuterBuilder::Pure(f) => FTerm::Pure(f, Box::new(FTerm::Var(u))),
        OuterBuilder::Mixed(g, nargs) => FTerm::Mixed(g, Box::new(FTerm::Var(u)), nargs),
    };
    let r2 = Rule::new(
        Atom::Functional {
            pred: *pred,
            fterm: rebuilt,
            args: args.clone(),
        },
        vec![Atom::Functional {
            pred: up,
            fterm: FTerm::Var(u),
            args: carried.iter().map(|&v| NTerm::Var(v)).collect(),
        }],
    );
    Some(vec![r1, r2])
}

enum OuterBuilder {
    Pure(fundb_term::Func),
    Mixed(fundb_term::MixedSym, Vec<NTerm>),
}

/// Rewrite 3: some body atom has a non-ground functional term of depth ≥ 2 —
/// replace it via a cached peel predicate.
fn peel_deep_body(
    rule: &Rule,
    interner: &mut Interner,
    cache: &mut FxHashMap<(Pred, OuterKey), Pred>,
) -> Option<Vec<Rule>> {
    let idx = rule.body.iter().position(|a| {
        a.fterm()
            .is_some_and(|ft| !ft.is_ground() && ft.depth() >= 2)
    })?;
    let Atom::Functional { pred, fterm, args } = &rule.body[idx] else {
        unreachable!("position() matched a functional atom");
    };

    let (key, inner, outer_nterms) = match fterm {
        FTerm::Pure(f, t) => (OuterKey::Pure(*f), (**t).clone(), vec![]),
        FTerm::Mixed(g, t, nargs) => (OuterKey::Mixed(*g), (**t).clone(), nargs.clone()),
        FTerm::Zero | FTerm::Var(_) => unreachable!("depth ≥ 2 term has an application"),
    };

    let mut new_rules = Vec::new();
    let peel = match cache.get(&(*pred, key)) {
        Some(&p) => p,
        None => {
            let p = Pred(interner.fresh(&format!("{}Dn", interner_name(interner, *pred))));
            cache.insert((*pred, key), p);
            // Defining rule: P(outer(u), z̄) → P▽(u, ȳ z̄) with fresh
            // generic variables.
            let u = Var(interner.fresh("u@"));
            let generic = |n: usize, interner: &mut Interner| -> Vec<Var> {
                (0..n).map(|_| Var(interner.fresh("z@"))).collect()
            };
            let arg_vars = generic(args.len(), interner);
            let (body_ft, extra_vars): (FTerm, Vec<Var>) = match key {
                OuterKey::Pure(f) => (FTerm::Pure(f, Box::new(FTerm::Var(u))), vec![]),
                OuterKey::Mixed(g) => {
                    let ys = generic(outer_nterms.len(), interner);
                    (
                        FTerm::Mixed(
                            g,
                            Box::new(FTerm::Var(u)),
                            ys.iter().map(|&v| NTerm::Var(v)).collect(),
                        ),
                        ys,
                    )
                }
            };
            let mut head_args: Vec<NTerm> = extra_vars.iter().map(|&v| NTerm::Var(v)).collect();
            head_args.extend(arg_vars.iter().map(|&v| NTerm::Var(v)));
            let def = Rule::new(
                Atom::Functional {
                    pred: p,
                    fterm: FTerm::Var(u),
                    args: head_args,
                },
                vec![Atom::Functional {
                    pred: *pred,
                    fterm: body_ft,
                    args: arg_vars.iter().map(|&v| NTerm::Var(v)).collect(),
                }],
            );
            new_rules.push(def);
            p
        }
    };

    // Replace the atom: P▽(inner, outer_nterms ++ args).
    let mut new_args = outer_nterms;
    new_args.extend(args.iter().cloned());
    let mut body = rule.body.clone();
    body[idx] = Atom::Functional {
        pred: peel,
        fterm: inner,
        args: new_args,
    };
    new_rules.push(Rule::new(rule.head.clone(), body));
    Some(new_rules)
}

fn interner_name(interner: &Interner, p: Pred) -> String {
    interner.resolve(p.sym()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domaincheck;
    use crate::program::{Database, Schema};
    use fundb_term::{Func, MixedSym};

    struct Fx {
        i: Interner,
        p: Pred,
        q: Pred,
        w: Pred,
        f: Func,
        g: MixedSym,
        s: Var,
        s2: Var,
        x: Var,
    }

    fn fx() -> Fx {
        let mut i = Interner::new();
        Fx {
            p: Pred(i.intern("P")),
            q: Pred(i.intern("Q")),
            w: Pred(i.intern("W")),
            f: Func(i.intern("f")),
            g: MixedSym {
                name: i.intern("g"),
                extra_args: 1,
            },
            s: Var(i.intern("s")),
            s2: Var(i.intern("s2")),
            x: Var(i.intern("x")),
            i,
        }
    }

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    #[test]
    fn normal_rules_pass_through() {
        let mut fx = fx();
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(fx.p, FTerm::Pure(fx.f, Box::new(FTerm::Var(fx.s))), vec![]),
            vec![fat(fx.p, FTerm::Var(fx.s), vec![])],
        ));
        let before = prog.clone();
        let normalized = normalize(&prog, &mut fx.i);
        assert_eq!(normalized, before);
    }

    /// The Appendix example shape: `P(s), W(x) → P(g(f(s),x))` becomes a set
    /// of normal rules over fresh predicates.
    #[test]
    fn appendix_example_normalizes() {
        let mut fx = fx();
        let deep = FTerm::Mixed(
            fx.g,
            Box::new(FTerm::Pure(fx.f, Box::new(FTerm::Var(fx.s)))),
            vec![NTerm::Var(fx.x)],
        );
        let rule = Rule::new(
            fat(fx.p, deep, vec![]),
            vec![
                fat(fx.p, FTerm::Var(fx.s), vec![]),
                Atom::Relational {
                    pred: fx.w,
                    args: vec![NTerm::Var(fx.x)],
                },
            ],
        );
        let mut prog = Program::new();
        prog.push(rule);
        let normalized = normalize(&prog, &mut fx.i);
        assert!(normalized.is_normal());
        assert!(normalized.rules.len() >= 2);
        // Normalization preserves range-restrictedness (§2.4).
        domaincheck::check_program(&normalized, &fx.i).unwrap();
        // And the result passes schema validation.
        Schema::infer(&normalized, &Database::new(), &fx.i).unwrap();
    }

    #[test]
    fn deep_body_terms_are_peeled() {
        let mut fx = fx();
        // P(f(f(s))) → Q(s): a backward rule with a deep body term.
        let rule = Rule::new(
            fat(fx.q, FTerm::Var(fx.s), vec![]),
            vec![fat(
                fx.p,
                FTerm::Pure(
                    fx.f,
                    Box::new(FTerm::Pure(fx.f, Box::new(FTerm::Var(fx.s)))),
                ),
                vec![],
            )],
        );
        let mut prog = Program::new();
        prog.push(rule);
        let normalized = normalize(&prog, &mut fx.i);
        assert!(normalized.is_normal());
        domaincheck::check_program(&normalized, &fx.i).unwrap();
    }

    #[test]
    fn peel_predicates_are_cached_across_rules() {
        let mut fx = fx();
        let deep = |s: Var| FTerm::Pure(fx.f, Box::new(FTerm::Pure(fx.f, Box::new(FTerm::Var(s)))));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(fx.q, FTerm::Var(fx.s), vec![]),
            vec![fat(fx.p, deep(fx.s), vec![])],
        ));
        prog.push(Rule::new(
            fat(fx.w, FTerm::Var(fx.s), vec![]),
            vec![fat(fx.p, deep(fx.s), vec![])],
        ));
        let normalized = normalize(&prog, &mut fx.i);
        assert!(normalized.is_normal());
        // One shared peel-definition rule + two rewritten rules.
        assert_eq!(normalized.rules.len(), 3);
    }

    #[test]
    fn extra_functional_variables_are_projected() {
        let mut fx = fx();
        // P(s,x), Q(s2,x) → P(f(s),x): two functional variables.
        let rule = Rule::new(
            fat(
                fx.p,
                FTerm::Pure(fx.f, Box::new(FTerm::Var(fx.s))),
                vec![NTerm::Var(fx.x)],
            ),
            vec![
                fat(fx.p, FTerm::Var(fx.s), vec![NTerm::Var(fx.x)]),
                fat(fx.q, FTerm::Var(fx.s2), vec![NTerm::Var(fx.x)]),
            ],
        );
        let mut prog = Program::new();
        prog.push(rule);
        let normalized = normalize(&prog, &mut fx.i);
        assert!(normalized.is_normal());
        for r in &normalized.rules {
            assert!(r.functional_vars().len() <= 1);
        }
        domaincheck::check_program(&normalized, &fx.i).unwrap();
    }

    #[test]
    fn ground_deep_terms_are_left_alone() {
        let mut fx = fx();
        // Ground terms may be arbitrarily deep in normal rules (§2.4).
        let ground = FTerm::from_path(&[fx.f, fx.f, fx.f]);
        let rule = Rule::new(
            fat(fx.q, FTerm::Var(fx.s), vec![]),
            vec![
                fat(fx.p, ground, vec![]),
                fat(fx.p, FTerm::Var(fx.s), vec![]),
            ],
        );
        let mut prog = Program::new();
        prog.push(rule.clone());
        let normalized = normalize(&prog, &mut fx.i);
        assert_eq!(normalized.rules, vec![rule]);
    }

    #[test]
    fn idempotent_on_normal_programs() {
        let mut fx = fx();
        let deep = FTerm::Mixed(
            fx.g,
            Box::new(FTerm::Pure(fx.f, Box::new(FTerm::Var(fx.s)))),
            vec![NTerm::Var(fx.x)],
        );
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(fx.p, deep, vec![]),
            vec![
                fat(fx.p, FTerm::Var(fx.s), vec![]),
                Atom::Relational {
                    pred: fx.w,
                    args: vec![NTerm::Var(fx.x)],
                },
            ],
        ));
        let n1 = normalize(&prog, &mut fx.i);
        let n2 = normalize(&n1, &mut fx.i);
        assert_eq!(n1, n2);
    }
}
