//! Algorithm Q and graph specifications (§3.4, Figure 1).
//!
//! The *graph specification* of a least fixpoint `L` is a pair `(B, F)`:
//! `B`, the **primary database**, holds one slice `L[t]` per representative
//! term `t`, and `F` is the finite graph of **successor mappings** between
//! representative terms. Representatives are chosen smallest in the
//! precedence ordering `≺` (breadth-first over the term tree).
//!
//! Figure 1 of the paper, in its Prolog-like notation:
//!
//! ```text
//! Potential(u)       :- depth(u) = c + 1.
//! Potential(f(u))    :- Active(u).
//! Active(u)          :- Potential(u), ¬∃v (Active(v), v ≺ u, v ∼ u).
//! successor_f(u) = v :- Potential(f(u)), Active(v), v ∼ f(u).
//! ```
//!
//! Terms of depth ≤ c are singleton clusters of the congruence `≅` (§3.2)
//! and carry their own slices; `successor_f(t) = f(t)` for them, except at
//! depth `c` where the successor is the representative of the potential term
//! `f(t)`. To verify `P(t₀, ā) ∈ L`, walk `t₀`'s symbol path through the
//! successor graph (the paper's `Link` rules) and look the tuple up in the
//! final node's slice.
//!
//! The construction below processes potential terms in precedence order
//! (FIFO over a breadth-first frontier, which coincides with `≺`), querying
//! the engine for slices — the "repetitive part" the paper's algorithm
//! computes, plus the finite depth ≤ c part.

use crate::engine::{Cursor, Engine};
use crate::gendb::AtomInterner;
use crate::state::State;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FuncOrder, FxHashMap, Interner, NodeId, Pred, TermTree};
use std::fmt;

/// Index of a node (cluster representative) in a [`GraphSpec`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecNodeId(u32);

impl SpecNodeId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(i: usize) -> Self {
        SpecNodeId(u32::try_from(i).expect("spec node overflow"))
    }

    /// Builds an id from a dense index. Spec nodes are stored densely
    /// (`GraphSpec::nodes[i]` has id `i`); this is the inverse of
    /// [`SpecNodeId::index`], used by serialization.
    pub fn from_dense_index(i: usize) -> Self {
        Self::from_index(i)
    }
}

impl fmt::Debug for SpecNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One representative term with its slice of the primary database.
#[derive(Clone, Debug)]
pub struct SpecNode {
    /// The representative term (node of [`GraphSpec::tree`]).
    pub term: NodeId,
    /// The slice `L[t]` (functional component abstracted away).
    pub state: State,
}

/// A finite graph specification `(B, F)` of a (possibly infinite) least
/// fixpoint.
#[derive(Clone)]
// Debug: summarized, the full structure is huge.
pub struct GraphSpec {
    /// Depth of the largest ground term (`c`): terms of depth ≤ c are
    /// singleton clusters.
    pub c: usize,
    /// Function symbol order (defines `≺`).
    pub funcs: FuncOrder,
    /// Term tree containing the representative terms.
    pub tree: TermTree,
    /// All representatives: the full depth ≤ c region first (breadth-first),
    /// then the `Active` terms discovered by Algorithm Q.
    pub nodes: Vec<SpecNode>,
    /// Successor mappings `F` — total on `nodes × funcs`.
    pub successor: FxHashMap<(SpecNodeId, Func), SpecNodeId>,
    /// Abstract-atom vocabulary for the slices.
    pub atoms: AtomInterner,
    /// The relational part of the fixpoint (non-functional predicates).
    pub nf: dl::Database,
    /// Merges recorded by Algorithm Q: a potential term (as a symbol path)
    /// together with the active representative it collapsed into. These are
    /// exactly the equations `R` of the equational specification (§3.5).
    pub merges: Vec<(Vec<Func>, SpecNodeId)>,
    /// Number of active (deep) representatives.
    pub active_count: usize,
}

impl fmt::Debug for GraphSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GraphSpec({} clusters, {} edges, {} tuples)",
            self.cluster_count(),
            self.edge_count(),
            self.primary_size()
        )
    }
}

impl GraphSpec {
    /// Runs Algorithm Q over an engine (solving it first if needed).
    ///
    /// ```
    /// use fundb_parser::Workspace;
    ///
    /// let mut ws = Workspace::new();
    /// ws.parse("Even(t) -> Even(t+2). Even(0).").unwrap();
    /// let mut engine = ws.engine().unwrap();
    /// let spec = fundb_core::GraphSpec::from_engine(&mut engine).unwrap();
    /// // 0 plus the two deep clusters (odd, even ≥ 2):
    /// assert_eq!(spec.cluster_count(), 3);
    /// assert!(ws.holds(&spec, "Even(40)").unwrap());
    /// ```
    pub fn from_engine(engine: &mut Engine) -> crate::error::Result<GraphSpec> {
        engine.solve()?;
        let cp = engine.compiled();
        let funcs = cp.funcs.clone();
        let c = cp.c;

        // Build into locals; the single `funcs` clone above is moved into
        // the struct at the end.
        let mut tree = TermTree::new();
        let mut nodes: Vec<SpecNode> = Vec::new();
        let mut successor: FxHashMap<(SpecNodeId, Func), SpecNodeId> = FxHashMap::default();
        let mut merges: Vec<(Vec<Func>, SpecNodeId)> = Vec::new();
        let mut active_count = 0usize;
        fn push(nodes: &mut Vec<SpecNode>, term: NodeId, state: State) -> SpecNodeId {
            let id = SpecNodeId::from_index(nodes.len());
            nodes.push(SpecNode { term, state });
            id
        }

        // --- Depth ≤ c region: one singleton cluster per term. -------------
        let root_cursor = engine.root_cursor();
        let root_state = engine.cursor_state(&root_cursor);
        let root_term = tree.root();
        let root_id = push(&mut nodes, root_term, root_state);
        let mut level: Vec<(SpecNodeId, Cursor)> = vec![(root_id, root_cursor)];
        for _depth in 0..c {
            let mut next = Vec::with_capacity(level.len() * funcs.len());
            for (id, cursor) in std::mem::take(&mut level) {
                for &f in funcs.symbols() {
                    let child_cursor = engine.child_cursor(&cursor, f);
                    let child_state = engine.cursor_state(&child_cursor);
                    let term = tree.child(nodes[id.index()].term, f);
                    let child_id = push(&mut nodes, term, child_state);
                    successor.insert((id, f), child_id);
                    next.push((child_id, child_cursor));
                }
            }
            level = next;
        }

        // --- Algorithm Q proper: potential terms of depth c+1 and beyond. --
        // FIFO order over breadth-first expansion = precedence order ≺.
        let mut queue: std::collections::VecDeque<(SpecNodeId, Func, Cursor)> =
            std::collections::VecDeque::new();
        for (id, cursor) in &level {
            for &f in funcs.symbols() {
                queue.push_back((*id, f, engine.child_cursor(cursor, f)));
            }
        }
        // Active(u) :- Potential(u), ¬∃v (Active(v), v ≺ u, v ∼ u):
        // processing in ≺ order, the representative of each state is the
        // first term carrying it. Hash-bucket dedup (hash → candidate ids,
        // confirmed against the stored slice) lets each state move into its
        // node instead of being cloned per active term.
        let mut active_by_state: FxHashMap<u64, Vec<SpecNodeId>> = FxHashMap::default();
        while let Some((parent, f, cursor)) = queue.pop_front() {
            let state = engine.cursor_state(&cursor);
            let h = {
                use std::hash::{Hash, Hasher};
                let mut hasher = fundb_term::FxHasher::default();
                state.hash(&mut hasher);
                hasher.finish()
            };
            let bucket = active_by_state.entry(h).or_default();
            if let Some(rep) = bucket
                .iter()
                .copied()
                .find(|id| nodes[id.index()].state == state)
            {
                // successor_f(parent) = rep; record f(parent) ≅ rep for R.
                successor.insert((parent, f), rep);
                let mut potential_path = tree.path(nodes[parent.index()].term);
                potential_path.push(f);
                merges.push((potential_path, rep));
            } else {
                let term = tree.child(nodes[parent.index()].term, f);
                let id = push(&mut nodes, term, state);
                active_count += 1;
                bucket.push(id);
                successor.insert((parent, f), id);
                for &g in funcs.symbols() {
                    queue.push_back((id, g, engine.child_cursor(&cursor, g)));
                }
            }
        }
        Ok(GraphSpec {
            c,
            funcs,
            tree,
            nodes,
            successor,
            atoms: engine.atoms().clone(),
            nf: engine.nf().clone(),
            merges,
            active_count,
        })
    }

    fn push_node(&mut self, term: NodeId, state: State) -> SpecNodeId {
        let id = SpecNodeId::from_index(self.nodes.len());
        self.nodes.push(SpecNode { term, state });
        id
    }

    /// The root node (representative of the term `0`).
    pub fn root(&self) -> SpecNodeId {
        SpecNodeId(0)
    }

    /// All node ids, in construction order (depth ≤ c region first, then
    /// actives in precedence order).
    pub fn node_ids(&self) -> impl Iterator<Item = SpecNodeId> {
        (0..self.nodes.len()).map(SpecNodeId::from_index)
    }

    /// Walks the successor graph along a symbol path — the paper's `Link`
    /// rules — returning the representative of the term. `None` when the
    /// path uses a function symbol outside the program's vocabulary (such a
    /// term cannot occur in the least fixpoint, Proposition 2.1).
    pub fn representative_of(&self, path: &[Func]) -> Option<SpecNodeId> {
        let mut cur = self.root();
        for &f in path {
            cur = *self.successor.get(&(cur, f))?;
        }
        Some(cur)
    }

    /// Yes-no membership `P(t₀, ā) ∈ L` via the graph specification.
    pub fn holds(&self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(id) = self.atoms.get(pred, args) else {
            return false;
        };
        let Some(rep) = self.representative_of(path) else {
            return false;
        };
        self.nodes[rep.index()].state.contains(id)
    }

    /// Yes-no membership for a relational tuple.
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.nf.contains(pred, args)
    }

    /// The slice of a representative, as `(pred, args)` tuples.
    pub fn slice(&self, id: SpecNodeId) -> impl Iterator<Item = (Pred, &[Cst])> + '_ {
        self.nodes[id.index()]
            .state
            .iter()
            .map(|a| self.atoms.resolve(a))
    }

    /// Number of clusters (representatives) in the specification.
    pub fn cluster_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of tuples in the primary database `B` (functional slices
    /// plus the relational store).
    pub fn primary_size(&self) -> usize {
        self.nodes.iter().map(|n| n.state.len()).sum::<usize>() + self.nf.fact_count()
    }

    /// Number of successor edges (|F|).
    pub fn edge_count(&self) -> usize {
        self.successor.len()
    }

    /// Mutable-spec counterpart of [`crate::serve::FrozenGraphSpec::
    /// patch_retraction`]: applies a completed retraction's net row
    /// deletions to the relational store, so a cached specification for a
    /// purely relational program stays valid under `:retract` without a
    /// rebuild. The functional side (nodes, successors, slices) depends on
    /// the program alone and is untouched. Returns the number of rows
    /// retracted.
    pub fn patch_retraction(&mut self, outcome: &dl::RetractOutcome) -> usize {
        let mut dropped = 0usize;
        for (p, row) in outcome.net_deleted() {
            if let Some(rel) = self.nf.relation(p) {
                let arity = rel.arity();
                if arity == row.len() && self.nf.relation_mut(p, arity).retract_tuple(row).is_some()
                {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// The bisimulation quotient of the specification: merges every pair of
    /// nodes with equal slices whose successors are (recursively) equal too.
    ///
    /// This is the coarsest sound collapsing — every membership walk yields
    /// the same slices — and it subsumes the paper's congruence `≅`: where
    /// our conservative Algorithm Q keeps singleton clusters for terms of
    /// depth ≤ c (`c` measured on the *transformed* rules, whose ground
    /// instantiated terms can be deeper than the original rules'), the
    /// quotient re-merges them, reproducing e.g. the four representatives
    /// `0, a, b, ab` of the paper's §3.4 worked example.
    pub fn minimized(&self) -> GraphSpec {
        let n = self.nodes.len();
        // Initial partition: by slice.
        let mut block: Vec<usize> = vec![0; n];
        {
            let mut by_state: FxHashMap<&State, usize> = FxHashMap::default();
            for (i, node) in self.nodes.iter().enumerate() {
                let next_id = by_state.len();
                block[i] = *by_state.entry(&node.state).or_insert(next_id);
            }
        }
        // Refine by successor signature. All n·k signature entries live in
        // one flat arena reused across rounds (keyed by borrowed slices), so
        // refinement allocates nothing per node.
        let k = self.funcs.len();
        let mut sig = vec![0usize; n * k];
        let mut new_block = vec![0usize; n];
        loop {
            for i in 0..n {
                let id = SpecNodeId::from_index(i);
                for (j, &f) in self.funcs.symbols().iter().enumerate() {
                    sig[i * k + j] = block[self.successor[&(id, f)].index()];
                }
            }
            let mut sig_to_block: FxHashMap<(usize, &[usize]), usize> = FxHashMap::default();
            for i in 0..n {
                let next_id = sig_to_block.len();
                new_block[i] = *sig_to_block
                    .entry((block[i], &sig[i * k..(i + 1) * k]))
                    .or_insert(next_id);
            }
            if new_block == block {
                break;
            }
            std::mem::swap(&mut block, &mut new_block);
        }
        // Representative of each block: the ≺-smallest member (blocks are
        // discovered in node order, which is ≺ order).
        let block_count = block.iter().copied().max().map_or(0, |m| m + 1);
        let mut rep_of_block: Vec<Option<usize>> = vec![None; block_count];
        for (i, &b) in block.iter().enumerate() {
            if rep_of_block[b].is_none() {
                rep_of_block[b] = Some(i);
            }
        }
        // Re-number blocks by their representative's node index so the
        // root stays node 0 and ordering is stable.
        let mut order: Vec<usize> = (0..block_count).collect();
        order.sort_by_key(|&b| rep_of_block[b].expect("every block has a representative"));
        let mut renum = vec![0usize; block_count];
        for (new_id, &b) in order.iter().enumerate() {
            renum[b] = new_id;
        }

        let mut out = GraphSpec {
            c: self.c,
            funcs: self.funcs.clone(),
            tree: TermTree::new(),
            nodes: Vec::new(),
            successor: FxHashMap::default(),
            atoms: self.atoms.clone(),
            nf: self.nf.clone(),
            merges: Vec::new(),
            active_count: 0,
        };
        for &b in &order {
            let rep = rep_of_block[b].expect("every block has a representative");
            let path = self.tree.path(self.nodes[rep].term);
            let term = out.tree.intern_path(&path);
            out.push_node(term, self.nodes[rep].state.clone());
        }
        out.active_count = out
            .nodes
            .iter()
            .filter(|n| out.tree.depth(n.term) > out.c)
            .count();
        for (i, &b) in block.iter().enumerate() {
            let new_from = SpecNodeId::from_index(renum[b]);
            let id = SpecNodeId::from_index(i);
            for &f in self.funcs.symbols() {
                let to = self.successor[&(id, f)];
                let new_to = SpecNodeId::from_index(renum[block[to.index()]]);
                out.successor.insert((new_from, f), new_to);
            }
            // Non-representative members become merge equations.
            if rep_of_block[b] != Some(i) {
                out.merges
                    .push((self.tree.path(self.nodes[i].term), new_from));
            }
        }
        for (path, rep) in &self.merges {
            out.merges.push((
                path.clone(),
                SpecNodeId::from_index(renum[block[rep.index()]]),
            ));
        }
        out
    }

    /// Renders the specification deterministically: representative terms
    /// with their slices and successor mappings. Used by goldens and the
    /// examples.
    pub fn render(&self, interner: &Interner) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let id = SpecNodeId::from_index(i);
            let term = self.tree.display(node.term, interner).to_string();
            out.push_str(&format!("node {i}: {term}\n"));
            let mut slice: Vec<String> = node
                .state
                .iter()
                .map(|a| self.atoms.display(a, interner))
                .collect();
            slice.sort_unstable();
            for s in slice {
                out.push_str(&format!("  {s}\n"));
            }
            for &f in self.funcs.symbols() {
                if let Some(t) = self.successor.get(&(id, f)) {
                    out.push_str(&format!(
                        "  successor_{} -> node {}\n",
                        interner.resolve(f.sym()),
                        t.index()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::Var;

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    /// Meets/Next: the spec must collapse to two deep clusters (even/odd).
    #[test]
    fn meets_collapses_to_two_clusters() {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("succ"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("tony")), Cst(i.intern("jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();

        // c = 0: the root plus two active representatives (odd days: jan,
        // even days ≥ 2: tony).
        assert_eq!(spec.c, 0);
        assert_eq!(spec.cluster_count(), 3);
        assert_eq!(spec.active_count, 2);

        // Membership through the Link walk.
        for n in 0..50usize {
            let path = vec![succ; n];
            assert_eq!(spec.holds(meets, &path, &[tony]), n % 2 == 0);
            assert_eq!(spec.holds(meets, &path, &[jan]), n % 2 == 1);
        }
        assert!(spec.holds_relational(next, &[tony, jan]));
        assert!(!spec.holds_relational(next, &[jan, jan]));
    }

    /// The successor graph is total: every node has an edge per symbol.
    #[test]
    fn successor_graph_is_total() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let f = Func(i.intern("f"));
        let g = Func(i.intern("g"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(p, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(p, FTerm::Var(s), vec![])],
        ));
        prog.push(Rule::new(
            fat(p, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            vec![
                fat(p, FTerm::Var(s), vec![]),
                fat(p, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            ],
        ));
        let mut db = Database::new();
        db.facts.push(fat(p, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        for idx in 0..spec.cluster_count() {
            for &sym in spec.funcs.symbols() {
                assert!(
                    spec.successor
                        .contains_key(&(SpecNodeId::from_index(idx), sym)),
                    "missing successor at node {idx}"
                );
            }
        }
    }

    /// Spec membership agrees with the engine on all short paths.
    #[test]
    fn spec_agrees_with_engine() {
        let mut i = Interner::new();
        let a = Pred(i.intern("A"));
        let b = Pred(i.intern("B"));
        let f = Func(i.intern("f"));
        let g = Func(i.intern("g"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Var(s), vec![])],
        ));
        prog.push(Rule::new(
            fat(b, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();

        let mut paths: Vec<Vec<Func>> = vec![vec![]];
        let mut frontier: Vec<Vec<Func>> = vec![vec![]];
        for _ in 0..5 {
            let mut next = Vec::new();
            for p in &frontier {
                for &sym in &[f, g] {
                    let mut q = p.clone();
                    q.push(sym);
                    next.push(q);
                }
            }
            paths.extend(next.iter().cloned());
            frontier = next;
        }
        for path in &paths {
            for pred in [a, b] {
                assert_eq!(
                    spec.holds(pred, path, &[]),
                    engine.holds(pred, path, &[]),
                    "pred {pred:?} path {path:?}"
                );
            }
        }
    }

    /// Merges record potential → representative equations for the eqspec.
    #[test]
    fn merges_are_recorded_and_consistent() {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("s1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        assert!(!spec.merges.is_empty());
        for (path, rep) in &spec.merges {
            assert_eq!(spec.representative_of(path), Some(*rep));
        }
        // The Even lasso: Even holds exactly on even terms.
        for n in 0..20usize {
            assert_eq!(spec.holds(even, &vec![succ; n], &[]), n % 2 == 0);
        }
    }

    /// Rendering is stable and human-readable.
    #[test]
    fn render_shows_nodes_and_successors() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(p, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(p, FTerm::Var(s), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(p, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let text = spec.render(&i);
        assert!(text.contains("node 0: 0"));
        assert!(text.contains("P()"));
        assert!(text.contains("successor_f"));
    }
}
