//! The CONGR canonical form (§3.6).
//!
//! The paper observes that every set of functional rules has a *canonical
//! form*: once the equational specification `(B, R)` is computed, the
//! original rules `Z` and database `D` can be discarded in favour of a
//! single rule set CONGR that depends only on the predicate vocabulary:
//!
//! ```text
//! rules describing the closure ≅ of the relation R between terms,
//! and, per predicate P:    P(s, z̄), s ≅ t → P(t, z̄),
//! ```
//!
//! so that `LFP(Z, D) = LFP(CONGR, B ∪ R)` (restricted to the predicates of
//! `Z ∪ D`). CONGR is *not* functional — its congruence rule relates two
//! functional components — so it cannot be evaluated by the functional
//! engine; the paper's point is that it is the same for every `Z`.
//!
//! [`CongrForm`] realizes the construction concretely: it reifies ground
//! terms up to a chosen depth as constants, emits CONGR as plain Datalog
//! over the `fundb-datalog` substrate (`Eq/2`, `Apply_f/2`, and the
//! per-predicate transfer rules), seeds it with `C = B ∪ R`, and
//! materializes the fixpoint. Experiment E10 cross-checks the result
//! against the graph specification.

use crate::eqspec::EqSpec;
use crate::error::Result;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FxHashMap, FxHashSet, Interner, Pred, Var};

/// The CONGR rule set instantiated over a bounded term universe, plus its
/// materialized fixpoint `LFP(CONGR, B ∪ R)`.
pub struct CongrForm {
    /// The grounding depth of the term universe.
    pub depth: usize,
    /// The CONGR rules (plain Datalog).
    pub rules: Vec<dl::Rule>,
    /// The materialized fixpoint.
    pub db: dl::Database,
    /// Number of facts in `C = B ∪ R` before evaluation.
    pub c_size: usize,
    term_consts: FxHashMap<Vec<Func>, Cst>,
}

impl CongrForm {
    /// Builds CONGR from an equational specification, reifying all terms of
    /// depth ≤ `depth` (must cover the representatives and equations of the
    /// spec) and evaluating to fixpoint.
    pub fn build(eq: &EqSpec, depth: usize, interner: &mut Interner) -> Result<CongrForm> {
        let max_needed = eq
            .primary
            .iter()
            .map(|(p, _)| p.len())
            .chain(eq.equations.iter().flat_map(|(a, b)| [a.len(), b.len()]))
            .max()
            .unwrap_or(0);
        assert!(
            depth >= max_needed,
            "CONGR universe must contain the specification's terms"
        );

        // Reify the term universe.
        let mut term_consts: FxHashMap<Vec<Func>, Cst> = FxHashMap::default();
        let mut paths: Vec<Vec<Func>> = vec![vec![]];
        let mut frontier: Vec<Vec<Func>> = vec![vec![]];
        for _ in 0..depth {
            let mut next = Vec::new();
            for p in &frontier {
                for &f in eq.funcs.symbols() {
                    let mut q = p.clone();
                    q.push(f);
                    next.push(q);
                }
            }
            paths.extend(next.iter().cloned());
            frontier = next;
        }
        for p in &paths {
            let shown = p
                .iter()
                .map(|f| interner.resolve(f.sym()))
                .collect::<Vec<_>>()
                .join(".");
            let c = Cst(interner.intern(&format!(
                "⟦{}⟧",
                if shown.is_empty() { "0" } else { &shown }
            )));
            term_consts.insert(p.clone(), c);
        }

        // Vocabulary: Eq/2, Apply_f/2 per symbol.
        let eq_pred = Pred(interner.fresh("Eq"));
        let mut apply_pred: FxHashMap<Func, Pred> = FxHashMap::default();
        for &f in eq.funcs.symbols() {
            let name = format!("Apply_{}", interner.resolve(f.sym()));
            apply_pred.insert(f, Pred(interner.fresh(&name)));
        }
        let (x, y, xp, yp) = (
            Var(interner.fresh("cx")),
            Var(interner.fresh("cy")),
            Var(interner.fresh("cx'")),
            Var(interner.fresh("cy'")),
        );

        // CONGR rules: symmetry, transitivity, congruence, and the
        // per-predicate transfer rule. (Reflexivity is seeded as facts.)
        let v = dl::Term::Var;
        let mut rules = vec![
            dl::Rule::new(
                dl::Atom::new(eq_pred, vec![v(y), v(x)]),
                vec![dl::Atom::new(eq_pred, vec![v(x), v(y)])],
            ),
            dl::Rule::new(
                dl::Atom::new(eq_pred, vec![v(x), v(xp)]),
                vec![
                    dl::Atom::new(eq_pred, vec![v(x), v(y)]),
                    dl::Atom::new(eq_pred, vec![v(y), v(xp)]),
                ],
            ),
        ];
        for &f in eq.funcs.symbols() {
            rules.push(dl::Rule::new(
                dl::Atom::new(eq_pred, vec![v(xp), v(yp)]),
                vec![
                    dl::Atom::new(eq_pred, vec![v(x), v(y)]),
                    dl::Atom::new(apply_pred[&f], vec![v(x), v(xp)]),
                    dl::Atom::new(apply_pred[&f], vec![v(y), v(yp)]),
                ],
            ));
        }
        // Transfer rules per functional predicate, with the right arity.
        let mut preds_seen: FxHashSet<Pred> = FxHashSet::default();
        for (_, state) in &eq.primary {
            for id in state.iter() {
                let (p, args) = eq.atoms.resolve(id);
                if !preds_seen.insert(p) {
                    continue;
                }
                let zs: Vec<Var> = (0..args.len())
                    .map(|k| Var(interner.fresh(&format!("cz{k}"))))
                    .collect();
                let mut head_args = vec![v(y)];
                head_args.extend(zs.iter().map(|&z| v(z)));
                let mut body_args = vec![v(x)];
                body_args.extend(zs.iter().map(|&z| v(z)));
                rules.push(dl::Rule::new(
                    dl::Atom::new(p, head_args),
                    vec![
                        dl::Atom::new(p, body_args),
                        dl::Atom::new(eq_pred, vec![v(x), v(y)]),
                    ],
                ));
            }
        }

        // C = B ∪ R (+ the Apply graph and reflexivity of the universe).
        let mut db = dl::Database::new();
        for (path, state) in &eq.primary {
            let tc = term_consts[path];
            for id in state.iter() {
                let (p, args) = eq.atoms.resolve(id);
                let mut row = Vec::with_capacity(args.len() + 1);
                row.push(tc);
                row.extend_from_slice(args);
                db.insert(p, &row);
            }
        }
        for (a, b) in &eq.equations {
            db.insert(eq_pred, &[term_consts[a], term_consts[b]]);
        }
        let c_size = db.fact_count();
        for p in &paths {
            let tc = term_consts[p];
            db.insert(eq_pred, &[tc, tc]);
            for &f in eq.funcs.symbols() {
                let mut q = p.clone();
                q.push(f);
                if let Some(&fc) = term_consts.get(&q) {
                    db.insert(apply_pred[&f], &[tc, fc]);
                }
            }
        }

        dl::evaluate(&mut db, &rules)?;
        Ok(CongrForm {
            depth,
            rules,
            db,
            c_size,
            term_consts,
        })
    }

    /// Membership of `P(t, ā)` in `LFP(CONGR, C)` (false beyond the
    /// reified universe).
    pub fn holds(&self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(&tc) = self.term_consts.get(path) else {
            return false;
        };
        let mut row = Vec::with_capacity(args.len() + 1);
        row.push(tc);
        row.extend_from_slice(args);
        self.db.contains(pred, &row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::graphspec::GraphSpec;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    /// LFP(CONGR, B ∪ R) = LFP(Z, D) on the Even example, for all terms in
    /// the bounded universe (§3.6).
    #[test]
    fn congr_reproduces_the_fixpoint() {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("s"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let eq = EqSpec::from_graph(&spec);
        let congr = CongrForm::build(&eq, 12, &mut i).unwrap();
        for n in 0..=12usize {
            assert_eq!(
                congr.holds(even, &vec![succ; n], &[]),
                n % 2 == 0,
                "Even({n})"
            );
        }
    }

    /// CONGR handles predicates with non-functional arguments: the transfer
    /// rule `P(s, z̄), s ≅ t → P(t, z̄)` carries the argument tuple along.
    #[test]
    fn congr_transfers_arguments() {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("+1"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (a, b) = (
            fundb_term::Cst(i.intern("A")),
            fundb_term::Cst(i.intern("B")),
        );
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(a)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(a), NTerm::Const(b)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(b), NTerm::Const(a)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        let eq = EqSpec::from_graph(&spec);
        let congr = CongrForm::build(&eq, 9, &mut i).unwrap();
        for n in 0..=9usize {
            let who = if n % 2 == 0 { a } else { b };
            let other = if n % 2 == 0 { b } else { a };
            assert!(congr.holds(meets, &vec![succ; n], &[who]), "n={n}");
            assert!(!congr.holds(meets, &vec![succ; n], &[other]), "n={n}");
        }
    }

    /// "The set of rules CONGR depends on the set of predicates in Z, but
    /// not on the actual rules in Z" (§3.6) — and not on the database: the
    /// same program over two different databases yields the same CONGR rule
    /// set (only C = B ∪ R differs).
    #[test]
    fn congr_rules_depend_only_on_vocabulary() {
        let build = |seed_depth: usize| {
            let mut i = Interner::new();
            let even = Pred(i.intern("Even"));
            let succ = Func(i.intern("s"));
            let t = Var(i.intern("t"));
            let mut prog = Program::new();
            prog.push(Rule::new(
                fat(
                    even,
                    FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                    vec![],
                ),
                vec![fat(even, FTerm::Var(t), vec![])],
            ));
            let mut db = Database::new();
            db.facts
                .push(fat(even, FTerm::from_path(&vec![succ; seed_depth]), vec![]));
            let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
            let spec = GraphSpec::from_engine(&mut engine).unwrap();
            let eq = EqSpec::from_graph(&spec);
            let congr = CongrForm::build(&eq, 10, &mut i).unwrap();
            (congr.rules.len(), congr.c_size)
        };
        let (rules_a, _c_a) = build(0);
        let (rules_b, _c_b) = build(1);
        assert_eq!(rules_a, rules_b);
    }
}
