#![warn(missing_docs)]
//! `fundb-core` — functional deductive databases with finitely represented
//! infinite least fixpoints.
//!
//! This crate implements the primary contribution of Chomicki & Imieliński,
//! *Relational Specifications of Infinite Query Answers* (SIGMOD 1989): an
//! extension of DATALOG in which predicates carry functional terms in one
//! fixed argument position, whose infinite least fixpoints and infinite query
//! answers are represented finitely as **relational specifications** — a
//! finite *primary database* plus a finitely specified congruence, given
//! either as a successor **graph specification** (Algorithm Q, Figure 1) or
//! as a ground-equation **equational specification** checked by congruence
//! closure.
//!
//! # Pipeline
//!
//! ```text
//! Program + Database                         (§2.1, your input)
//!   → validate                               (schema, §2.1 restrictions)
//!   → domain-independence check              (range-restrictedness, §2.3)
//!   → normalize                              (≤1 functional var, depth ≤ 1; Appendix)
//!   → mixed→pure transformation              (§2.4)
//!   → Engine: least-fixpoint decision proc.  (yes/no queries, §4)
//!   → GraphSpec (Algorithm Q)                (§3.4, Figure 1)
//!   → EqSpec / CONGR canonical form          (§3.5, §3.6)
//!   → query answers, incremental specs       (§5)
//! ```
//!
//! The human-friendly entry point (concrete syntax, a one-stop `Workspace`)
//! lives in the companion crate `fundb-parser`; this crate exposes the typed
//! pipeline directly. Each module's documentation shows its paper anchor.

pub mod analysis;
pub mod canonical;
pub mod compile;
pub mod domaincheck;
pub mod engine;
pub mod eqspec;
pub mod error;
pub mod gendb;
pub mod graphspec;
pub mod naive;
pub mod normalize;
pub mod program;
pub mod pure;
pub mod query;
pub mod quotient;
pub mod serve;
pub mod spec_io;
pub mod state;

pub use analysis::FinitenessReport;
pub use canonical::CongrForm;
pub use compile::CompiledProgram;
pub use engine::{Engine, EngineStats};
pub use eqspec::EqSpec;
pub use error::{Error, Result};
pub use gendb::{AtomId, AtomInterner, DataParams};
pub use graphspec::{GraphSpec, SpecNodeId};
pub use naive::BoundedMaterialization;
pub use normalize::normalize;
pub use program::{Atom, Database, FTerm, NTerm, Program, Rule, Schema};
pub use pure::{to_pure, PureProgram};
pub use query::{relational_facts, relational_rules, IncrementalAnswer, Query};
pub use quotient::QuotientModel;
pub use serve::{FrozenEqSpec, FrozenGraphSpec, ServeQuery, ServeStats};
pub use spec_io::{
    read_spec, read_spec_binary, read_spec_file, write_spec, write_spec_binary, write_spec_file,
    write_spec_file_binary, SpecBundle,
};
pub use state::State;

// Execution-governor types, re-exported from the Datalog substrate so
// downstream crates can budget/cancel runs without a direct dependency.
pub use fundb_datalog::{
    default_threads, Budget, CancelToken, EvalError, FaultPlan, Governor, Resource,
};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::{
        normalize, to_pure, Atom, Database, Engine, EqSpec, FTerm, GraphSpec, NTerm, Program,
        Query, Rule, Schema,
    };
    pub use fundb_term::{Cst, Func, Interner, MixedSym, Pred, Var};
}
