//! The least-fixpoint engine: a decision procedure for yes-no queries (§4).
//!
//! Algorithm Q (§3.4) assumes slices of the least fixpoint are "effectively
//! computable, because the yes-no query processing problem is decidable for
//! functional rules" — the paper cites Fürer's DEXPTIME decision procedure
//! for the Ackermann class [Fur81] without instantiating it. This module
//! supplies that missing piece with a **tabled uniform-tree fixpoint**:
//!
//! * The ground terms of a pure normal program form the infinite tree rooted
//!   at `0`. A rule instance at `s := t` touches only the *star* of `t`
//!   (`t`, its children `f(t)`, fixed ground nodes of depth ≤ c, and the
//!   non-functional store) — see [`crate::compile`].
//! * In the least model, the restriction to the subtree below any node `t`
//!   of depth > `c` equals the least model of the *uniform* star-local
//!   theory seeded with `t`'s incoming derivations: derivations of atoms
//!   strictly below `t` never leave `subtree(t)` (a rule derives an atom at
//!   `u` only from the star of `u` or of `parent(u)`), and no facts live
//!   below depth `c`. This is the observation behind the paper's Lemma 3.1.
//! * Hence one memo table `seed → (state, child seeds)` describes every
//!   uniform subtree, and the finite *top region* (all terms of depth ≤ c,
//!   which carry the database facts and ground rule atoms) is solved
//!   alongside it by monotone iteration to a global fixpoint.
//!
//! States live in the finite lattice `2^A` of abstract-atom sets
//! ([`crate::State`]), so the iteration terminates; the worst case is
//! exponential in `gsize`, matching DEXPTIME-completeness (Theorem 4.1).

use crate::compile::{CompiledProgram, Loc};
use crate::error::Result;
use crate::gendb::AtomInterner;
use crate::normalize::normalize;
use crate::program::{Database, Program};
use crate::pure::to_pure;
use crate::state::State;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FxHashMap, FxHashSet, Interner, NodeId, Pred, TermTree};

/// A memo-table entry: the stabilized state of a uniform node with a given
/// seed, and the seeds its rule firings push into each child.
#[derive(Clone, Default, PartialEq)]
struct Entry {
    state: State,
    child_seeds: FxHashMap<Func, State>,
}

/// A persistent local evaluation: one Datalog database per top-region node,
/// per demanded uniform seed, and one for the fixed rules, kept alive
/// between global passes so each pass resumes the semi-naive fixpoint from
/// its low-water marks instead of re-deriving everything.
///
/// The snapshot fields record which input atoms have already been injected,
/// so a pass only feeds the *delta* of each input into the database. Rows
/// injected from an earlier pass are never retracted: every input
/// (top-region states, memoized uniform states, the boundary seeds, the
/// relational store) grows monotonically, and the uniform least fixpoint is
/// monotone in its seed, so a row that was true of an earlier, smaller
/// input is still true of the final one.
#[derive(Default)]
struct LocalCtx {
    db: dl::Database,
    eval: dl::IncrementalEval,
    /// Here-state atoms already present in `db`.
    injected_here: State,
    /// Per child symbol, child-state atoms already present in `db`.
    injected_child: FxHashMap<Func, State>,
    /// Per fixed-location tag, fixed-node atoms already examined.
    injected_fixed: FxHashMap<Pred, State>,
    /// Per relational predicate, rows of the global store already injected.
    nf_cursors: FxHashMap<Pred, usize>,
}

/// A position in the (infinite) term tree, as the engine sees it: either a
/// materialized top-region node (depth ≤ c) or a uniform node identified by
/// its seed. Two terms with the same cursor have identical subtrees, which
/// is exactly the congruence insight of §3.2.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cursor {
    /// A node of the top region.
    Top(NodeId),
    /// A uniform node, identified by its seed state.
    Uniform(State),
}

/// The least-fixpoint engine over a compiled program.
pub struct Engine {
    cp: CompiledProgram,
    atoms: AtomInterner,
    tree: TermTree,
    /// All nodes of depth ≤ c in breadth-first (precedence) order.
    top_nodes: Vec<NodeId>,
    top: FxHashMap<NodeId, State>,
    /// Seeds flowing from depth-c nodes into their (uniform) children.
    boundary: FxHashMap<(NodeId, Func), State>,
    nf: dl::Database,
    memo: FxHashMap<State, Entry>,
    here_by_pred: FxHashMap<Pred, Pred>,
    child_by_f: FxHashMap<Func, FxHashMap<Pred, Pred>>,
    /// Persistent per-node evaluation contexts (see [`LocalCtx`]).
    top_ctx: FxHashMap<NodeId, LocalCtx>,
    /// Persistent per-seed evaluation contexts.
    memo_ctx: FxHashMap<State, LocalCtx>,
    /// Persistent context for the fixed (no-functional-variable) rules.
    fixed_ctx: LocalCtx,
    /// Worker-thread override for local Datalog evaluations (`None` =
    /// `FUNDB_THREADS` / machine default).
    threads: Option<usize>,
    /// Execution governor shared by every local evaluation: its budgets
    /// (rows/rounds/time/bytes) and cancellation token span the whole
    /// multi-fixpoint solve, not one local run.
    governor: dl::Governor,
    solved: bool,
    stats: EngineStats,
}

/// Instrumentation counters reported by [`Engine::stats`]: useful for the
/// benchmark harness and for understanding where a hard instance spends its
/// time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Global fixpoint passes until convergence.
    pub passes: usize,
    /// Local evaluations of top-region nodes.
    pub top_evals: usize,
    /// Stabilization runs of uniform seeds (memo-table work).
    pub uniform_evals: usize,
    /// Per pass, the number of new abstract atoms absorbed into the global
    /// stores (top region, boundary seeds, memo entries, relational store).
    /// The final pass is always 0 — it verifies the fixpoint.
    pub pass_deltas: Vec<usize>,
    /// Total of [`Self::pass_deltas`].
    pub delta_atoms: usize,
    /// Candidate rows enumerated by rule-body probes across all local
    /// evaluations.
    pub join_probes: usize,
    /// Bound-column selections fully answered by a per-column or composite
    /// index (see [`dl::EvalStats::index_hits`]).
    pub index_hits: usize,
    /// Bound-column selections that fell back to a partial single-column
    /// cover because no full index was available.
    pub index_misses: usize,
    /// Semi-naive rounds summed over all local evaluations.
    pub datalog_rounds: usize,
    /// Rows derived by local Datalog evaluations (before absorption).
    pub derived_rows: usize,
    /// Frozen-spec answer-cache hits absorbed from the serving layer (see
    /// [`crate::serve::ServeStats`]); evaluation itself never touches the
    /// serve cache, so these stay 0 unless a frozen spec reports in.
    pub serve_cache_hits: u64,
    /// Frozen-spec answer-cache misses absorbed from the serving layer.
    pub serve_cache_misses: u64,
    /// Magic rules synthesized by goal-directed (demand-rewritten) query
    /// answering (see [`dl::EvalStats::magic_rules`]); stays 0 unless a
    /// goal-directed query reports in.
    pub magic_rules: usize,
    /// Demand-set sizes summed over goal-directed queries (see
    /// [`dl::EvalStats::demanded_tuples`]).
    pub demanded_tuples: usize,
    /// Rule plans replaced mid-run by the adaptive evaluator (see
    /// [`dl::EvalStats::replans`]).
    pub replans: usize,
    /// Composite-index probes answered by a bloom-filter rejection (see
    /// [`dl::EvalStats::bloom_skips`]).
    pub bloom_skips: usize,
    /// Shared compiled-prefix evaluations reused across rules (see
    /// [`dl::EvalStats::shared_prefix_hits`]).
    pub shared_prefix_hits: usize,
    /// WAL records appended by a durable session this engine reported into
    /// (see `fundb_storage::WalStats`); stays 0 unless a durable store
    /// reports in.
    pub wal_records: u64,
    /// Round-commit markers among those records — the durability points a
    /// crash recovers to.
    pub wal_round_commits: u64,
    /// Completed rounds replayed from a WAL during the recovery that
    /// produced this session's database (0 for a fresh session).
    pub recovered_rounds: u64,
    /// Rows tombstoned by incremental retractions reported into this
    /// engine (see [`dl::EvalStats::retractions`]); stays 0 unless a
    /// retraction reports in.
    pub retractions: usize,
    /// Rows the re-derive pass restored (an alternative derivation
    /// survived the over-delete; see [`dl::EvalStats::rederived`]).
    pub rederived: usize,
    /// Cached-specification rows patched in place by retractions instead
    /// of rebuilding the spec.
    pub cache_patches: u64,
}

impl EngineStats {
    fn absorb(&mut self, es: dl::EvalStats) {
        self.datalog_rounds += es.rounds;
        self.derived_rows += es.derived;
        self.join_probes += es.join_probes;
        self.index_hits += es.index_hits;
        self.index_misses += es.index_misses;
        self.magic_rules += es.magic_rules;
        self.demanded_tuples += es.demanded_tuples;
        self.replans += es.replans;
        self.bloom_skips += es.bloom_skips;
        self.shared_prefix_hits += es.shared_prefix_hits;
    }
}

impl Engine {
    /// Creates an engine from a compiled program (facts already applied).
    pub fn new(cp: CompiledProgram) -> Engine {
        let mut tree = cp.tree.clone();
        // Materialize the whole top region: every term of depth ≤ c.
        let mut top_nodes = vec![tree.root()];
        let mut frontier = vec![tree.root()];
        for _ in 0..cp.c {
            let mut next = Vec::new();
            for &n in &frontier {
                for &f in cp.funcs.symbols() {
                    let child = tree.child(n, f);
                    next.push(child);
                }
            }
            top_nodes.extend(next.iter().copied());
            frontier = next;
        }

        let mut atoms = AtomInterner::new();
        let mut top: FxHashMap<NodeId, State> = FxHashMap::default();
        for &n in &top_nodes {
            top.insert(n, State::new());
        }
        for (node, pred, args) in &cp.seeds {
            let id = atoms.intern(*pred, args);
            top.get_mut(node)
                .expect("fact nodes have depth ≤ c by definition of c")
                .insert(id);
        }
        let mut nf = dl::Database::new();
        for (pred, args) in &cp.nf_facts {
            nf.insert(*pred, args);
        }

        let here_by_pred = cp.here_tags().collect();
        let mut child_by_f: FxHashMap<Func, FxHashMap<Pred, Pred>> = FxHashMap::default();
        for (p, f, t) in cp.child_tags() {
            child_by_f.entry(f).or_default().insert(p, t);
        }

        Engine {
            cp,
            atoms,
            tree,
            top_nodes,
            top,
            boundary: FxHashMap::default(),
            nf,
            memo: FxHashMap::default(),
            here_by_pred,
            child_by_f,
            top_ctx: FxHashMap::default(),
            memo_ctx: FxHashMap::default(),
            fixed_ctx: LocalCtx::default(),
            threads: None,
            governor: dl::Governor::default(),
            solved: false,
            stats: EngineStats::default(),
        }
    }

    /// Pins the worker-thread count used by local Datalog evaluations
    /// (`None` restores the `FUNDB_THREADS` / machine-parallelism default).
    /// Thread count never changes results or stats: parallel rounds merge
    /// worker buffers in task order, byte-identical to sequential.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
        self.fixed_ctx.eval.set_threads(threads);
        for ctx in self.top_ctx.values_mut() {
            ctx.eval.set_threads(threads);
        }
        for ctx in self.memo_ctx.values_mut() {
            ctx.eval.set_threads(threads);
        }
    }

    /// The worker-thread count local evaluations will use.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(dl::default_threads)
    }

    /// Installs the governor that budgets this engine's evaluations. Its
    /// counters and deadline are shared across every local fixpoint of
    /// every subsequent [`Engine::solve`], so e.g. `max_rounds` bounds the
    /// solve's *total* semi-naive rounds.
    pub fn set_governor(&mut self, governor: dl::Governor) {
        self.fixed_ctx.eval.set_governor(governor.clone());
        for ctx in self.top_ctx.values_mut() {
            ctx.eval.set_governor(governor.clone());
        }
        for ctx in self.memo_ctx.values_mut() {
            ctx.eval.set_governor(governor.clone());
        }
        self.governor = governor;
    }

    /// The governor in effect (e.g. to clone its cancellation token).
    pub fn governor(&self) -> &dl::Governor {
        &self.governor
    }

    /// A fresh local context configured with this engine's thread and
    /// governor knobs.
    fn new_ctx(&self) -> LocalCtx {
        let mut ctx = LocalCtx::default();
        ctx.eval.set_threads(self.threads);
        ctx.eval.set_governor(self.governor.clone());
        ctx
    }

    /// Convenience pipeline: validate → normalize → mixed→pure → compile →
    /// engine.
    pub fn build(program: &Program, db: &Database, interner: &mut Interner) -> Result<Engine> {
        let normal = normalize(program, interner);
        let pure = to_pure(&normal, db, interner)?;
        let cp = CompiledProgram::compile(&pure, interner)?;
        Ok(Engine::new(cp))
    }

    /// The compiled program.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.cp
    }

    /// The abstract-atom interner (shared vocabulary for states).
    pub fn atoms(&self) -> &AtomInterner {
        &self.atoms
    }

    /// Number of memo-table entries (distinct demanded uniform seeds) —
    /// an engine-internal cost metric surfaced for the benchmarks.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Runs the global fixpoint. Idempotent.
    ///
    /// Evaluation is semi-naive at both levels: each pass feeds only the
    /// *delta* of every input into the persistent local contexts, and each
    /// local Datalog run resumes from its low-water marks, so work is
    /// proportional to what is newly derivable rather than to everything
    /// derived so far. The final pass absorbs nothing ([`EngineStats::
    /// pass_deltas`] ends in 0) and only verifies the fixpoint.
    ///
    /// On `Err` ([`crate::error::Error::Eval`]: budget exhausted,
    /// cancelled, or a worker panicked) the engine is left consistent —
    /// every local context holds only fully-committed rounds, already
    /// absorbed into the global stores — and not marked solved, so a later
    /// call (e.g. under a fresh governor) resumes where this one stopped.
    pub fn solve(&mut self) -> Result<()> {
        if self.solved {
            return Ok(());
        }
        loop {
            self.stats.passes += 1;
            let before = self.stats.delta_atoms;
            let mut changed = false;
            changed |= self.eval_fixed_rules()?;
            let nodes = self.top_nodes.clone();
            for node in nodes {
                self.stats.top_evals += 1;
                changed |= self.eval_top_node(node)?;
            }
            changed |= self.uniform_pass()?;
            self.stats.pass_deltas.push(self.stats.delta_atoms - before);
            if !changed {
                break;
            }
        }
        self.solved = true;
        Ok(())
    }

    /// Instrumentation counters accumulated by [`Engine::solve`].
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Absorbs serving-layer answer-cache counters (cumulative totals from
    /// [`crate::serve::ServeStats`]) into the engine's stats so `:stats` and
    /// the bench harness report construction and serving side by side.
    pub fn record_serve_stats(&mut self, hits: u64, misses: u64) {
        self.stats.serve_cache_hits = hits;
        self.stats.serve_cache_misses = misses;
    }

    /// Absorbs the counters of a goal-directed (magic-rewritten) query run
    /// (see [`dl::query_demand`]) into the engine's stats, so demand-driven
    /// answering shows up next to full-materialization work in `:stats` and
    /// the bench harness.
    pub fn record_demand_stats(&mut self, es: dl::EvalStats) {
        self.stats.magic_rules += es.magic_rules;
        self.stats.demanded_tuples += es.demanded_tuples;
        self.stats.replans += es.replans;
        self.stats.bloom_skips += es.bloom_skips;
        self.stats.shared_prefix_hits += es.shared_prefix_hits;
    }

    /// Absorbs incremental-retraction counters (cumulative session totals)
    /// into the engine's stats, so delete/update maintenance work shows up
    /// next to forward-derivation counters in `:stats` and the bench
    /// harness.
    pub fn record_retract_stats(&mut self, retractions: usize, rederived: usize, patches: u64) {
        self.stats.retractions = retractions;
        self.stats.rederived = rederived;
        self.stats.cache_patches = patches;
    }

    /// Absorbs durable-storage counters (cumulative WAL totals and the
    /// recovery that seeded the session) into the engine's stats, so
    /// journaling cost and crash-recovery work show up next to evaluation
    /// counters in `:stats` and the bench harness.
    pub fn record_wal_stats(&mut self, records: u64, round_commits: u64, recovered_rounds: u64) {
        self.stats.wal_records = records;
        self.stats.wal_round_commits = round_commits;
        self.stats.recovered_rounds = recovered_rounds;
    }

    // --- incremental updates -------------------------------------------------

    /// Adds a functional fact `P(t, ā)` to an already-(partially-)solved
    /// engine and marks it for re-solving. Everything the engine computes is
    /// monotone, so the existing memo table and states remain valid lower
    /// bounds and the next [`Engine::solve`] only derives the consequences
    /// of the new fact — usually far cheaper than a rebuild (the §3.6 remark
    /// that "techniques for optimizing the database C are also necessary",
    /// made concrete).
    ///
    /// Restrictions (violations return an error asking for a full rebuild):
    /// the fact's term must fit the existing top region (`depth ≤ c`), and
    /// its symbols must already be in the compiled vocabulary — new
    /// constants would invalidate the database-dependent mixed→pure
    /// transformation (§2.4).
    pub fn add_fact_functional(
        &mut self,
        pred: Pred,
        path: &[Func],
        args: &[Cst],
        interner: &Interner,
    ) -> Result<()> {
        if path.len() > self.cp.c {
            return Err(crate::error::Error::UnsupportedQuery {
                detail: format!(
                    "incremental fact at depth {} exceeds the top region (c = {}); \
                     rebuild the engine",
                    path.len(),
                    self.cp.c
                ),
            });
        }
        self.check_vocabulary(pred, args, interner)?;
        for f in path {
            if self.cp.funcs.symbols().iter().all(|g| g != f) {
                return Err(crate::error::Error::UnsupportedQuery {
                    detail: format!(
                        "function symbol `{}` is not in the compiled program; rebuild",
                        interner.resolve(f.sym())
                    ),
                });
            }
        }
        let node = self
            .tree
            .lookup_path(path)
            .expect("top region is fully materialized");
        let id = self.atoms.intern(pred, args);
        if self
            .top
            .get_mut(&node)
            .expect("top nodes have states")
            .insert(id)
        {
            self.solved = false;
        }
        Ok(())
    }

    /// Adds a relational fact `S(ā)` incrementally (see
    /// [`Engine::add_fact_functional`]).
    pub fn add_fact_relational(
        &mut self,
        pred: Pred,
        args: &[Cst],
        interner: &Interner,
    ) -> Result<()> {
        self.check_vocabulary(pred, args, interner)?;
        if !self.nf.contains(pred, args) {
            self.nf.insert(pred, args);
            self.solved = false;
        }
        Ok(())
    }

    fn check_vocabulary(&self, pred: Pred, args: &[Cst], interner: &Interner) -> Result<()> {
        if !self.cp.schema.sigs.contains_key(&pred) {
            return Err(crate::error::Error::UnsupportedQuery {
                detail: format!(
                    "predicate `{}` is not in the compiled program; rebuild",
                    interner.resolve(pred.sym())
                ),
            });
        }
        for c in args {
            if self.cp.schema.constants.iter().all(|k| k != c) {
                return Err(crate::error::Error::UnsupportedQuery {
                    detail: format!(
                        "constant `{}` is new — the mixed→pure transformation is \
                         database-dependent (§2.4); rebuild the engine",
                        interner.resolve(c.sym())
                    ),
                });
            }
        }
        Ok(())
    }

    // --- public read API ---------------------------------------------------

    /// The slice (state) of the ground pure term given by `path`.
    pub fn state_of_path(&self, path: &[Func]) -> State {
        let c = self.cp.c;
        if path.len() <= c {
            return self
                .tree
                .lookup_path(path)
                .and_then(|n| self.top.get(&n).cloned())
                .unwrap_or_default();
        }
        // A path using symbols outside the program's vocabulary denotes a
        // term that cannot occur in the least fixpoint (Proposition 2.1).
        let Some(boundary_node) = self.tree.lookup_path(&path[..c]) else {
            return State::new();
        };
        let mut seed = self
            .boundary
            .get(&(boundary_node, path[c]))
            .cloned()
            .unwrap_or_default();
        for &f in &path[c + 1..] {
            seed = self
                .memo
                .get(&seed)
                .and_then(|e| e.child_seeds.get(&f).cloned())
                .unwrap_or_default();
        }
        self.memo
            .get(&seed)
            .map(|e| e.state.clone())
            .unwrap_or(seed)
    }

    /// Yes-no query for a functional tuple `P(t, ā)` with `t` given as a
    /// path (Theorem 4.1's problem).
    pub fn holds(&self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(id) = self.atoms.get(pred, args) else {
            return false;
        };
        self.state_of_path(path).contains(id)
    }

    /// Yes-no query for a relational tuple `S(ā)`.
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.nf.contains(pred, args)
    }

    /// The non-functional store (all derived relational facts).
    pub fn nf(&self) -> &dl::Database {
        &self.nf
    }

    /// Cursor at the root (`0`).
    pub fn root_cursor(&self) -> Cursor {
        Cursor::Top(self.tree.root())
    }

    /// Cursor of the child `f(t)`.
    pub fn child_cursor(&self, cur: &Cursor, f: Func) -> Cursor {
        match cur {
            Cursor::Top(n) => {
                if self.tree.depth(*n) < self.cp.c {
                    Cursor::Top(
                        self.tree
                            .get_child(*n, f)
                            .expect("top region is fully materialized"),
                    )
                } else {
                    Cursor::Uniform(self.boundary.get(&(*n, f)).cloned().unwrap_or_default())
                }
            }
            Cursor::Uniform(seed) => Cursor::Uniform(
                self.memo
                    .get(seed)
                    .and_then(|e| e.child_seeds.get(&f).cloned())
                    .unwrap_or_default(),
            ),
        }
    }

    /// The state at a cursor.
    pub fn cursor_state(&self, cur: &Cursor) -> State {
        match cur {
            Cursor::Top(n) => self.top.get(n).cloned().unwrap_or_default(),
            Cursor::Uniform(seed) => self
                .memo
                .get(seed)
                .map(|e| e.state.clone())
                .unwrap_or_else(|| seed.clone()),
        }
    }

    // --- fixpoint internals --------------------------------------------------

    /// Evaluates the rules without functional variables over the fixed nodes
    /// and the non-functional store.
    fn eval_fixed_rules(&mut self) -> Result<bool> {
        if self.cp.fixed_rules.is_empty() {
            return Ok(false);
        }
        let mut ctx = std::mem::take(&mut self.fixed_ctx);
        self.inject_fixed_and_nf_diff(&mut ctx);
        let lens = Self::row_counts(&ctx.db);
        // On `Err`, the local database still holds a deterministic prefix
        // of committed rows; absorb them before propagating so a resumed
        // solve never skips them (`lens` is recomputed per pass).
        let run = ctx
            .eval
            .run(&mut ctx.db, &self.cp.fixed_rules, &self.cp.fixed_plan);
        if let Ok(es) = run {
            self.stats.absorb(es);
        }

        let mut changed = false;
        for (tagged, rel) in ctx.db.iter() {
            let from = lens.get(&tagged).copied().unwrap_or(0);
            if rel.len() == from {
                continue;
            }
            match self.cp.untag(tagged) {
                Some((p, Loc::Fixed(n))) => {
                    for row in rel.rows_from(from) {
                        let id = self.atoms.intern(p, row);
                        ctx.injected_fixed.entry(tagged).or_default().insert(id);
                        if self
                            .top
                            .get_mut(&n)
                            .expect("fixed nodes are in the top region")
                            .insert(id)
                        {
                            changed = true;
                            self.stats.delta_atoms += 1;
                        }
                    }
                }
                Some(_) => unreachable!("fixed rules mention no here/child tags"),
                None => {
                    for row in rel.rows_from(from) {
                        if !self.nf.contains(tagged, row) {
                            self.nf.insert(tagged, row);
                            changed = true;
                            self.stats.delta_atoms += 1;
                        }
                    }
                }
            }
        }
        self.fixed_ctx = ctx;
        run?;
        Ok(changed)
    }

    /// Evaluates the star rules at a top-region node, resuming the node's
    /// persistent context from the previous pass.
    fn eval_top_node(&mut self, node: NodeId) -> Result<bool> {
        if self.cp.star_rules.is_empty() {
            return Ok(false);
        }
        let at_boundary = self.tree.depth(node) == self.cp.c;
        let mut ctx = self.top_ctx.remove(&node).unwrap_or_else(|| self.new_ctx());

        // Inject the delta of every input.
        let here_state = self.top[&node].clone();
        Self::inject_state_diff(
            &self.atoms,
            &mut ctx.db,
            &here_state,
            &mut ctx.injected_here,
            &self.here_by_pred,
        );
        for &f in self.cp.funcs.symbols() {
            let Some(lookup) = self.child_by_f.get(&f) else {
                continue;
            };
            let child_state = if at_boundary {
                let seed = self.boundary.get(&(node, f)).cloned().unwrap_or_default();
                self.memo
                    .get(&seed)
                    .map(|e| e.state.clone())
                    .unwrap_or(seed)
            } else {
                let child = self
                    .tree
                    .get_child(node, f)
                    .expect("top region is fully materialized");
                self.top[&child].clone()
            };
            let snap = ctx.injected_child.entry(f).or_default();
            Self::inject_state_diff(&self.atoms, &mut ctx.db, &child_state, snap, lookup);
        }
        self.inject_fixed_and_nf_diff(&mut ctx);

        // Resume the local fixpoint; rows past `lens` are this run's output
        // (on `Err`, the committed prefix — absorbed below all the same).
        let lens = Self::row_counts(&ctx.db);
        let run = ctx
            .eval
            .run(&mut ctx.db, &self.cp.star_rules, &self.cp.star_plan);
        if let Ok(es) = run {
            self.stats.absorb(es);
        }

        let mut changed = false;
        for (tagged, rel) in ctx.db.iter() {
            let from = lens.get(&tagged).copied().unwrap_or(0);
            if rel.len() == from {
                continue;
            }
            match self.cp.untag(tagged) {
                Some((p, Loc::Here)) => {
                    for row in rel.rows_from(from) {
                        let id = self.atoms.intern(p, row);
                        ctx.injected_here.insert(id);
                        if self
                            .top
                            .get_mut(&node)
                            .expect("every top node was given a state in Engine::new")
                            .insert(id)
                        {
                            changed = true;
                            self.stats.delta_atoms += 1;
                        }
                    }
                }
                Some((p, Loc::Child(f))) => {
                    for row in rel.rows_from(from) {
                        let id = self.atoms.intern(p, row);
                        ctx.injected_child.entry(f).or_default().insert(id);
                        if at_boundary {
                            if self.boundary.entry((node, f)).or_default().insert(id) {
                                changed = true;
                                self.stats.delta_atoms += 1;
                            }
                        } else {
                            // Non-boundary nodes have depth < c, so every
                            // child is materialized with a state.
                            let child = self
                                .tree
                                .get_child(node, f)
                                .expect("top region is fully materialized");
                            if self
                                .top
                                .get_mut(&child)
                                .expect("every top node was given a state in Engine::new")
                                .insert(id)
                            {
                                changed = true;
                                self.stats.delta_atoms += 1;
                            }
                        }
                    }
                }
                Some((p, Loc::Fixed(n))) => {
                    for row in rel.rows_from(from) {
                        let id = self.atoms.intern(p, row);
                        ctx.injected_fixed.entry(tagged).or_default().insert(id);
                        if self
                            .top
                            .get_mut(&n)
                            .expect("fixed nodes are in the top region")
                            .insert(id)
                        {
                            changed = true;
                            self.stats.delta_atoms += 1;
                        }
                    }
                }
                None => {
                    for row in rel.rows_from(from) {
                        if !self.nf.contains(tagged, row) {
                            self.nf.insert(tagged, row);
                            changed = true;
                            self.stats.delta_atoms += 1;
                        }
                    }
                }
            }
        }
        self.top_ctx.insert(node, ctx);
        run?;
        Ok(changed)
    }

    /// Processes every demanded uniform seed once; returns whether anything
    /// (memo entries, top region, nf) changed.
    fn uniform_pass(&mut self) -> Result<bool> {
        if self.cp.star_rules.is_empty() {
            return Ok(false);
        }
        let mut queue: Vec<State> = Vec::new();
        let mut enqueued: FxHashSet<State> = FxHashSet::default();
        for seed in self.boundary.values() {
            if !seed.is_empty() && enqueued.insert(seed.clone()) {
                queue.push(seed.clone());
            }
        }
        for seed in self.memo.keys() {
            if !seed.is_empty() && enqueued.insert(seed.clone()) {
                queue.push(seed.clone());
            }
        }
        let mut changed = false;
        while let Some(seed) = queue.pop() {
            self.stats.uniform_evals += 1;
            let (entry, entry_changed) = self.process_seed(&seed)?;
            changed |= entry_changed;
            for cs in entry.child_seeds.values() {
                if !cs.is_empty() && enqueued.insert(cs.clone()) {
                    queue.push(cs.clone());
                }
            }
        }
        Ok(changed)
    }

    /// Stabilizes one uniform seed against the current memo/top/nf and
    /// stores the result, resuming the seed's persistent context. Returns
    /// the entry and whether anything changed.
    fn process_seed(&mut self, seed: &State) -> Result<(Entry, bool)> {
        let mut entry = self.memo.get(seed).cloned().unwrap_or_default();
        entry.state.union_with(seed);
        let mut ctx = self.memo_ctx.remove(seed).unwrap_or_else(|| self.new_ctx());
        let mut changed_global = false;

        loop {
            Self::inject_state_diff(
                &self.atoms,
                &mut ctx.db,
                &entry.state,
                &mut ctx.injected_here,
                &self.here_by_pred,
            );
            for &f in self.cp.funcs.symbols() {
                let Some(lookup) = self.child_by_f.get(&f) else {
                    continue;
                };
                let child_state = entry
                    .child_seeds
                    .get(&f)
                    .map(|cs| {
                        self.memo
                            .get(cs)
                            .map(|e| e.state.clone())
                            .unwrap_or_else(|| cs.clone())
                    })
                    .unwrap_or_default();
                let snap = ctx.injected_child.entry(f).or_default();
                Self::inject_state_diff(&self.atoms, &mut ctx.db, &child_state, snap, lookup);
            }
            self.inject_fixed_and_nf_diff(&mut ctx);

            let lens = Self::row_counts(&ctx.db);
            let run = ctx
                .eval
                .run(&mut ctx.db, &self.cp.star_rules, &self.cp.star_plan);
            if let Ok(es) = run {
                self.stats.absorb(es);
            }

            let mut local_changed = false;
            for (tagged, rel) in ctx.db.iter() {
                let from = lens.get(&tagged).copied().unwrap_or(0);
                if rel.len() == from {
                    continue;
                }
                match self.cp.untag(tagged) {
                    Some((p, Loc::Here)) => {
                        for row in rel.rows_from(from) {
                            let id = self.atoms.intern(p, row);
                            ctx.injected_here.insert(id);
                            if entry.state.insert(id) {
                                local_changed = true;
                                self.stats.delta_atoms += 1;
                            }
                        }
                    }
                    Some((p, Loc::Child(f))) => {
                        for row in rel.rows_from(from) {
                            let id = self.atoms.intern(p, row);
                            ctx.injected_child.entry(f).or_default().insert(id);
                            if entry.child_seeds.entry(f).or_default().insert(id) {
                                local_changed = true;
                                self.stats.delta_atoms += 1;
                            }
                        }
                    }
                    Some((p, Loc::Fixed(n))) => {
                        for row in rel.rows_from(from) {
                            let id = self.atoms.intern(p, row);
                            ctx.injected_fixed.entry(tagged).or_default().insert(id);
                            if self
                                .top
                                .get_mut(&n)
                                .expect("fixed nodes are in the top region")
                                .insert(id)
                            {
                                changed_global = true;
                                self.stats.delta_atoms += 1;
                            }
                        }
                    }
                    None => {
                        for row in rel.rows_from(from) {
                            if !self.nf.contains(tagged, row) {
                                self.nf.insert(tagged, row);
                                changed_global = true;
                                self.stats.delta_atoms += 1;
                            }
                        }
                    }
                }
            }
            if let Err(e) = run {
                // Keep the (consistent, committed-rounds-only) context and
                // the entry's absorbed progress before propagating.
                self.memo_ctx.insert(seed.clone(), ctx);
                if self.memo.get(seed) != Some(&entry) {
                    self.memo.insert(seed.clone(), entry);
                }
                return Err(e.into());
            }
            if !local_changed {
                break;
            }
        }

        self.memo_ctx.insert(seed.clone(), ctx);
        let stored = self.memo.get(seed);
        let entry_changed = stored != Some(&entry);
        if entry_changed {
            self.memo.insert(seed.clone(), entry.clone());
        }
        Ok((entry, entry_changed || changed_global))
    }

    /// Injects the atoms of `state` not yet recorded in `snap` into the
    /// tagged relations of `db`, and records them. Atoms whose predicate
    /// has no tag at this location are recorded but not injected — no rule
    /// can read them there.
    fn inject_state_diff(
        atoms: &AtomInterner,
        db: &mut dl::Database,
        state: &State,
        snap: &mut State,
        lookup: &FxHashMap<Pred, Pred>,
    ) {
        for id in state.iter() {
            if !snap.insert(id) {
                continue;
            }
            let (p, args) = atoms.resolve(id);
            if let Some(&tag) = lookup.get(&p) {
                db.insert(tag, args);
            }
        }
    }

    /// Injects the delta of the fixed-node slices and of the non-functional
    /// store into a local context.
    fn inject_fixed_and_nf_diff(&self, ctx: &mut LocalCtx) {
        for (p, n, tag) in self.cp.fixed_tags() {
            let state = &self.top[&n];
            let snap = ctx.injected_fixed.entry(tag).or_default();
            for id in state.iter() {
                if !snap.insert(id) {
                    continue;
                }
                let (pp, args) = self.atoms.resolve(id);
                if pp == p {
                    ctx.db.insert(tag, args);
                }
            }
        }
        for (p, rel) in self.nf.iter() {
            let cur = ctx.nf_cursors.entry(p).or_insert(0);
            for row in rel.rows_from(*cur) {
                ctx.db.insert(p, row);
            }
            *cur = rel.len();
        }
    }

    /// Per-predicate row counts of a local database: rows beyond these are
    /// the output of the next evaluation run.
    fn row_counts(db: &dl::Database) -> FxHashMap<Pred, usize> {
        db.iter().map(|(p, r)| (p, r.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Atom, FTerm, NTerm, Rule};
    use fundb_term::Var;

    struct Ctx {
        i: Interner,
    }

    impl Ctx {
        fn new() -> Self {
            Ctx { i: Interner::new() }
        }
        fn pred(&mut self, n: &str) -> Pred {
            Pred(self.i.intern(n))
        }
        fn func(&mut self, n: &str) -> Func {
            Func(self.i.intern(n))
        }
        fn var(&mut self, n: &str) -> Var {
            Var(self.i.intern(n))
        }
        fn cst(&mut self, n: &str) -> Cst {
            Cst(self.i.intern(n))
        }
    }

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    /// The paper's introductory example: Meets/Next with Tony and Jan.
    fn meets_engine(ctx: &mut Ctx) -> (Engine, Pred, Func, Cst, Cst) {
        let meets = ctx.pred("Meets");
        let next = ctx.pred("Next");
        let succ = ctx.func("succ");
        let (t, x, y) = (ctx.var("t"), ctx.var("x"), ctx.var("y"));
        let (tony, jan) = (ctx.cst("tony"), ctx.cst("jan"));

        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut ctx.i).unwrap();
        engine.solve().unwrap();
        (engine, meets, succ, tony, jan)
    }

    #[test]
    fn meets_alternates_forever() {
        let mut ctx = Ctx::new();
        let (engine, meets, succ, tony, jan) = meets_engine(&mut ctx);
        for n in 0..40usize {
            let path = vec![succ; n];
            assert_eq!(
                engine.holds(meets, &path, &[tony]),
                n % 2 == 0,
                "Meets({n}, tony)"
            );
            assert_eq!(
                engine.holds(meets, &path, &[jan]),
                n % 2 == 1,
                "Meets({n}, jan)"
            );
        }
    }

    #[test]
    fn relational_facts_are_preserved() {
        let mut ctx = Ctx::new();
        let (engine, _, _, tony, jan) = meets_engine(&mut ctx);
        let next = Pred(ctx.i.get("Next").unwrap());
        assert!(engine.holds_relational(next, &[tony, jan]));
        assert!(engine.holds_relational(next, &[jan, tony]));
        assert!(!engine.holds_relational(next, &[tony, tony]));
    }

    /// §3.5's Even example: D = {Even(0)}, Even(t) → Even(t+2).
    #[test]
    fn even_example() {
        let mut ctx = Ctx::new();
        let even = ctx.pred("Even");
        let succ = ctx.func("succ");
        let t = ctx.var("t");
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut ctx.i).unwrap();
        engine.solve().unwrap();
        for n in 0..30usize {
            assert_eq!(engine.holds(even, &vec![succ; n], &[]), n % 2 == 0, "n={n}");
        }
    }

    /// Backward flow inside the uniform region: C(t) iff A(f(t)), where A
    /// holds exactly on the f-chain.
    #[test]
    fn backward_rules_flow_down() {
        let mut ctx = Ctx::new();
        let a = ctx.pred("A");
        let c = ctx.pred("C");
        let f = ctx.func("f");
        let g = ctx.func("g");
        let s = ctx.var("s");
        let mut prog = Program::new();
        // A(s) → A(f(s)).
        prog.push(Rule::new(
            fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Var(s), vec![])],
        ));
        // A(f(s)) → C(s): backward.
        prog.push(Rule::new(
            fat(c, FTerm::Var(s), vec![]),
            vec![fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![])],
        ));
        // Mention g so it exists in the schema.
        prog.push(Rule::new(
            fat(a, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            vec![
                fat(a, FTerm::Var(s), vec![]),
                fat(a, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            ],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut ctx.i).unwrap();
        engine.solve().unwrap();
        // A on the f-chain only.
        assert!(engine.holds(a, &[f, f, f], &[]));
        assert!(!engine.holds(a, &[f, g], &[]));
        // C on the f-chain (every node whose f-child carries A).
        assert!(engine.holds(c, &[], &[]));
        assert!(engine.holds(c, &[f], &[]));
        assert!(engine.holds(c, &[f, f, f, f], &[]));
        assert!(!engine.holds(c, &[g], &[]));
        assert!(!engine.holds(c, &[f, g], &[]));
    }

    /// Sibling flow: B(g(t)) derived from A(f(t)) — the star couples the two
    /// children of `t`.
    #[test]
    fn sibling_rules_flow_across() {
        let mut ctx = Ctx::new();
        let a = ctx.pred("A");
        let b = ctx.pred("B");
        let f = ctx.func("f");
        let g = ctx.func("g");
        let s = ctx.var("s");
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Var(s), vec![])],
        ));
        // A(f(s)) → B(g(s)).
        prog.push(Rule::new(
            fat(b, FTerm::Pure(g, Box::new(FTerm::Var(s))), vec![]),
            vec![fat(a, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(a, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut ctx.i).unwrap();
        engine.solve().unwrap();
        assert!(engine.holds(b, &[g], &[]));
        assert!(engine.holds(b, &[f, g], &[]));
        assert!(engine.holds(b, &[f, f, g], &[]));
        assert!(!engine.holds(b, &[g, f], &[]));
        assert!(!engine.holds(b, &[g, g], &[]));
    }

    /// Ground facts of depth > 0 put real content in the top region.
    #[test]
    fn deep_ground_facts_seed_top_region() {
        let mut ctx = Ctx::new();
        let p = ctx.pred("P");
        let q = ctx.pred("Q");
        let f = ctx.func("f");
        let s = ctx.var("s");
        let mut prog = Program::new();
        // P(f(s)) → Q(s): backward from a fact at depth 2 to depth 1.
        prog.push(Rule::new(
            fat(q, FTerm::Var(s), vec![]),
            vec![fat(p, FTerm::Pure(f, Box::new(FTerm::Var(s))), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(p, FTerm::from_path(&[f, f]), vec![]));
        let mut engine = Engine::build(&prog, &db, &mut ctx.i).unwrap();
        engine.solve().unwrap();
        assert!(engine.holds(p, &[f, f], &[]));
        assert!(engine.holds(q, &[f], &[]));
        assert!(!engine.holds(q, &[], &[]));
        assert!(!engine.holds(q, &[f, f], &[]));
    }

    /// Cursors agree with state_of_path.
    #[test]
    fn cursors_track_paths() {
        let mut ctx = Ctx::new();
        let (engine, _, succ, _, _) = meets_engine(&mut ctx);
        let mut cur = engine.root_cursor();
        for n in 0..10 {
            let direct = engine.state_of_path(&vec![succ; n]);
            assert_eq!(engine.cursor_state(&cur), direct, "depth {n}");
            cur = engine.child_cursor(&cur, succ);
        }
    }

    /// Unknown constants or predicates simply do not hold (Prop 2.1: the
    /// LFP uses only symbols of Z ∪ D).
    #[test]
    fn unknown_symbols_do_not_hold() {
        let mut ctx = Ctx::new();
        let (engine, meets, succ, _, _) = meets_engine(&mut ctx);
        let ghost = ctx.cst("ghost");
        assert!(!engine.holds(meets, &[succ], &[ghost]));
    }
}
