//! Compilation of pure normal programs into star-local Datalog.
//!
//! After normalization (Appendix) and the mixed→pure transformation (§2.4),
//! every rule mentions at most one functional variable `s`, and every
//! functional term in it is `s`, `f(s)` for a pure symbol `f`, or a ground
//! term. Grounding `s := t` therefore touches only the "star" of the node
//! `t` in the term tree — `t` itself, its children `f(t)`, a fixed set of
//! ground nodes, and the non-functional store. The engine exploits this by
//! evaluating each rule as a *function-free Datalog rule* over
//! location-tagged predicates:
//!
//! * `P@here`    — `P`'s slice at the current node,
//! * `P@+f`      — `P`'s slice at the child `f(t)`,
//! * `P@=term`   — `P`'s slice at a fixed ground node (depth ≤ c),
//! * plain `R`   — a non-functional predicate.
//!
//! [`CompiledProgram`] holds the tagged rules (split into *star rules*,
//! which contain the functional variable and fire at every node, and *fixed
//! rules*, which mention only ground nodes and fire once), the database
//! seeds, and the tag maps the engine uses to assemble and read back local
//! evaluations.

use crate::error::Result;
use crate::gendb::DataParams;
use crate::program::{Atom, FTerm, NTerm, Schema};
use crate::pure::PureProgram;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FuncOrder, FxHashMap, Interner, NodeId, Pred, TermTree};

/// Where a functional atom lives relative to the node a rule fires at.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Loc {
    /// At the node itself (`s`).
    Here,
    /// At the child `f(s)`.
    Child(Func),
    /// At a fixed ground node of the top region.
    Fixed(NodeId),
}

/// A compiled pure normal program, ready for the engine.
#[derive(Clone)]
pub struct CompiledProgram {
    /// Schema of the pure program.
    pub schema: Schema,
    /// Data-complexity parameters (§2.5).
    pub params: DataParams,
    /// The order of pure function symbols (defines `≺`, §3.4).
    pub funcs: FuncOrder,
    /// `c`: depth of the largest ground functional term.
    pub c: usize,
    /// Term tree holding the ground nodes mentioned by rules and facts.
    pub tree: TermTree,
    /// Tagged rules containing the functional variable: fire at every node.
    pub star_rules: Vec<dl::Rule>,
    /// Tagged rules with no functional variable: fire once, over fixed
    /// nodes and non-functional predicates.
    pub fixed_rules: Vec<dl::Rule>,
    /// Predicate → (rule, body position) index over [`Self::star_rules`]:
    /// the positions a semi-naive delta of that predicate can feed.
    pub star_plan: dl::DeltaPlan,
    /// Same index over [`Self::fixed_rules`].
    pub fixed_plan: dl::DeltaPlan,
    /// Functional database facts: `(node, P, ā)`.
    pub seeds: Vec<(NodeId, Pred, Box<[Cst]>)>,
    /// Relational database facts.
    pub nf_facts: Vec<(Pred, Box<[Cst]>)>,
    here_tag: FxHashMap<Pred, Pred>,
    child_tag: FxHashMap<(Pred, Func), Pred>,
    fixed_tag: FxHashMap<(Pred, NodeId), Pred>,
    untag: FxHashMap<Pred, (Pred, Loc)>,
}

impl CompiledProgram {
    /// Compiles a pure normal program. Tag names are interned into
    /// `interner` (they contain `@`, which the concrete syntax forbids, so
    /// they cannot collide with user predicates).
    pub fn compile(pure: &PureProgram, interner: &mut Interner) -> Result<CompiledProgram> {
        assert!(
            pure.program.is_normal(),
            "CompiledProgram::compile requires a normal program; run normalize() first"
        );
        let schema = pure.schema.clone();
        let params = DataParams::of(&schema);
        let funcs = FuncOrder::new(schema.pure_syms.iter().copied());
        let c = schema.max_ground_depth;

        let mut cp = CompiledProgram {
            schema,
            params,
            funcs,
            c,
            tree: TermTree::new(),
            star_rules: Vec::new(),
            fixed_rules: Vec::new(),
            star_plan: dl::DeltaPlan::default(),
            fixed_plan: dl::DeltaPlan::default(),
            seeds: Vec::new(),
            nf_facts: Vec::new(),
            here_tag: FxHashMap::default(),
            child_tag: FxHashMap::default(),
            fixed_tag: FxHashMap::default(),
            untag: FxHashMap::default(),
        };

        for rule in &pure.program.rules {
            let has_fvar = !rule.functional_vars().is_empty();
            let head = cp.compile_atom(&rule.head, interner);
            let body = rule
                .body
                .iter()
                .map(|a| cp.compile_atom(a, interner))
                .collect();
            let compiled = dl::Rule::new(head, body);
            if has_fvar {
                cp.star_rules.push(compiled);
            } else {
                cp.fixed_rules.push(compiled);
            }
        }
        cp.star_plan = dl::DeltaPlan::new(&cp.star_rules);
        cp.fixed_plan = dl::DeltaPlan::new(&cp.fixed_rules);

        // Invariant: `to_pure` has already rejected non-ground facts and
        // instantiated mixed symbols, so every fact below has a pure
        // functional path and constant-only arguments.
        for fact in &pure.db.facts {
            match fact {
                Atom::Functional { pred, fterm, args } => {
                    let path = fterm
                        .pure_path()
                        .expect("facts are ground and pure after to_pure()");
                    let node = cp.tree.intern_path(&path);
                    let consts: Box<[Cst]> = args
                        .iter()
                        .map(|a| a.as_const().expect("facts are ground"))
                        .collect();
                    cp.seeds.push((node, *pred, consts));
                }
                Atom::Relational { pred, args } => {
                    let consts: Box<[Cst]> = args
                        .iter()
                        .map(|a| a.as_const().expect("facts are ground"))
                        .collect();
                    cp.nf_facts.push((*pred, consts));
                }
            }
        }

        Ok(cp)
    }

    /// The tagged predicate for `P` at a location, if the program mentions
    /// that combination.
    pub fn tag_of(&self, pred: Pred, loc: Loc) -> Option<Pred> {
        match loc {
            Loc::Here => self.here_tag.get(&pred).copied(),
            Loc::Child(f) => self.child_tag.get(&(pred, f)).copied(),
            Loc::Fixed(n) => self.fixed_tag.get(&(pred, n)).copied(),
        }
    }

    /// Inverse of the tag maps: `(original predicate, location)` for a
    /// tagged predicate, or `None` for a plain (relational) predicate.
    pub fn untag(&self, tagged: Pred) -> Option<(Pred, Loc)> {
        self.untag.get(&tagged).copied()
    }

    /// All `(pred, node, tag)` fixed-location tags (ground nodes mentioned
    /// in rules).
    pub fn fixed_tags(&self) -> impl Iterator<Item = (Pred, NodeId, Pred)> + '_ {
        self.fixed_tag.iter().map(|(&(p, n), &t)| (p, n, t))
    }

    /// All `(pred, tag)` here-tags.
    pub fn here_tags(&self) -> impl Iterator<Item = (Pred, Pred)> + '_ {
        self.here_tag.iter().map(|(&p, &t)| (p, t))
    }

    /// All `(pred, func, tag)` child-tags.
    pub fn child_tags(&self) -> impl Iterator<Item = (Pred, Func, Pred)> + '_ {
        self.child_tag.iter().map(|(&(p, f), &t)| (p, f, t))
    }

    fn compile_atom(&mut self, atom: &Atom, interner: &mut Interner) -> dl::Atom {
        let args: Vec<dl::Term> = atom
            .args()
            .iter()
            .map(|a| match a {
                NTerm::Var(v) => dl::Term::Var(*v),
                NTerm::Const(c) => dl::Term::Const(*c),
            })
            .collect();
        match atom {
            Atom::Relational { pred, .. } => dl::Atom::new(*pred, args),
            Atom::Functional { pred, fterm, .. } => {
                let loc = match fterm {
                    FTerm::Var(_) => Loc::Here,
                    FTerm::Pure(f, inner) if matches!(**inner, FTerm::Var(_)) => Loc::Child(*f),
                    other => {
                        let path = other.pure_path().unwrap_or_else(|| {
                            panic!("non-normal functional term survived normalization")
                        });
                        Loc::Fixed(self.tree.intern_path(&path))
                    }
                };
                let tagged = self.tag(*pred, loc, interner);
                dl::Atom::new(tagged, args)
            }
        }
    }

    fn tag(&mut self, pred: Pred, loc: Loc, interner: &mut Interner) -> Pred {
        let existing = self.tag_of(pred, loc);
        if let Some(t) = existing {
            return t;
        }
        let name = match loc {
            Loc::Here => format!("{}@here", interner.resolve(pred.sym())),
            Loc::Child(f) => format!(
                "{}@+{}",
                interner.resolve(pred.sym()),
                interner.resolve(f.sym())
            ),
            Loc::Fixed(n) => format!(
                "{}@={}",
                interner.resolve(pred.sym()),
                n.index() // stable within this compilation
            ),
        };
        let t = Pred(interner.fresh(&name));
        match loc {
            Loc::Here => {
                self.here_tag.insert(pred, t);
            }
            Loc::Child(f) => {
                self.child_tag.insert((pred, f), t);
            }
            Loc::Fixed(n) => {
                self.fixed_tag.insert((pred, n), t);
            }
        }
        self.untag.insert(t, (pred, loc));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Database, Program, Rule};
    use crate::pure::to_pure;
    use fundb_term::Var;

    /// Compiles `P(s) → P(f(s))` with a seed `P(0)`.
    fn simple() -> (Interner, CompiledProgram, Pred, Func) {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: p,
                fterm: FTerm::Pure(f, Box::new(FTerm::Var(s))),
                args: vec![],
            },
            vec![Atom::Functional {
                pred: p,
                fterm: FTerm::Var(s),
                args: vec![],
            }],
        ));
        let mut db = Database::new();
        db.facts.push(Atom::Functional {
            pred: p,
            fterm: FTerm::Zero,
            args: vec![],
        });
        let pure = to_pure(&prog, &db, &mut i).unwrap();
        let cp = CompiledProgram::compile(&pure, &mut i).unwrap();
        (i, cp, p, f)
    }

    #[test]
    fn star_rule_gets_here_and_child_tags() {
        let (_, cp, p, f) = simple();
        assert_eq!(cp.star_rules.len(), 1);
        assert!(cp.fixed_rules.is_empty());
        let here = cp.tag_of(p, Loc::Here).unwrap();
        let child = cp.tag_of(p, Loc::Child(f)).unwrap();
        assert_eq!(cp.untag(here), Some((p, Loc::Here)));
        assert_eq!(cp.untag(child), Some((p, Loc::Child(f))));
        let rule = &cp.star_rules[0];
        assert_eq!(rule.head.pred, child);
        assert_eq!(rule.body[0].pred, here);
    }

    #[test]
    fn seeds_are_collected_at_nodes() {
        let (_, cp, p, _) = simple();
        assert_eq!(cp.seeds.len(), 1);
        let (node, pred, args) = &cp.seeds[0];
        assert_eq!(*node, cp.tree.root());
        assert_eq!(*pred, p);
        assert!(args.is_empty());
        assert_eq!(cp.c, 0);
    }

    #[test]
    fn ground_terms_become_fixed_tags() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let f = Func(i.intern("f"));
        let s = Var(i.intern("s"));
        // P(f(0)), Q(s) → Q(f(s)).
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Functional {
                pred: q,
                fterm: FTerm::Pure(f, Box::new(FTerm::Var(s))),
                args: vec![],
            },
            vec![
                Atom::Functional {
                    pred: p,
                    fterm: FTerm::from_path(&[f]),
                    args: vec![],
                },
                Atom::Functional {
                    pred: q,
                    fterm: FTerm::Var(s),
                    args: vec![],
                },
            ],
        ));
        let pure = to_pure(&prog, &Database::new(), &mut i).unwrap();
        let cp = CompiledProgram::compile(&pure, &mut i).unwrap();
        assert_eq!(cp.c, 1);
        let fixed: Vec<_> = cp.fixed_tags().collect();
        assert_eq!(fixed.len(), 1);
        assert_eq!(fixed[0].0, p);
    }

    #[test]
    fn relational_rules_stay_plain() {
        let mut i = Interner::new();
        let r = Pred(i.intern("R"));
        let t = Pred(i.intern("T"));
        let x = Var(i.intern("x"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            Atom::Relational {
                pred: t,
                args: vec![NTerm::Var(x)],
            },
            vec![Atom::Relational {
                pred: r,
                args: vec![NTerm::Var(x)],
            }],
        ));
        let pure = to_pure(&prog, &Database::new(), &mut i).unwrap();
        let cp = CompiledProgram::compile(&pure, &mut i).unwrap();
        assert_eq!(cp.fixed_rules.len(), 1);
        assert!(cp.untag(cp.fixed_rules[0].head.pred).is_none());
    }
}
