//! The read-serving layer: frozen specifications, canonical-path
//! memoization, and parallel batch answering.
//!
//! The paper's product is a *finite* representation of an *infinite* least
//! fixpoint that can be queried forever after the one-off construction
//! (§3.4/§3.5). The construction side ([`GraphSpec::from_engine`],
//! [`EqSpec::from_graph`]) is mutable and single-owner; this module seals a
//! finished specification into an immutable, `Arc`-shareable snapshot whose
//! every read takes `&self`:
//!
//! * [`FrozenGraphSpec`] — the graph specification `(B, F)` with the
//!   successor mappings re-laid-out as one dense `nodes × funcs` array, so
//!   the `Link` walk of a membership query is a lock-free table scan
//!   instead of per-step hash lookups; plus a hash-consed [`PathTrie`] memo
//!   mapping `[Func]` prefixes to representative nodes (repeated or
//!   overlapping lookups cost O(unseen suffix)), and a lock-striped answer
//!   cache keyed by `(Pred, canonical representative, args)`.
//! * [`FrozenEqSpec`] — the equational specification `(B, R)` with the
//!   congruence closure precomputed into a class-transition DFA
//!   ([`fundb_congruence::FrozenClosure`]) and all union-find paths
//!   compressed at freeze time, removing the `&mut self` poison from
//!   [`EqSpec::holds`]/[`EqSpec::congruent`].
//!
//! **Cache-key soundness.** The answer cache is keyed by the canonical
//! representative, not the queried path: `P(t₀, ā) ∈ L` depends on `t₀`
//! only through its cluster of the state congruence `≅` (Theorem 3.1 — all
//! members of a cluster carry the same slice `L[t]`), and the successor
//! walk maps every path to its cluster's representative. Distinct paths in
//! the same cluster therefore *must* share a cache line, and paths in
//! different clusters never collide because their representatives differ.
//! The cache stores only `(key → bool)` pairs that [`FrozenGraphSpec`]
//! itself computed from immutable data, so a hit is always byte-identical
//! to a recomputation — caching affects throughput, never answers.
//!
//! **Batching.** [`FrozenGraphSpec::answer_batch`] fans a query slice out
//! over `std::thread::scope` workers, each writing a disjoint input-ordered
//! chunk of the output vector — results are byte-identical at any thread
//! count (the determinism contract of the parallel fixpoint rounds, held
//! to on the read path). Governed variants poll
//! [`Governor::checkpoint`](dl::Governor::checkpoint) at chunk boundaries
//! and surface trips as [`dl::EvalError`] without poisoning any cache
//! shard: every shard lock is taken through
//! [`PoisonError::into_inner`], so a panicking worker can never wedge the
//! cache for later readers.

use crate::eqspec::EqSpec;
use crate::gendb::AtomInterner;
use crate::graphspec::{GraphSpec, SpecNodeId};
use crate::state::State;
use fundb_congruence::FrozenClosure;
use fundb_datalog as dl;
use fundb_term::{Cst, Func, FxHashMap, FxHasher, PathTrie, Pred};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

/// Number of answer-cache shards (a power of two; the shard is the low
/// bits of the key hash). Striping bounds contention: concurrent readers
/// only collide when their keys share a shard.
const CACHE_SHARDS: usize = 16;

/// Sentinel "representative" for relational (non-functional) cache keys;
/// unreachable as a real node index (node interning fails first).
const REL_REP: u32 = u32::MAX;

/// How many queries a governed batch worker answers between governor
/// checkpoints.
const GOVERNED_CHUNK: usize = 64;

/// One yes/no membership question against a frozen specification.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ServeQuery {
    /// Functional membership `P(t₀, ā) ∈ L`, with `t₀` as a symbol path.
    Member {
        /// The predicate.
        pred: Pred,
        /// Symbol path of the ground functional term (innermost first).
        path: Vec<Func>,
        /// Non-functional argument tuple.
        args: Vec<Cst>,
    },
    /// Relational membership `Q(ā) ∈ L`.
    Relational {
        /// The predicate.
        pred: Pred,
        /// The argument tuple.
        args: Vec<Cst>,
    },
}

/// Cumulative answer-cache counters of a frozen specification.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered from the striped cache.
    pub hits: u64,
    /// Queries computed and inserted (first sight of their key).
    pub misses: u64,
    /// Cache entries dropped by [`FrozenGraphSpec::patch_retraction`]
    /// (entries outside the recomputed cone are never touched).
    pub patches: u64,
}

/// One cached answer: the owned key confirms hash-bucket candidates. The
/// `u64` component is the *adornment* of the goal (bound-argument bitmask,
/// see [`dl::magic`]): membership probes are fully ground (all-bound), and
/// keying on the adorned goal keeps warm serving composable with
/// demand-driven answering, which caches per binding pattern.
type CacheEntry = ((Pred, u32, u64, Box<[Cst]>), bool);

/// An immutable, shareable graph specification `(B, F)` snapshot.
///
/// All methods take `&self`; the only interior locking on the hot hit path
/// is the striped answer cache (the successor walk itself is a lock-free
/// dense-array scan). Wrap it in an `Arc` to share across threads.
pub struct FrozenGraphSpec {
    spec: GraphSpec,
    /// Number of function symbols (row stride of `dense_succ`).
    nfuncs: usize,
    /// `rank[f.sym().index()]` = column of `f`, or `u32::MAX` for symbols
    /// outside the program's vocabulary.
    rank: Vec<u32>,
    /// Row-major `nodes × funcs` successor table:
    /// `dense_succ[node * nfuncs + rank(f)]` is the successor node index.
    dense_succ: Vec<u32>,
    /// Hash-consed `[Func]`-prefix → representative-node memo.
    memo: RwLock<PathTrie>,
    /// Lock-striped answer cache: shard by key hash, hash-bucket entries
    /// confirmed against the owned key.
    shards: Vec<Mutex<FxHashMap<u64, Vec<CacheEntry>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotone patch epoch: bumped by every
    /// [`patch_retraction`](Self::patch_retraction), so serving layers can
    /// tag answers (or downstream caches) with the spec version they were
    /// computed against and detect staleness without locking a shard.
    epoch: AtomicU64,
    /// Cache entries dropped across all patches.
    patched: AtomicU64,
}

impl std::fmt::Debug for FrozenGraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrozenGraphSpec({:?}, memo {} prefixes, cache {} hits / {} misses)",
            self.spec,
            self.memo
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl GraphSpec {
    /// Seals the specification into an immutable, shareable snapshot.
    pub fn freeze(self) -> FrozenGraphSpec {
        match FrozenGraphSpec::build(self, None) {
            Ok(frozen) => frozen,
            Err(_) => unreachable!("ungoverned freeze cannot trip a budget"),
        }
    }

    /// Governed variant of [`GraphSpec::freeze`]: polls the governor's
    /// cancellation/deadline gate while building the dense successor table
    /// and returns [`dl::EvalError::BudgetExhausted`] on a trip.
    pub fn freeze_governed(
        self,
        governor: &dl::Governor,
    ) -> Result<FrozenGraphSpec, dl::EvalError> {
        FrozenGraphSpec::build(self, Some(governor))
    }
}

impl FrozenGraphSpec {
    fn build(spec: GraphSpec, governor: Option<&dl::Governor>) -> Result<Self, dl::EvalError> {
        let nfuncs = spec.funcs.len();
        let max_sym = spec
            .funcs
            .symbols()
            .iter()
            .map(|f| f.sym().index())
            .max()
            .map_or(0, |m| m + 1);
        let mut rank = vec![u32::MAX; max_sym];
        for (r, &f) in spec.funcs.symbols().iter().enumerate() {
            rank[f.sym().index()] = r as u32;
        }
        let n = spec.nodes.len();
        let mut dense_succ = vec![0u32; n * nfuncs];
        for i in 0..n {
            if let Some(gov) = governor {
                if i % 1024 == 0 {
                    checkpoint(gov)?;
                }
            }
            let id = SpecNodeId::from_dense_index(i);
            for (r, &f) in spec.funcs.symbols().iter().enumerate() {
                // The successor graph is total on nodes × funcs (Algorithm Q
                // invariant), so the lookup cannot miss.
                dense_succ[i * nfuncs + r] = spec.successor[&(id, f)].index() as u32;
            }
        }
        Ok(FrozenGraphSpec {
            spec,
            nfuncs,
            rank,
            dense_succ,
            memo: RwLock::new(PathTrie::new(0)),
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            patched: AtomicU64::new(0),
        })
    }

    /// The sealed specification (for structural accessors, rendering, and
    /// compiled query evaluation).
    pub fn spec(&self) -> &GraphSpec {
        &self.spec
    }

    /// Unseals the snapshot, returning the owned specification (the memo
    /// and cache are discarded).
    pub fn thaw(self) -> GraphSpec {
        self.spec
    }

    /// Persists the sealed specification to `path` in the versioned binary
    /// spec format ([`crate::spec_io::SPEC_BIN_MAGIC`]), so a served spec
    /// can be durably snapshotted without thawing the live snapshot. The
    /// memo and answer cache are *not* written — they are derived data a
    /// reload rebuilds on demand.
    pub fn save_binary(
        &self,
        path: &str,
        interner: &fundb_term::Interner,
    ) -> crate::error::Result<()> {
        let bundle = crate::spec_io::SpecBundle {
            spec: self.spec.clone(),
            sym_map: FxHashMap::default(),
        };
        crate::spec_io::write_spec_file_binary(path, &bundle, interner)
    }

    /// Loads a specification file (binary or text, auto-detected) and seals
    /// it for serving. Inverse of [`FrozenGraphSpec::save_binary`]; any
    /// mixed→pure symbol map stored alongside the spec is dropped (use
    /// [`crate::spec_io::read_spec_file_frozen`] to keep it).
    pub fn load_binary(
        path: &str,
        interner: &mut fundb_term::Interner,
    ) -> crate::error::Result<Self> {
        Ok(crate::spec_io::read_spec_file(path, interner)?
            .spec
            .freeze())
    }

    /// Cumulative answer-cache counters.
    pub fn serve_stats(&self) -> ServeStats {
        ServeStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            patches: self.patched.load(Ordering::Relaxed),
        }
    }

    /// The current patch epoch (0 at freeze; +1 per
    /// [`patch_retraction`](Self::patch_retraction)).
    pub fn patch_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Patches the sealed snapshot after a completed incremental
    /// retraction in the backing relational database, instead of
    /// re-freezing: applies the retraction's *net* row deletions (the
    /// over-delete set minus re-derived survivors) to the sealed
    /// relational store and invalidates only the answer-cache entries
    /// whose predicate lies in the recomputed cone. The functional side
    /// (successor table, node states, path memo) depends on the program
    /// alone, so cached entries outside the cone — including every
    /// `Member` answer under an untouched predicate — stay warm and
    /// remain byte-identical to recomputation. Bumps the patch epoch;
    /// returns the number of cache entries dropped.
    ///
    /// Takes `&mut self` deliberately: patching is a maintenance-window
    /// operation (`Arc::get_mut`, or before sharing), so readers never
    /// observe a half-applied cone.
    pub fn patch_retraction(&mut self, outcome: &dl::RetractOutcome) -> usize {
        let net = outcome.net_deleted();
        let mut cone: Vec<Pred> = Vec::new();
        for (p, row) in &net {
            if let Some(rel) = self.spec.nf.relation(*p) {
                let arity = rel.arity();
                if arity == row.len() {
                    self.spec.nf.relation_mut(*p, arity).retract_tuple(row);
                }
            }
            if !cone.contains(p) {
                cone.push(*p);
            }
        }
        let mut dropped = 0usize;
        if !cone.is_empty() {
            for shard in &self.shards {
                let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                for entries in guard.values_mut() {
                    let before = entries.len();
                    entries.retain(|((p, _, _, _), _)| !cone.contains(p));
                    dropped += before - entries.len();
                }
                guard.retain(|_, entries| !entries.is_empty());
            }
        }
        self.patched.fetch_add(dropped as u64, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed);
        dropped
    }

    /// Number of memoized path prefixes (including the empty one).
    pub fn memo_len(&self) -> usize {
        self.memo
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Dense representative-node index of a path, or `None` when the path
    /// uses a symbol outside the program's vocabulary. Lock-free: one dense
    /// array read per symbol.
    #[inline]
    fn rep_index(&self, path: &[Func]) -> Option<u32> {
        let mut cur = 0u32;
        for &f in path {
            let r = *self.rank.get(f.sym().index())?;
            if r == u32::MAX {
                return None;
            }
            cur = self.dense_succ[cur as usize * self.nfuncs + r as usize];
        }
        Some(cur)
    }

    /// The representative of a term — the `Link` walk of the paper — as a
    /// lock-free dense-array scan.
    pub fn representative_of(&self, path: &[Func]) -> Option<SpecNodeId> {
        self.rep_index(path)
            .map(|i| SpecNodeId::from_dense_index(i as usize))
    }

    /// Memoized representative lookup: the longest previously-seen prefix
    /// is resolved through the hash-consed trie, so the walk only pays for
    /// the unseen suffix. Prefer this for workloads with many overlapping
    /// long paths; for one-off short paths [`Self::representative_of`]
    /// avoids the read lock.
    pub fn representative_memoized(&self, path: &[Func]) -> Option<SpecNodeId> {
        {
            let memo = self.memo.read().unwrap_or_else(PoisonError::into_inner);
            let (node, consumed) = memo.longest_prefix(path);
            if consumed == path.len() {
                return Some(SpecNodeId::from_dense_index(memo.value(node) as usize));
            }
        }
        let mut memo = self.memo.write().unwrap_or_else(PoisonError::into_inner);
        // Re-walk under the write lock: the trie may have grown since.
        let (mut node, consumed) = memo.longest_prefix(path);
        let mut cur = memo.value(node);
        for &f in &path[consumed..] {
            let r = *self.rank.get(f.sym().index())?;
            if r == u32::MAX {
                return None;
            }
            cur = self.dense_succ[cur as usize * self.nfuncs + r as usize];
            node = memo.child(node, f, cur);
        }
        Some(SpecNodeId::from_dense_index(cur as usize))
    }

    /// Yes-no membership `P(t₀, ā) ∈ L`, answered through the striped
    /// cache (keyed by the canonical representative of `t₀`, so every
    /// member of a cluster shares one cache line).
    pub fn holds(&self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(rep) = self.rep_index(path) else {
            return false; // outside the vocabulary: not in L (Prop. 2.1)
        };
        self.cached(pred, rep, dl::magic::all_bound(args.len()), args, |spec| {
            spec.atoms
                .get(pred, args)
                .is_some_and(|id| spec.nodes[rep as usize].state.contains(id))
        })
    }

    /// Yes-no membership for a relational tuple, through the same cache
    /// (under a sentinel representative).
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.cached(
            pred,
            REL_REP,
            dl::magic::all_bound(args.len()),
            args,
            |spec| spec.nf.contains(pred, args),
        )
    }

    /// Answers one query.
    pub fn answer(&self, query: &ServeQuery) -> bool {
        match query {
            ServeQuery::Member { pred, path, args } => self.holds(*pred, path, args),
            ServeQuery::Relational { pred, args } => self.holds_relational(*pred, args),
        }
    }

    /// Answers a batch of queries in parallel, one output per input in
    /// input order. Workers own disjoint chunks of the output, so the
    /// result is byte-identical at any worker count; the shared cache
    /// affects throughput only.
    pub fn answer_batch(&self, queries: &[ServeQuery]) -> Vec<bool> {
        self.answer_batch_threads(queries, dl::default_threads())
    }

    /// [`Self::answer_batch`] with an explicit worker count.
    pub fn answer_batch_threads(&self, queries: &[ServeQuery], threads: usize) -> Vec<bool> {
        match self.batch_inner(queries, threads, None) {
            Ok(answers) => answers,
            Err(_) => unreachable!("ungoverned batch cannot trip a budget"),
        }
    }

    /// Governed batch answering: workers poll the governor's
    /// cancellation/deadline gate every [`GOVERNED_CHUNK`] queries; a trip
    /// discards the batch and returns [`dl::EvalError::BudgetExhausted`].
    /// The cache is left fully usable (completed entries stay).
    pub fn answer_batch_governed(
        &self,
        queries: &[ServeQuery],
        governor: &dl::Governor,
        threads: usize,
    ) -> Result<Vec<bool>, dl::EvalError> {
        self.batch_inner(queries, threads, Some(governor))
    }

    fn batch_inner(
        &self,
        queries: &[ServeQuery],
        threads: usize,
        governor: Option<&dl::Governor>,
    ) -> Result<Vec<bool>, dl::EvalError> {
        if let Some(gov) = governor {
            checkpoint(gov)?;
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let mut answers = vec![false; queries.len()];
        let workers = threads.clamp(1, queries.len());
        let chunk = queries.len().div_ceil(workers);
        let mut tripped: Option<dl::Resource> = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .zip(answers.chunks_mut(chunk))
                .map(|(qs, outs)| {
                    s.spawn(move || -> Result<(), dl::Resource> {
                        for (i, (q, out)) in qs.iter().zip(outs.iter_mut()).enumerate() {
                            if let Some(gov) = governor {
                                if i % GOVERNED_CHUNK == 0 {
                                    gov.checkpoint()?;
                                }
                            }
                            *out = self.answer(q);
                        }
                        Ok(())
                    })
                })
                .collect();
            // Join in spawn order so the reported resource is the first
            // tripping worker's by input position, not by race arrival.
            for h in handles {
                if let Err(resource) = h.join().expect("serve workers do not panic") {
                    tripped.get_or_insert(resource);
                }
            }
        });
        match tripped {
            Some(resource) => Err(dl::EvalError::BudgetExhausted {
                resource,
                partial: dl::EvalStats::default(),
            }),
            None => Ok(answers),
        }
    }

    /// Looks the adorned goal `(pred, rep, adorn, args)` up in the striped
    /// cache, computing and inserting via `compute` on first sight. Shard
    /// locks are recovered from poisoning, so a panicked worker cannot
    /// wedge the cache.
    fn cached(
        &self,
        pred: Pred,
        rep: u32,
        adorn: u64,
        args: &[Cst],
        compute: impl FnOnce(&GraphSpec) -> bool,
    ) -> bool {
        let mut hasher = FxHasher::default();
        pred.hash(&mut hasher);
        rep.hash(&mut hasher);
        adorn.hash(&mut hasher);
        args.hash(&mut hasher);
        let h = hasher.finish();
        let shard = &self.shards[h as usize & (CACHE_SHARDS - 1)];
        {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(entries) = guard.get(&h) {
                for ((p, r, ad, a), ans) in entries {
                    if *p == pred && *r == rep && *ad == adorn && a.as_ref() == args {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return *ans;
                    }
                }
            }
        }
        // Miss: compute outside the lock (the computation only reads
        // immutable data), then insert if no racing worker beat us to it.
        let ans = compute(&self.spec);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        let entries = guard.entry(h).or_default();
        if !entries
            .iter()
            .any(|((p, r, ad, a), _)| *p == pred && *r == rep && *ad == adorn && a.as_ref() == args)
        {
            entries.push(((pred, rep, adorn, args.to_vec().into_boxed_slice()), ans));
        }
        ans
    }
}

/// An immutable, shareable equational specification `(B, R)` snapshot:
/// membership and congruence tests take `&self` (the mutable procedure's
/// lazy term interning is replaced by the frozen closure's canonical
/// `(class, suffix)` walk).
#[derive(Clone)]
pub struct FrozenEqSpec {
    /// Depth of the largest ground term (`c`).
    c: usize,
    /// Slices of the shallow (depth ≤ c) representatives, by exact path.
    shallow: FxHashMap<Box<[Func]>, State>,
    /// Union of the slices of the deep representatives in each congruence
    /// class of the frozen closure. (Distinct representatives normally have
    /// distinct classes; the union makes the map correct regardless,
    /// mirroring the mutable `any()` over candidates.)
    deep: FxHashMap<u32, State>,
    /// The frozen congruence closure of `R`.
    closure: FrozenClosure,
    atoms: AtomInterner,
    nf: dl::Database,
}

impl EqSpec {
    /// Seals the specification: interns every deep representative into a
    /// copy of the closure, freezes it (full union-find compression), and
    /// indexes the primary database for `&self` lookups.
    pub fn freeze(&self) -> FrozenEqSpec {
        let mut cc = self.closure().clone();
        let deep_nodes: Vec<(fundb_term::NodeId, &State)> = self
            .primary
            .iter()
            .filter(|(t, _)| t.len() > self.c)
            .map(|(t, s)| (cc.term(t), s))
            .collect();
        let closure = cc.freeze();
        let mut deep: FxHashMap<u32, State> = FxHashMap::default();
        for (n, s) in deep_nodes {
            deep.entry(closure.class_of(n)).or_default().union_with(s);
        }
        let shallow = self
            .primary
            .iter()
            .filter(|(t, _)| t.len() <= self.c)
            .map(|(t, s)| (t.clone().into_boxed_slice(), s.clone()))
            .collect();
        FrozenEqSpec {
            c: self.c,
            shallow,
            deep,
            closure,
            atoms: self.atoms.clone(),
            nf: self.nf.clone(),
        }
    }
}

impl FrozenEqSpec {
    /// Yes-no membership `P(t₀, ā) ∈ L` — same answers as the mutable
    /// [`EqSpec::holds`], by `&self`: shallow terms are exact-path lookups;
    /// a deep term holds iff its canonical walk consumes the whole path
    /// (otherwise it is congruent to no interned representative) and the
    /// reached class carries the atom.
    pub fn holds(&self, pred: Pred, path: &[Func], args: &[Cst]) -> bool {
        let Some(id) = self.atoms.get(pred, args) else {
            return false;
        };
        if path.len() <= self.c {
            return self.shallow.get(path).is_some_and(|s| s.contains(id));
        }
        let canon = self.closure.canon_path(path);
        if canon.consumed != path.len() {
            return false;
        }
        self.deep.get(&canon.class).is_some_and(|s| s.contains(id))
    }

    /// Yes-no membership for a relational tuple.
    pub fn holds_relational(&self, pred: Pred, args: &[Cst]) -> bool {
        self.nf.contains(pred, args)
    }

    /// Whether two ground terms are congruent under `Cl(R)` — same answers
    /// as the mutable [`EqSpec::congruent`], by `&self`.
    pub fn congruent(&self, a: &[Func], b: &[Func]) -> bool {
        self.closure.congruent_paths(a, b)
    }

    /// Number of congruence classes in the frozen closure.
    pub fn class_count(&self) -> usize {
        self.closure.class_count()
    }

    /// Equational-spec counterpart of
    /// [`FrozenGraphSpec::patch_retraction`]: applies a completed
    /// retraction's net row deletions to the sealed relational store.
    /// The congruence side (closure, shallow/deep slices) depends on the
    /// program alone and is untouched; there is no answer cache here, so
    /// only the rows move. Returns the number of rows retracted.
    pub fn patch_retraction(&mut self, outcome: &dl::RetractOutcome) -> usize {
        let mut dropped = 0usize;
        for (p, row) in outcome.net_deleted() {
            if let Some(rel) = self.nf.relation(p) {
                let arity = rel.arity();
                if arity == row.len() && self.nf.relation_mut(p, arity).retract_tuple(row).is_some()
                {
                    dropped += 1;
                }
            }
        }
        dropped
    }
}

/// Maps a governor checkpoint trip to the serving layer's error shape.
fn checkpoint(gov: &dl::Governor) -> Result<(), dl::EvalError> {
    gov.checkpoint()
        .map_err(|resource| dl::EvalError::BudgetExhausted {
            resource,
            partial: dl::EvalStats::default(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::program::{Atom, Database, FTerm, NTerm, Program, Rule};
    use fundb_term::{Interner, Var};

    fn fat(p: Pred, ft: FTerm, args: Vec<NTerm>) -> Atom {
        Atom::Functional {
            pred: p,
            fterm: ft,
            args,
        }
    }

    /// The §3.5 Even lasso: Even(t) → Even(t+2), Even(0).
    fn even_spec() -> (Interner, GraphSpec, Pred, Func) {
        let mut i = Interner::new();
        let even = Pred(i.intern("Even"));
        let succ = Func(i.intern("+1"));
        let t = Var(i.intern("t"));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                even,
                FTerm::Pure(succ, Box::new(FTerm::Pure(succ, Box::new(FTerm::Var(t))))),
                vec![],
            ),
            vec![fat(even, FTerm::Var(t), vec![])],
        ));
        let mut db = Database::new();
        db.facts.push(fat(even, FTerm::Zero, vec![]));
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let spec = GraphSpec::from_engine(&mut engine).unwrap();
        (i, spec, even, succ)
    }

    #[test]
    fn frozen_graph_spec_answers_match_membership() {
        let (_i, spec, even, plus) = even_spec();
        let frozen = spec.freeze();
        for n in 0..64usize {
            assert_eq!(
                frozen.holds(even, &vec![plus; n], &[]),
                n % 2 == 0,
                "Even({n})"
            );
        }
        let stats = frozen.serve_stats();
        assert_eq!(stats.hits + stats.misses, 64);
        // Second sweep: every answer now comes from the cache.
        for n in 0..64usize {
            assert_eq!(frozen.holds(even, &vec![plus; n], &[]), n % 2 == 0);
        }
        let stats = frozen.serve_stats();
        assert!(stats.hits >= 64, "warm sweep should hit: {stats:?}");
    }

    #[test]
    fn frozen_graph_spec_binary_save_load_round_trip() {
        let (mut i, spec, even, plus) = even_spec();
        let frozen = spec.freeze();
        let dir = std::env::temp_dir().join(format!("fundb-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("even.spec.bin");
        let path = path.to_str().unwrap();
        frozen.save_binary(path, &i).unwrap();
        // The file carries the binary magic, not the text format.
        let bytes = std::fs::read(path).unwrap();
        assert!(bytes.starts_with(&crate::spec_io::SPEC_BIN_MAGIC));
        let reloaded = FrozenGraphSpec::load_binary(path, &mut i).unwrap();
        assert_eq!(
            reloaded.spec().cluster_count(),
            frozen.spec().cluster_count()
        );
        for n in 0..64usize {
            assert_eq!(
                reloaded.holds(even, &vec![plus; n], &[]),
                frozen.holds(even, &vec![plus; n], &[]),
                "Even({n})"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_eq_spec_matches_mutable() {
        let (_i, spec, even, plus) = even_spec();
        let mut eq = EqSpec::from_graph(&spec);
        let frozen_eq = eq.freeze();
        for n in 0..40usize {
            let path = vec![plus; n];
            assert_eq!(
                frozen_eq.holds(even, &path, &[]),
                eq.holds(even, &path, &[]),
                "Even({n})"
            );
            for m in 0..10usize {
                assert_eq!(
                    frozen_eq.congruent(&path, &vec![plus; m]),
                    eq.congruent(&path, &vec![plus; m]),
                    "n={n} m={m}"
                );
            }
        }
    }

    #[test]
    fn memoized_representatives_match_plain_walks() {
        let (_i, spec, _even, plus) = even_spec();
        let frozen = spec.freeze();
        for n in (0..64usize).rev() {
            let path = vec![plus; n];
            assert_eq!(
                frozen.representative_memoized(&path),
                frozen.representative_of(&path)
            );
        }
        // All 64 prefixes of the longest path are memoized exactly once.
        assert_eq!(frozen.memo_len(), 64);
    }

    #[test]
    fn batch_answers_are_input_ordered_and_thread_invariant() {
        let (_i, spec, even, plus) = even_spec();
        let frozen = spec.freeze();
        let queries: Vec<ServeQuery> = (0..200usize)
            .map(|n| ServeQuery::Member {
                pred: even,
                path: vec![plus; n % 37],
                args: vec![],
            })
            .collect();
        let seq: Vec<bool> = queries.iter().map(|q| frozen.answer(q)).collect();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                frozen.answer_batch_threads(&queries, threads),
                seq,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn relational_membership_is_cached() {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("succ"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("tony")), Cst(i.intern("jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let frozen = GraphSpec::from_engine(&mut engine).unwrap().freeze();
        assert!(frozen.holds_relational(next, &[tony, jan]));
        assert!(!frozen.holds_relational(next, &[jan, jan]));
        assert!(frozen.holds_relational(next, &[tony, jan]));
        let stats = frozen.serve_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn patch_retraction_invalidates_only_the_cone() {
        let mut i = Interner::new();
        let meets = Pred(i.intern("Meets"));
        let next = Pred(i.intern("Next"));
        let succ = Func(i.intern("succ"));
        let (t, x, y) = (Var(i.intern("t")), Var(i.intern("x")), Var(i.intern("y")));
        let (tony, jan) = (Cst(i.intern("tony")), Cst(i.intern("jan")));
        let mut prog = Program::new();
        prog.push(Rule::new(
            fat(
                meets,
                FTerm::Pure(succ, Box::new(FTerm::Var(t))),
                vec![NTerm::Var(y)],
            ),
            vec![
                fat(meets, FTerm::Var(t), vec![NTerm::Var(x)]),
                Atom::Relational {
                    pred: next,
                    args: vec![NTerm::Var(x), NTerm::Var(y)],
                },
            ],
        ));
        let mut db = Database::new();
        db.facts
            .push(fat(meets, FTerm::Zero, vec![NTerm::Const(tony)]));
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(tony), NTerm::Const(jan)],
        });
        db.facts.push(Atom::Relational {
            pred: next,
            args: vec![NTerm::Const(jan), NTerm::Const(tony)],
        });
        let mut engine = Engine::build(&prog, &db, &mut i).unwrap();
        let mut frozen = GraphSpec::from_engine(&mut engine).unwrap().freeze();
        assert_eq!(frozen.patch_epoch(), 0);
        // Warm both a relational entry (in the future cone) and a
        // functional entry (outside it).
        assert!(frozen.holds_relational(next, &[tony, jan]));
        assert!(frozen.holds(meets, &[succ], &[jan]));
        let cold = frozen.serve_stats();
        assert_eq!(cold.misses, 2);

        let outcome = dl::RetractOutcome {
            found: true,
            deleted: vec![(next, vec![tony, jan].into_boxed_slice())],
            restored: Vec::new(),
            stats: dl::EvalStats::default(),
        };
        let dropped = frozen.patch_retraction(&outcome);
        assert_eq!(dropped, 1, "only the Next entry is in the cone");
        assert_eq!(frozen.patch_epoch(), 1);
        assert_eq!(frozen.serve_stats().patches, 1);

        // The patched store answers the retracted row with `false` (a
        // fresh miss, not a stale hit) …
        assert!(!frozen.holds_relational(next, &[tony, jan]));
        // … while the functional entry outside the cone is still warm.
        let before = frozen.serve_stats().hits;
        assert!(frozen.holds(meets, &[succ], &[jan]));
        assert_eq!(frozen.serve_stats().hits, before + 1);
    }

    #[test]
    fn governed_freeze_and_batch_trip_cleanly() {
        let (_i, spec, even, plus) = even_spec();
        let cancelled =
            dl::Governor::new(dl::Budget::unlimited()).with_faults(dl::FaultPlan::default());
        cancelled.cancel();
        let err = spec.clone().freeze_governed(&cancelled).unwrap_err();
        let dl::EvalError::BudgetExhausted { resource, .. } = err else {
            panic!("expected BudgetExhausted");
        };
        assert_eq!(resource, dl::Resource::Cancelled);

        let frozen = spec.freeze();
        let queries: Vec<ServeQuery> = (0..32usize)
            .map(|n| ServeQuery::Member {
                pred: even,
                path: vec![plus; n],
                args: vec![],
            })
            .collect();
        let err = frozen
            .answer_batch_governed(&queries, &cancelled, 4)
            .unwrap_err();
        assert!(matches!(
            err,
            dl::EvalError::BudgetExhausted {
                resource: dl::Resource::Cancelled,
                ..
            }
        ));
        // The cache shards stay usable after the trip.
        assert_eq!(
            frozen.answer_batch_threads(&queries, 2),
            queries.iter().map(|q| frozen.answer(q)).collect::<Vec<_>>()
        );
    }
}
