//! `fundb` — command-line driver for functional deductive databases.
//!
//! ```text
//! fundb compile <program.fdb> [-o spec.fspec] [--minimize]
//! fundb show    <program.fdb | spec.fspec> [--minimize]
//! fundb check   <program.fdb | spec.fspec> <fact> [<fact> …]
//! fundb query   <program.fdb> "<query body>" [--limit N]
//! fundb analyze <program.fdb | spec.fspec>
//! ```
//!
//! A `.fspec` file is a serialized relational specification (see
//! `fundb_core::spec_io`): once compiled, membership can be answered
//! without the original rules — the paper's "the original deductive rules
//! may be forgotten" made concrete.

use fundb_cli::{run, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!("{}", fundb_cli::USAGE);
            ExitCode::from(2)
        }
        Err(CliError::Failed(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
