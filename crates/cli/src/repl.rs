//! An interactive read-eval-print loop over a workspace.
//!
//! ```text
//! fundb> Meets(t, x), Next(x, y) -> Meets(t+1, y).
//! fundb> Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).
//! fundb> ?- Meets(t, x).
//!   0: (Tony)
//!   1: (Jan)
//!   …
//! fundb> :check Meets(100, Tony)
//! true
//! fundb> :show
//! fundb> :save meets.fspec
//! fundb> :quit
//! ```
//!
//! The specification is recomputed lazily: adding rules or facts
//! invalidates the cached spec; queries and checks rebuild it on demand.

use fundb_core::{
    analysis, write_spec_file, write_spec_file_binary, Budget, CancelToken, EvalError, Governor,
    GraphSpec, ServeQuery, ServeStats,
};
use fundb_parser::Workspace;
use fundb_storage::{DurableDb, OpenDurable};
use std::io::Write;

/// The REPL state machine; drives one line at a time (testable without a
/// terminal).
pub struct Repl {
    ws: Workspace,
    spec: Option<GraphSpec>,
    /// Enumeration limit for query answers.
    pub limit: usize,
    done: bool,
    /// Session budget applied to every evaluation (`:budget` to adjust).
    budget: Budget,
    /// Shared cancellation token (`:cancel`, or SIGINT in the interactive
    /// loop).
    cancel: CancelToken,
    /// Whether any evaluation in this session stopped on a budget, a
    /// cancellation or a worker panic (non-interactive runs exit non-zero).
    eval_failed: bool,
    /// Accumulated answer-cache counters from `:bench-serve` runs, surfaced
    /// by `:stats` through [`fundb_core::EngineStats`].
    serve: ServeStats,
    /// Accumulated goal-directed query counters (magic rules synthesized,
    /// demand-set sizes) from `?-` answers and `:plan`, surfaced by
    /// `:stats` through [`fundb_core::EngineStats`].
    demand: fundb_datalog::EvalStats,
    /// Durable session journal (`:open <dir>`): every accepted program
    /// line is appended to the directory's WAL and committed, so a crashed
    /// session replays to exactly the lines that were acknowledged.
    session: Option<DurableDb>,
    /// Cumulative incremental-retraction counters (`:retract`), surfaced
    /// by `:stats` through [`fundb_core::EngineStats`]: rows tombstoned
    /// and rows the re-derive pass restored.
    retract: fundb_datalog::EvalStats,
    /// Cached-specification rows patched in place by `:retract` instead
    /// of rebuilding the spec (surfaced by `:stats`).
    cache_patches: u64,
}

impl Default for Repl {
    fn default() -> Self {
        Self::new()
    }
}

impl Repl {
    /// Creates an empty session.
    pub fn new() -> Self {
        Repl {
            ws: Workspace::new(),
            spec: None,
            limit: 8,
            done: false,
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
            eval_failed: false,
            serve: ServeStats::default(),
            demand: fundb_datalog::EvalStats::default(),
            session: None,
            retract: fundb_datalog::EvalStats::default(),
            cache_patches: 0,
        }
    }

    /// Whether `:quit` has been issued.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether any evaluation was truncated by a budget, cancelled, or lost
    /// a worker to a panic during this session.
    pub fn eval_failed(&self) -> bool {
        self.eval_failed
    }

    /// The cancellation token governing this session's evaluations (shared
    /// with the SIGINT handler in interactive mode).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Direct access to the underlying workspace.
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// A fresh governor for the next evaluation: current budget, the
    /// session's (cleared) cancel token. Budget counters are per-run, so
    /// each rebuild starts from zero.
    fn arm_governor(&mut self) {
        self.cancel.clear();
        self.ws.set_governor(
            Governor::new(self.budget.clone()).with_cancel_token(self.cancel.clone()),
        );
    }

    fn spec(&mut self) -> Result<&GraphSpec, fundb_core::Error> {
        if self.spec.is_none() {
            self.arm_governor();
            self.spec = Some(self.ws.graph_spec()?);
        }
        Ok(self.spec.as_ref().expect("just built"))
    }

    /// Reports an error, expanding evaluation truncations with their
    /// partial-result counters, and records them for the exit status.
    fn report_error(&mut self, e: &fundb_core::Error, out: &mut dyn Write) -> std::io::Result<()> {
        if let fundb_core::Error::Eval(ev) = e {
            self.eval_failed = true;
            return match ev {
                EvalError::BudgetExhausted { resource, partial } => writeln!(
                    out,
                    "error: evaluation stopped by {resource}: kept a deterministic partial \
                     result of {} derived row(s) in {} round(s) (adjust with :budget)",
                    partial.derived, partial.rounds
                ),
                EvalError::WorkerPanicked { task, payload } => writeln!(
                    out,
                    "error: evaluation task {task} panicked ({payload}); \
                     database rolled back to the last completed round"
                ),
                EvalError::WalFailed { detail } => writeln!(
                    out,
                    "error: durable log write failed ({detail}); the in-memory \
                     database keeps every completed round, but the session is \
                     no longer being journaled — reopen with :open"
                ),
            };
        }
        writeln!(out, "error: {e}")
    }

    /// Processes one input line, writing any output to `out`.
    pub fn line(&mut self, input: &str, out: &mut dyn Write) -> std::io::Result<()> {
        let input = input.trim();
        if input.is_empty() || input.starts_with('%') || input.starts_with("//") {
            return Ok(());
        }
        // Evaluation errors reach `report_error` inside dispatch; this
        // branch only sees I/O failures on `out` itself.
        let result = self.dispatch(input, out);
        if let Err(e) = result {
            writeln!(out, "error: {e}")?;
        }
        Ok(())
    }

    fn dispatch(&mut self, input: &str, out: &mut dyn Write) -> std::io::Result<()> {
        if let Some(cmd) = input.strip_prefix(':') {
            return self.command(cmd, out);
        }
        if let Some(body) = input.strip_prefix("?-") {
            return self.query(body.trim().trim_end_matches('.'), out);
        }
        // Program text: rules and/or facts.
        match self.ws.parse(input) {
            Ok(()) => {
                self.spec = None; // invalidate
                self.journal_line(input, out)?;
                // Execute any queries embedded in the fragment.
                let queries = std::mem::take(&mut self.ws.queries);
                for q in queries {
                    self.run_query(&q, out)?;
                }
            }
            Err(e) => writeln!(out, "error: {e}")?,
        }
        Ok(())
    }

    /// Journals one accepted program fragment into the durable session, if
    /// one is attached (`:open`): a `Note` record followed by a committed
    /// round marker, so recovery replays exactly the acknowledged lines.
    fn journal_line(&mut self, text: &str, out: &mut dyn Write) -> std::io::Result<()> {
        let Some(session) = self.session.as_mut() else {
            return Ok(());
        };
        if let Err(e) = session.append_note(text).and_then(|()| session.commit()) {
            self.session = None;
            let err = fundb_core::Error::Eval(EvalError::WalFailed {
                detail: e.to_string(),
            });
            return self.report_error(&err, out);
        }
        Ok(())
    }

    fn command(&mut self, cmd: &str, out: &mut dyn Write) -> std::io::Result<()> {
        let mut parts = cmd.split_whitespace();
        match parts.next() {
            Some("quit") | Some("q") | Some("exit") => {
                self.done = true;
            }
            Some("help") | Some("h") => {
                writeln!(
                    out,
                    ":check <fact>   membership against the current spec\n\
                     :explain <fact> derivation tree for a fact\n\
                     :show           print the specification\n\
                     :minimize       print the bisimulation-minimized spec\n\
                     :analyze        finiteness report\n\
                     :stats          LFP engine counters for the session program\n\
                     :plan <query>   adorned magic-set rewrite and join order for a goal\n\
                     :bench-serve [n] frozen-spec serving throughput on n queries (default 2048)\n\
                     :save <path> [--binary]  write the spec to a .fspec file \
                     (text v1, or binary v2 with --binary)\n\
                     :retract <fact> remove an asserted base fact; derived \
                     consequences are repaired incrementally (over-delete + re-derive)\n\
                     :open <dir>     attach a durable session journal: accepted \
                     lines are WAL-logged and replayed on reopen after a crash\n\
                     :wal-stats      durable session counters and recovery report\n\
                     :limit <n>      set the query enumeration limit\n\
                     :budget <rows|rounds|ms|bytes> <n>  cap evaluations (0 = unlimited)\n\
                     :cancel         request cancellation of governed evaluations\n\
                     :load <path>    parse a program file into the session\n\
                     :quit           leave\n\
                     Anything else: rules/facts (`P(t) -> Q(t+1).`) or queries (`?- Q(t).`)."
                )?;
            }
            Some("explain") => {
                let fact: String = parts.collect::<Vec<_>>().join(" ");
                if fact.is_empty() {
                    writeln!(out, "usage: :explain <fact>")?;
                } else {
                    // Delegate to the CLI path over a temp snapshot of the
                    // session program. Emit explicit kind declarations so
                    // predicates whose functional kind came from inference
                    // (or `functional P/n.` declarations) survive the
                    // round-trip even when the rendered rules alone carry no
                    // syntactic evidence.
                    let mut rendered = String::new();
                    {
                        let mut declared: Vec<(String, usize)> = Vec::new();
                        for atom in self
                            .ws
                            .program
                            .rules
                            .iter()
                            .flat_map(|r| std::iter::once(&r.head).chain(&r.body))
                            .chain(self.ws.db.facts.iter())
                        {
                            if atom.fterm().is_some() {
                                let name = self.ws.interner.resolve(atom.pred().sym()).to_string();
                                let arity = atom.args().len() + 1;
                                if !declared.contains(&(name.clone(), arity)) {
                                    declared.push((name, arity));
                                }
                            }
                        }
                        for (name, arity) in declared {
                            rendered.push_str(&format!("functional {name}/{arity}.\n"));
                        }
                    }
                    for r in &self.ws.program.rules {
                        rendered.push_str(&format!(
                            "{}\n",
                            fundb_core::program::display_rule(r, &self.ws.interner)
                        ));
                    }
                    for f in &self.ws.db.facts {
                        rendered.push_str(&format!(
                            "{}.\n",
                            fundb_core::program::display_atom(f, &self.ws.interner)
                        ));
                    }
                    let path = std::env::temp_dir()
                        .join(format!("fundb-repl-explain-{}.fdb", std::process::id()));
                    match std::fs::write(&path, rendered) {
                        Ok(()) => {
                            let args = vec![
                                "explain".to_string(),
                                path.to_string_lossy().into_owned(),
                                fact.trim_end_matches('.').to_string(),
                            ];
                            if let Err(e) = crate::run(&args, out) {
                                writeln!(out, "error: {e:?}")?;
                            }
                            std::fs::remove_file(&path).ok();
                        }
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
            }
            Some("check") => {
                let fact: String = parts.collect::<Vec<_>>().join(" ");
                if fact.is_empty() {
                    writeln!(out, "usage: :check <fact>")?;
                } else {
                    self.spec_or_report(out, |ws, spec, out| {
                        match ws.holds(spec, fact.trim_end_matches('.')) {
                            Ok(v) => writeln!(out, "{v}"),
                            Err(e) => writeln!(out, "error: {e}"),
                        }
                    })?;
                }
            }
            Some("show") => {
                self.spec_or_report(out, |ws, spec, out| {
                    write!(out, "{}", spec.render(&ws.interner))
                })?;
            }
            Some("minimize") => {
                self.spec_or_report(out, |ws, spec, out| {
                    write!(out, "{}", spec.minimized().render(&ws.interner))
                })?;
            }
            Some("analyze") => {
                self.spec_or_report(out, |_, spec, out| {
                    let report = analysis::analyze(spec);
                    writeln!(
                        out,
                        "clusters: {}, primary tuples: {}, fixpoint {}",
                        spec.cluster_count(),
                        spec.primary_size(),
                        if report.finite {
                            format!("FINITE ({:?} facts)", report.functional_fact_count)
                        } else {
                            "INFINITE".to_string()
                        }
                    )
                })?;
            }
            Some("retract") => {
                let fact: String = parts.collect::<Vec<_>>().join(" ");
                if fact.is_empty() {
                    writeln!(out, "usage: :retract <fact>")?;
                } else {
                    self.retract(fact.trim_end_matches('.'), out)?;
                }
            }
            Some("stats") => {
                // Solve the session program with the LFP engine and report
                // its instrumentation counters (semi-naive delta sizes,
                // join probes, index hits/misses).
                let program = self.ws.program.clone();
                let db = self.ws.db.clone();
                self.arm_governor();
                match fundb_core::Engine::build(&program, &db, &mut self.ws.interner) {
                    Ok(mut engine) => {
                        engine.set_governor(self.ws.governor().clone());
                        if let Err(e) = engine.solve() {
                            return self.report_error(&e, out);
                        }
                        engine.record_serve_stats(self.serve.hits, self.serve.misses);
                        engine.record_demand_stats(self.demand);
                        engine.record_retract_stats(
                            self.retract.retractions,
                            self.retract.rederived,
                            self.cache_patches,
                        );
                        if let Some(session) = &self.session {
                            let w = session.wal_stats();
                            engine.record_wal_stats(
                                w.records,
                                w.round_commits,
                                session.recovery().replayed_rounds as u64,
                            );
                        }
                        let s = engine.stats();
                        writeln!(
                            out,
                            "passes: {}, top evals: {}, uniform evals: {}, memo entries: {}",
                            s.passes,
                            s.top_evals,
                            s.uniform_evals,
                            engine.memo_len()
                        )?;
                        writeln!(
                            out,
                            "delta atoms per pass: {:?} (total {})",
                            s.pass_deltas, s.delta_atoms
                        )?;
                        writeln!(
                            out,
                            "datalog rounds: {}, derived rows: {}, join probes: {}, \
                             index hits: {}, index misses: {}",
                            s.datalog_rounds,
                            s.derived_rows,
                            s.join_probes,
                            s.index_hits,
                            s.index_misses
                        )?;
                        writeln!(
                            out,
                            "serve cache hits: {}, serve cache misses: {} \
                             (frozen-spec answer cache; populate with :bench-serve)",
                            s.serve_cache_hits, s.serve_cache_misses
                        )?;
                        writeln!(
                            out,
                            "magic rules: {}, demanded tuples: {} \
                             (goal-directed queries this session; see :plan)",
                            s.magic_rules, s.demanded_tuples
                        )?;
                        writeln!(
                            out,
                            "adaptive exec: replans: {}, bloom skips: {}, \
                             shared prefix hits: {}",
                            s.replans, s.bloom_skips, s.shared_prefix_hits
                        )?;
                        writeln!(
                            out,
                            "incremental retraction: retractions: {}, \
                             rederived: {}, cache patches: {} (session \
                             totals from :retract)",
                            s.retractions, s.rederived, s.cache_patches
                        )?;
                        writeln!(
                            out,
                            "durable log: wal records: {}, round commits: {}, \
                             recovered rounds: {} (0 unless a session is \
                             attached with :open)",
                            s.wal_records, s.wal_round_commits, s.recovered_rounds
                        )?;
                        writeln!(
                            out,
                            "eval threads: {} (override with FUNDB_THREADS; \
                             results are thread-count independent)",
                            engine.threads()
                        )?;
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            Some("bench-serve") => {
                let n: usize = parts.next().and_then(|v| v.parse().ok()).unwrap_or(2048);
                self.bench_serve(n.max(1), out)?;
            }
            Some("plan") => {
                let body: String = parts.collect::<Vec<_>>().join(" ");
                if body.is_empty() {
                    writeln!(out, "usage: :plan <query>")?;
                } else {
                    let text = body
                        .trim()
                        .trim_start_matches("?-")
                        .trim()
                        .trim_end_matches('.');
                    match self.ws.parse_query(text) {
                        Ok(q) => self.plan_query(&q, out)?,
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
            }
            Some("save") => {
                let args: Vec<&str> = parts.collect();
                let binary = args.iter().any(|a| matches!(*a, "--binary" | "-b"));
                let path = args
                    .iter()
                    .find(|a| !matches!(**a, "--binary" | "-b"))
                    .map(|s| s.to_string());
                match path {
                    Some(path) => {
                        self.arm_governor();
                        match self.ws.spec_bundle().and_then(|bundle| {
                            if binary {
                                write_spec_file_binary(&path, &bundle, &self.ws.interner)
                            } else {
                                write_spec_file(&path, &bundle, &self.ws.interner)
                            }
                        }) {
                            Ok(()) => writeln!(
                                out,
                                "wrote {path} ({})",
                                if binary { "binary v2" } else { "text v1" }
                            )?,
                            Err(e) => self.report_error(&e, out)?,
                        }
                    }
                    None => writeln!(out, "usage: :save <path> [--binary]")?,
                }
            }
            Some("open") => match parts.next() {
                Some(dir) => {
                    match fundb_datalog::Database::open_durable(
                        std::path::Path::new(dir),
                        &mut self.ws.interner,
                    ) {
                        Ok(session) => {
                            let lines: Vec<String> = session.notes().to_vec();
                            let report = session.recovery().clone();
                            self.session = Some(session);
                            let mut replayed = 0usize;
                            for text in &lines {
                                // Journaled `:retract` lines replay as base-
                                // fact removals; everything else is program
                                // text.
                                let ok = match text.trim().strip_prefix(":retract") {
                                    Some(f) => self.retract_replay(f.trim().trim_end_matches('.')),
                                    None => self.ws.parse(text).is_ok(),
                                };
                                if ok {
                                    replayed += 1;
                                }
                                self.ws.queries.clear();
                            }
                            if replayed > 0 {
                                self.spec = None;
                            }
                            write!(out, "opened {dir}: replayed {replayed} line(s)")?;
                            if report.dropped_records > 0 || report.truncated_bytes > 0 {
                                write!(
                                    out,
                                    "; recovery truncated {} uncommitted record(s) \
                                     ({} byte(s)) back to the last completed round",
                                    report.dropped_records, report.truncated_bytes
                                )?;
                            }
                            writeln!(out)?;
                        }
                        Err(e) => writeln!(out, "error: cannot open {dir}: {e}")?,
                    }
                }
                None => writeln!(out, "usage: :open <dir>")?,
            },
            Some("wal-stats") => match &self.session {
                Some(session) => {
                    let w = session.wal_stats();
                    let r = session.recovery();
                    writeln!(
                        out,
                        "durable session at {} (snapshot seq {})",
                        session.dir().display(),
                        session.seq()
                    )?;
                    writeln!(
                        out,
                        "wal: {} record(s), {} byte(s), {} round marker(s), \
                         {} flush(es), {} fsync(s)",
                        w.records, w.bytes, w.round_commits, w.flushes, w.syncs
                    )?;
                    writeln!(
                        out,
                        "recovery: replayed {} record(s) ({} fact(s), {} round(s)), \
                         dropped {} uncommitted record(s), truncated {} byte(s)",
                        r.replayed_records,
                        r.replayed_facts,
                        r.replayed_rounds,
                        r.dropped_records,
                        r.truncated_bytes
                    )?;
                }
                None => writeln!(out, "no durable session; attach one with :open <dir>")?,
            },
            Some("limit") => match parts.next().and_then(|v| v.parse().ok()) {
                Some(n) => self.limit = n,
                None => writeln!(out, "usage: :limit <n>")?,
            },
            Some("budget") => {
                let dim = parts.next();
                let n: Option<usize> = parts.next().and_then(|v| v.parse().ok());
                match (dim, n) {
                    (Some(dim @ ("rows" | "rounds" | "ms" | "bytes")), Some(n)) => {
                        let lim = (n > 0).then_some(n);
                        match dim {
                            "rows" => self.budget.max_rows = lim,
                            "rounds" => self.budget.max_rounds = lim,
                            "ms" => self.budget.max_millis = lim.map(|v| v as u64),
                            _ => self.budget.max_bytes = lim,
                        }
                        // Force the next evaluation to run under the new cap.
                        self.spec = None;
                        if self.budget.is_unlimited() {
                            writeln!(out, "budget: unlimited")?;
                        } else {
                            writeln!(out, "budget: {:?}", self.budget)?;
                        }
                    }
                    _ => writeln!(out, "usage: :budget <rows|rounds|ms|bytes> <n>")?,
                }
            }
            Some("cancel") => {
                self.cancel.cancel();
                writeln!(
                    out,
                    "cancellation requested; the next governed check point stops the evaluation"
                )?;
            }
            Some("load") => match parts.next() {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => match self.ws.parse(&text) {
                        Ok(()) => {
                            self.spec = None;
                            let path = path.to_string();
                            self.journal_line(&text, out)?;
                            writeln!(out, "loaded {path}")?;
                        }
                        Err(e) => writeln!(out, "error: {e}")?,
                    },
                    Err(e) => writeln!(out, "error: cannot read {path}: {e}")?,
                },
                None => writeln!(out, "usage: :load <path>")?,
            },
            other => {
                let shown = other.unwrap_or("");
                writeln!(out, "unknown command `:{shown}`; try :help")?;
            }
        }
        Ok(())
    }

    /// Index of the asserted base fact `pred(args)` in the workspace's
    /// fact list, if present (relational facts only).
    fn base_fact_pos(&self, pred: fundb_term::Pred, args: &[fundb_term::Cst]) -> Option<usize> {
        self.ws.db.facts.iter().position(|a| {
            a.fterm().is_none()
                && a.pred() == pred
                && a.args().len() == args.len()
                && a.args()
                    .iter()
                    .zip(args)
                    .all(|(t, c)| t.as_const() == Some(*c))
        })
    }

    /// `:retract <fact>` — removes an asserted relational base fact and
    /// repairs its derived consequences incrementally: the relational
    /// image is retracted with over-delete + re-derive (DRed), the cached
    /// specification is patched in place instead of rebuilt, and the
    /// removal is journaled to the durable session. The `retractions`,
    /// `rederived` and `cache patches` counters accumulate into `:stats`.
    fn retract(&mut self, fact: &str, out: &mut dyn Write) -> std::io::Result<()> {
        use fundb_datalog as dl;
        let (pred, fterm, args) = match self.ws.parse_fact(fact) {
            Ok(v) => v,
            Err(e) => return writeln!(out, "error: {e}"),
        };
        if fterm.is_some() {
            return writeln!(
                out,
                "error: only relational base facts can be retracted \
                 incrementally; functional consequences are monotone \
                 engine state — re-enter the program without the fact"
            );
        }
        let Some(pos) = self.base_fact_pos(pred, &args) else {
            return writeln!(out, "no such asserted base fact: {fact}");
        };
        // Incremental maintenance applies to purely relational sessions:
        // bring the relational image to its fixpoint, retract under the
        // session governor, and let the outcome's net cone patch the
        // cached specification. Mixed programs fall back to invalidation.
        let relational = (
            fundb_core::relational_rules(&self.ws.program),
            fundb_core::relational_facts(&self.ws.db),
        );
        let outcome = if let (Some(rules), Some(mut db)) = relational {
            self.arm_governor();
            let gov = self.ws.governor().clone();
            let plan = dl::DeltaPlan::planned(&rules, &db);
            let mut eval = dl::IncrementalEval::new();
            eval.set_governor(gov.clone());
            if let Err(e) = eval.run(&mut db, &rules, &plan) {
                return self.report_error(&fundb_core::Error::Eval(e), out);
            }
            match db.retract_fact_governed(pred, &args, &rules, &plan, &gov) {
                Ok(o) => Some(o),
                Err(e) => return self.report_error(&fundb_core::Error::Eval(e), out),
            }
        } else {
            None
        };
        self.ws.db.facts.remove(pos);
        match outcome {
            Some(o) => {
                self.retract.retractions += o.stats.retractions;
                self.retract.rederived += o.stats.rederived;
                let patched = match self.spec.as_mut() {
                    Some(spec) => spec.patch_retraction(&o),
                    None => 0,
                };
                self.cache_patches += patched as u64;
                writeln!(
                    out,
                    "retracted {fact}: {} row(s) tombstoned, {} re-derived, \
                     {} cached row(s) patched",
                    o.stats.retractions, o.stats.rederived, patched
                )?;
            }
            None => {
                self.spec = None;
                writeln!(
                    out,
                    "retracted {fact}: the specification will be rebuilt on demand"
                )?;
            }
        }
        self.journal_line(&format!(":retract {fact}"), out)
    }

    /// Replays a journaled `:retract` line during `:open`: removes the
    /// base fact without maintenance (no spec is cached at replay time).
    fn retract_replay(&mut self, fact: &str) -> bool {
        let Ok((pred, fterm, args)) = self.ws.parse_fact(fact) else {
            return false;
        };
        if fterm.is_some() {
            return false;
        }
        match self.base_fact_pos(pred, &args) {
            Some(pos) => {
                self.ws.db.facts.remove(pos);
                true
            }
            None => false,
        }
    }

    /// `:bench-serve n` — freezes the current specification and measures
    /// serving throughput on a synthetic membership workload: the per-query
    /// hash-map walk of the mutable spec against the frozen batch path, cold
    /// and warm. Answers are cross-checked, and the frozen spec's cache
    /// counters accumulate into the session totals shown by `:stats`.
    fn bench_serve(&mut self, n: usize, out: &mut dyn Write) -> std::io::Result<()> {
        use std::time::{Duration, Instant};
        if let Err(e) = self.spec().map(|_| ()) {
            return self.report_error(&e, out);
        }
        let spec = self.spec.take().expect("just built");
        let result = (|| -> std::io::Result<()> {
            let funcs = spec.funcs.symbols().to_vec();
            let atoms: Vec<_> = spec.atoms.iter().map(|(_, p, a)| (p, a.to_vec())).collect();
            if atoms.is_empty() {
                return writeln!(
                    out,
                    "bench-serve: the specification has no primary atoms; add facts first"
                );
            }
            // A deterministic workload of overlapping paths: lengths cycle
            // 0..64 and symbols rotate through the vocabulary, so the warm
            // pass exercises cache sharing across equal canonical keys.
            let queries: Vec<ServeQuery> = (0..n)
                .map(|k| {
                    let (pred, args) = &atoms[k % atoms.len()];
                    let len = if funcs.is_empty() { 0 } else { k % 64 };
                    ServeQuery::Member {
                        pred: *pred,
                        path: (0..len).map(|j| funcs[(k + j) % funcs.len()]).collect(),
                        args: args.clone(),
                    }
                })
                .collect();
            let t0 = Instant::now();
            let baseline: Vec<bool> = queries
                .iter()
                .map(|q| match q {
                    ServeQuery::Member { pred, path, args } => spec.holds(*pred, path, args),
                    ServeQuery::Relational { pred, args } => spec.holds_relational(*pred, args),
                })
                .collect();
            let base_t = t0.elapsed();
            let frozen = spec.clone().freeze();
            let t0 = Instant::now();
            let cold = frozen.answer_batch(&queries);
            let cold_t = t0.elapsed();
            let t0 = Instant::now();
            let warm = frozen.answer_batch(&queries);
            let warm_t = t0.elapsed();
            if cold != baseline || warm != baseline {
                writeln!(
                    out,
                    "bench-serve: ANSWER MISMATCH between the frozen and per-query paths \
                     (please report this)"
                )?;
            }
            let stats = frozen.serve_stats();
            self.serve.hits += stats.hits;
            self.serve.misses += stats.misses;
            let qps = |t: Duration| {
                let secs = t.as_secs_f64();
                if secs > 0.0 {
                    queries.len() as f64 / secs
                } else {
                    f64::INFINITY
                }
            };
            writeln!(
                out,
                "bench-serve: {} membership queries, {} batch worker thread(s)",
                queries.len(),
                fundb_core::default_threads()
            )?;
            writeln!(out, "  per-query walk: {:>12.0} q/s", qps(base_t))?;
            writeln!(out, "  frozen cold:    {:>12.0} q/s", qps(cold_t))?;
            writeln!(out, "  frozen warm:    {:>12.0} q/s", qps(warm_t))?;
            writeln!(
                out,
                "  answer cache: {} hits / {} misses (session totals in :stats)",
                stats.hits, stats.misses
            )
        })();
        self.spec = Some(spec);
        result
    }

    fn spec_or_report(
        &mut self,
        out: &mut dyn Write,
        f: impl FnOnce(&mut Workspace, &GraphSpec, &mut dyn Write) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        // Build the spec first (immutable afterwards), then let the callback
        // use the workspace for parsing/display.
        if let Err(e) = self.spec().map(|_| ()) {
            return self.report_error(&e, out);
        }
        let spec = self.spec.take().expect("just built");
        let r = f(&mut self.ws, &spec, out);
        self.spec = Some(spec);
        r
    }

    fn query(&mut self, body: &str, out: &mut dyn Write) -> std::io::Result<()> {
        let q = match self.ws.parse_query(body) {
            Ok(q) => q,
            Err(e) => return writeln!(out, "error: {e}"),
        };
        self.run_query(&q, out)
    }

    /// Dumps the adorned magic-set rewrite and chosen join orders for a
    /// purely relational goal, then evaluates the demanded cone (governed)
    /// to report the adaptive executor's per-round re-plan history.
    fn plan_query(&mut self, q: &fundb_core::Query, out: &mut dyn Write) -> std::io::Result<()> {
        use fundb_datalog as dl;
        let (Some((body, _)), Some(rules), Some(facts)) = (
            q.to_datalog_goal(),
            fundb_core::relational_rules(&self.ws.program),
            fundb_core::relational_facts(&self.ws.db),
        ) else {
            return writeln!(
                out,
                "goal-directed planning applies to purely relational programs \
                 and queries; this session has functional atoms"
            );
        };
        let Some(mp) = dl::magic_rewrite(&rules, &body) else {
            return writeln!(
                out,
                "rewrite is a no-op for this goal (all-free or EDB-only): \
                 falls back to full materialization"
            );
        };
        // Compile against the same overlay snapshot query answering would
        // see: base facts plus the ground magic seeds.
        let mut overlay = facts;
        for (p, row) in &mp.seeds {
            overlay.insert(*p, row);
        }
        let stats = overlay.plan_stats();
        writeln!(
            out,
            "goal-directed plan (magic-set rewrite, left-to-right SIP):"
        )?;
        for (p, row) in &mp.seeds {
            let args = row
                .iter()
                .map(|c| self.ws.interner.resolve(c.sym()))
                .collect::<Vec<_>>()
                .join(",");
            writeln!(out, "  {}({args}).", mp.display_pred(*p, &self.ws.interner))?;
        }
        for rule in &mp.rules {
            let head = mp.display_atom(&rule.head, &self.ws.interner);
            let body_text = rule
                .body
                .iter()
                .map(|a| mp.display_atom(a, &self.ws.interner))
                .collect::<Vec<_>>()
                .join(", ");
            let order = dl::JoinProgram::compile_with_stats(rule, None, &stats).atom_order();
            let order_text = order
                .iter()
                .map(|&i| mp.display_pred(rule.body[i].pred, &self.ws.interner))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(out, "  {head} :- {body_text}.  [join order: {order_text}]")?;
        }
        let goal = mp
            .query_body
            .iter()
            .map(|a| mp.display_atom(a, &self.ws.interner))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(out, "  ?- {goal}.")?;
        writeln!(
            out,
            "magic rules: {} ({} ground seed(s)), rewritten rules: {}",
            mp.magic_rule_count,
            mp.seeds.len(),
            mp.rules.len()
        )?;
        // The static orders above are the *initial* plan. Run the demanded
        // cone to see whether live delta statistics forced any mid-run
        // join-order switches (counters accumulate into :stats).
        self.arm_governor();
        let gov = self.ws.governor().clone();
        match q.answer_goal_directed(&self.ws.program, &self.ws.db, &gov) {
            Some(Ok(ans)) => {
                self.demand.magic_rules += ans.stats.magic_rules;
                self.demand.demanded_tuples += ans.stats.demanded_tuples;
                self.demand.replans += ans.stats.replans;
                self.demand.bloom_skips += ans.stats.bloom_skips;
                self.demand.shared_prefix_hits += ans.stats.shared_prefix_hits;
                if ans.replan_events.is_empty() {
                    writeln!(
                        out,
                        "re-plan history: none (initial join orders held for the run)"
                    )?;
                } else {
                    writeln!(out, "re-plan history:")?;
                    for ev in &ans.replan_events {
                        writeln!(
                            out,
                            "  round {}: rule {} join order {:?} -> {:?}",
                            ev.round, ev.rule, ev.old_order, ev.new_order
                        )?;
                    }
                }
            }
            Some(Err(e)) => self.report_error(&e, out)?,
            None => {}
        }
        Ok(())
    }

    fn run_query(&mut self, q: &fundb_core::Query, out: &mut dyn Write) -> std::io::Result<()> {
        // Cold purely-relational goals go goal-directed: the magic rewrite
        // evaluates only the demanded cone into a scratch overlay, skipping
        // spec construction entirely. A cached spec is cheaper than any
        // re-derivation, so this only triggers before the first build (or
        // after invalidation).
        if self.spec.is_none() && q.validate(&self.ws.interner).is_ok() {
            self.arm_governor();
            let gov = self.ws.governor().clone();
            if let Some(result) = q.answer_goal_directed(&self.ws.program, &self.ws.db, &gov) {
                return match result {
                    Ok(ans) => {
                        self.demand.magic_rules += ans.stats.magic_rules;
                        self.demand.demanded_tuples += ans.stats.demanded_tuples;
                        self.demand.replans += ans.stats.replans;
                        self.demand.bloom_skips += ans.stats.bloom_skips;
                        self.demand.shared_prefix_hits += ans.stats.shared_prefix_hits;
                        if ans.rows.is_empty() {
                            writeln!(out, "no answers")
                        } else {
                            let mut rows: Vec<String> = ans
                                .rows
                                .iter()
                                .map(|t| {
                                    t.iter()
                                        .map(|c| self.ws.interner.resolve(c.sym()))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                })
                                .collect();
                            rows.sort();
                            for r in rows {
                                writeln!(out, "  ({r})")?;
                            }
                            Ok(())
                        }
                    }
                    Err(e) => self.report_error(&e, out),
                };
            }
        }
        if let Err(e) = self.spec().map(|_| ()) {
            return self.report_error(&e, out);
        }
        let spec = self.spec.take().expect("just built");
        let result = (|| -> std::io::Result<()> {
            if !q.is_uniform() {
                let (ext, qp) = match q.answer_by_extension(
                    &self.ws.program.clone(),
                    &self.ws.db.clone(),
                    &mut self.ws.interner,
                ) {
                    Ok(v) => v,
                    Err(e) => return self.report_error(&e, out),
                };
                return writeln!(
                    out,
                    "non-uniform query: answered by extension ({} clusters, predicate {})",
                    ext.cluster_count(),
                    self.ws.interner.resolve(qp.sym())
                );
            }
            let ans = match q.answer_incremental(&spec, &self.ws.interner) {
                Ok(a) => a,
                Err(e) => return writeln!(out, "error: {e}"),
            };
            let listed = ans.enumerate_terms(&spec, self.limit);
            if listed.is_empty() {
                if let fundb_core::IncrementalAnswer::Tuples(ts) = &ans {
                    if ts.is_empty() {
                        writeln!(out, "no answers")?;
                    }
                    let mut rows: Vec<String> = ts
                        .iter()
                        .map(|t| {
                            t.iter()
                                .map(|c| self.ws.interner.resolve(c.sym()))
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .collect();
                    rows.sort();
                    for r in rows {
                        writeln!(out, "  ({r})")?;
                    }
                } else {
                    writeln!(out, "no answers")?;
                }
            } else {
                for (path, tuple) in listed {
                    let term = crate::render_term_path(&path, &self.ws.interner);
                    let args = tuple
                        .iter()
                        .map(|c| self.ws.interner.resolve(c.sym()))
                        .collect::<Vec<_>>()
                        .join(", ");
                    if args.is_empty() {
                        writeln!(out, "  {term}")?;
                    } else {
                        writeln!(out, "  {term}: ({args})")?;
                    }
                }
            }
            Ok(())
        })();
        self.spec = Some(spec);
        result
    }
}

/// SIGINT integration: Ctrl-C flips the session cancel token instead of
/// killing the process, so a long-running evaluation unwinds cooperatively
/// through the governor and the REPL survives with a partial result.
#[cfg(unix)]
mod sigint {
    use fundb_core::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn isatty(fd: i32) -> i32;
    }

    extern "C" fn handle(_signum: i32) {
        // CancelToken::cancel is a relaxed atomic store — async-signal-safe.
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    /// Routes SIGINT to `token` for the rest of the process lifetime.
    pub fn install(token: CancelToken) {
        const SIGINT: i32 = 2;
        let _ = TOKEN.set(token);
        // SAFETY: `handle` is async-signal-safe (atomic store only) and the
        // handler address stays valid for the program's lifetime.
        unsafe {
            signal(SIGINT, handle as *const () as usize);
        }
    }

    /// True when stdin is a terminal (interactive session).
    pub fn stdin_is_tty() -> bool {
        // SAFETY: isatty only inspects the file descriptor.
        unsafe { isatty(0) != 0 }
    }
}

/// Runs the interactive loop on stdin/stdout.
///
/// In a terminal, Ctrl-C cancels the running evaluation (via the governor's
/// cancel token) without exiting. When stdin is not a tty (piped scripts),
/// the loop exits with an error if any evaluation failed, so callers see a
/// non-zero exit status.
pub fn run_interactive() -> std::io::Result<()> {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut repl = Repl::new();
    #[cfg(unix)]
    let interactive = {
        sigint::install(repl.cancel_token());
        sigint::stdin_is_tty()
    };
    #[cfg(not(unix))]
    let interactive = true;
    writeln!(
        stdout,
        "fundb interactive session — :help for commands, :quit to leave"
    )?;
    let mut line = String::new();
    loop {
        write!(stdout, "fundb> ")?;
        stdout.flush()?;
        line.clear();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        repl.line(&line, &mut stdout)?;
        if repl.is_done() {
            break;
        }
    }
    if !interactive && repl.eval_failed() {
        return Err(std::io::Error::other(
            "one or more evaluations failed (budget exhausted or worker panic)",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(repl: &mut Repl, lines: &[&str]) -> String {
        let mut out = Vec::new();
        for l in lines {
            repl.line(l, &mut out).unwrap();
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn rules_queries_and_checks() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Meets(t, x), Next(x, y) -> Meets(t+1, y).",
                "Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
                ":check Meets(6, Tony)",
                ":check Meets(6, Jan)",
                "?- Meets(t, x).",
            ],
        );
        assert!(out.contains("true"));
        assert!(out.contains("false"));
        assert!(out.contains("0: (Tony)"));
        assert!(out.contains("1: (Jan)"));
    }

    #[test]
    fn incremental_extension_invalidates_spec() {
        let mut repl = Repl::new();
        let out1 = feed(&mut repl, &["Even(0).", ":check Even(2)"]);
        assert!(out1.contains("false"));
        let out2 = feed(&mut repl, &["Even(t) -> Even(t+2).", ":check Even(2)"]);
        assert!(out2.contains("true"));
    }

    #[test]
    fn analyze_and_show() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &["Tick(t) -> Tick(t+1).", "Tick(0).", ":analyze", ":show"],
        );
        assert!(out.contains("INFINITE"));
        assert!(out.contains("Tick()"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut repl = Repl::new();
        let out = feed(&mut repl, &["P(0", ":bogus", "P(0)."]);
        assert!(out.contains("error:"));
        assert!(out.contains("unknown command `:bogus`"));
        let out2 = feed(&mut repl, &[":check P(0)"]);
        assert!(out2.contains("true"));
    }

    #[test]
    fn stats_reports_engine_counters() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Meets(t, x), Next(x, y) -> Meets(t+1, y).",
                "Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
                ":stats",
            ],
        );
        assert!(out.contains("passes:"), "{out}");
        assert!(out.contains("delta atoms per pass:"), "{out}");
        assert!(out.contains("join probes:"), "{out}");
        assert!(out.contains("index misses:"), "{out}");
        assert!(out.contains("eval threads:"), "{out}");
    }

    #[test]
    fn relational_goals_run_goal_directed_and_plan_dumps_adornments() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Edge(x, y) -> Path(x, y).",
                "Edge(x, y), Path(y, z) -> Path(x, z).",
                "Edge(A, B). Edge(B, C). Edge(C, D).",
                "?- Path(A, x).",
                ":plan Path(A, x)",
                ":stats",
            ],
        );
        // Goal-directed answers: everything reachable from A.
        assert!(out.contains("(B)"), "{out}");
        assert!(out.contains("(C)"), "{out}");
        assert!(out.contains("(D)"), "{out}");
        // :plan dumps the adorned program with its seed and join orders.
        assert!(out.contains("m_Path_bf"), "{out}");
        assert!(out.contains("Path_bf"), "{out}");
        assert!(out.contains("join order:"), "{out}");
        // :plan also reports whether the adaptive executor re-planned.
        assert!(out.contains("re-plan history:"), "{out}");
        // :stats surfaces the accumulated demand counters.
        assert!(out.contains("magic rules:"), "{out}");
        assert!(out.contains("demanded tuples:"), "{out}");
        assert!(out.contains("adaptive exec:"), "{out}");
    }

    #[test]
    fn plan_reports_noop_for_all_free_goals() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Edge(x, y) -> Path(x, y).",
                "Edge(A, B).",
                ":plan Path(x, y)",
            ],
        );
        assert!(out.contains("no-op"), "{out}");
    }

    #[test]
    fn bench_serve_reports_throughput_and_cache_counters() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Even(t) -> Even(t+2).",
                "Even(0).",
                ":bench-serve 256",
                ":stats",
            ],
        );
        assert!(out.contains("bench-serve: 256 membership queries"), "{out}");
        assert!(out.contains("frozen warm:"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
        assert!(out.contains("serve cache hits:"), "{out}");
        assert!(
            !out.contains("serve cache hits: 0, serve cache misses: 0"),
            "bench-serve counters should reach :stats\n{out}"
        );
    }

    #[test]
    fn quit_sets_done() {
        let mut repl = Repl::new();
        feed(&mut repl, &[":quit"]);
        assert!(repl.is_done());
    }

    #[test]
    fn save_binary_writes_magic_and_reloads() {
        let dir = std::env::temp_dir().join(format!("fundb-repl-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("spec.bin");
        let txt = dir.join("spec.txt");
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Even(t) -> Even(t+2).",
                "Even(0).",
                &format!(":save {} --binary", bin.display()),
                &format!(":save {}", txt.display()),
            ],
        );
        assert!(out.contains("binary v2"), "{out}");
        assert!(out.contains("text v1"), "{out}");
        let bytes = std::fs::read(&bin).unwrap();
        assert!(bytes.starts_with(b"FDBSPECB"), "missing binary magic");
        // Both formats reload through the auto-detecting reader and answer
        // identically. (Renders can differ: each `:save` rebuilds the spec,
        // and auxiliary predicates get fresh disambiguated names.)
        let mut i1 = fundb_term::Interner::new();
        let from_bin = fundb_core::read_spec_file(bin.to_str().unwrap(), &mut i1).unwrap();
        let mut i2 = fundb_term::Interner::new();
        let from_txt = fundb_core::read_spec_file(txt.to_str().unwrap(), &mut i2).unwrap();
        assert_eq!(from_bin.spec.cluster_count(), from_txt.spec.cluster_count());
        let even1 = fundb_term::Pred(i1.get("Even").unwrap());
        let succ1 = fundb_term::Func(i1.get("+1").unwrap());
        let even2 = fundb_term::Pred(i2.get("Even").unwrap());
        let succ2 = fundb_term::Func(i2.get("+1").unwrap());
        for n in 0..12usize {
            assert_eq!(
                from_bin.spec.holds(even1, &vec![succ1; n], &[]),
                from_txt.spec.holds(even2, &vec![succ2; n], &[]),
                "n={n}"
            );
        }
    }

    #[test]
    fn open_journals_session_and_replays_after_restart() {
        let dir = std::env::temp_dir().join(format!("fundb-repl-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().into_owned();
        {
            let mut repl = Repl::new();
            let out = feed(
                &mut repl,
                &[
                    &format!(":open {dir_s}"),
                    "Meets(t, x), Next(x, y) -> Meets(t+1, y).",
                    "Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
                    ":wal-stats",
                ],
            );
            assert!(out.contains("opened"), "{out}");
            assert!(out.contains("replayed 0 line(s)"), "{out}");
            assert!(out.contains("round marker(s)"), "{out}");
            // The session is dropped here without any explicit shutdown —
            // the journal must already be flushed per accepted line.
        }
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[&format!(":open {dir_s}"), ":check Meets(6, Tony)"],
        );
        assert!(out.contains("replayed 2 line(s)"), "{out}");
        assert!(out.contains("true"), "{out}");
    }

    #[test]
    fn wal_stats_without_session_points_at_open() {
        let mut repl = Repl::new();
        let out = feed(&mut repl, &[":wal-stats"]);
        assert!(out.contains(":open"), "{out}");
    }

    #[test]
    fn limit_controls_enumeration() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &["Run(t) -> Run(t+1).", "Run(0).", ":limit 3", "?- Run(t)."],
        );
        assert_eq!(out.matches("\n").count(), 3, "three answer lines:\n{out}");
    }

    #[test]
    fn retract_repairs_consequences_and_patches_the_cached_spec() {
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                "Edge(x, y) -> Path(x, y).",
                "Edge(x, y), Path(y, z) -> Path(x, z).",
                "Edge(A, B). Edge(B, C).",
                ":check Path(A, C)", // builds and caches the spec
                ":retract Edge(B, C)",
                ":check Path(A, C)", // answered from the patched spec
                ":check Path(A, B)",
                ":retract Edge(Z, Z)",
                ":stats",
            ],
        );
        // Before: Path(A,C) holds; after the retraction the whole cone
        // (Edge(B,C), Path(B,C), Path(A,C)) is gone, Path(A,B) survives.
        assert!(
            out.contains("true\nretracted Edge(B, C): 3 row(s) tombstoned"),
            "{out}"
        );
        assert!(
            out.contains("0 re-derived, 3 cached row(s) patched"),
            "{out}"
        );
        assert!(out.contains("false"), "{out}");
        assert!(
            out.contains("no such asserted base fact: Edge(Z, Z)"),
            "{out}"
        );
        assert!(
            out.contains("retractions: 3, rederived: 0, cache patches: 3"),
            "{out}"
        );
    }

    #[test]
    fn retract_is_journaled_and_replays_after_restart() {
        let dir = std::env::temp_dir().join(format!("fundb-repl-retract-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().into_owned();
        {
            let mut repl = Repl::new();
            let out = feed(
                &mut repl,
                &[
                    &format!(":open {dir_s}"),
                    "Edge(x, y) -> Path(x, y). Edge(x, y), Path(y, z) -> Path(x, z).",
                    "Edge(A, B). Edge(B, C).",
                    ":retract Edge(B, C)",
                ],
            );
            assert!(out.contains("retracted Edge(B, C)"), "{out}");
        }
        let mut repl = Repl::new();
        let out = feed(
            &mut repl,
            &[
                &format!(":open {dir_s}"),
                ":check Path(A, C)",
                ":check Path(A, B)",
            ],
        );
        assert!(out.contains("replayed 3 line(s)"), "{out}");
        assert!(out.contains("false"), "{out}");
        assert!(out.contains("true"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod explain_repl_tests {
    use super::*;

    #[test]
    fn repl_explain_shows_proof() {
        let mut repl = Repl::new();
        let mut out = Vec::new();
        for l in [
            "Meets(t, x), Next(x, y) -> Meets(t+1, y).",
            "Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
            ":explain Meets(2, Tony)",
        ] {
            repl.line(l, &mut out).unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("[by rule"), "{text}");
        assert!(text.contains("[given]"), "{text}");
    }
}
