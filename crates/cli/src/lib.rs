#![warn(missing_docs)]
//! Implementation of the `fundb` command-line driver (testable as a
//! library: [`run`] takes argv and a writer).

pub mod repl;

use fundb_core::{analysis, read_spec, spec_io, write_spec, DataParams, SpecBundle};
use fundb_parser::{parse_source, Elaborator, Workspace};
use fundb_term::Interner;
use std::io::Write;

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage:
  fundb compile <program.fdb> [-o spec.fspec] [--minimize]
  fundb show    <program.fdb | spec.fspec> [--minimize]
  fundb check   <program.fdb | spec.fspec> <fact> [<fact> ...]
  fundb query   <program.fdb> \"<query body>\" [--limit N]
  fundb analyze <program.fdb | spec.fspec>
  fundb explain <program.fdb> <fact> [--depth N]
  fundb repl

Programs use the paper's syntax, e.g.
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
  Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).
Facts and queries are single atoms / conjunctions in the same syntax.";

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: print usage.
    Usage(String),
    /// Operation failed: print the message.
    Failed(String),
}

impl From<fundb_core::Error> for CliError {
    fn from(e: fundb_core::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

/// Entry point; `out` receives the normal output.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    match cmd.as_str() {
        "compile" => compile(rest, out),
        "show" => show(rest, out),
        "check" => check(rest, out),
        "query" => query(rest, out),
        "analyze" => analyze(rest, out),
        "explain" => explain(rest, out),
        "repl" => repl::run_interactive().map_err(CliError::from),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// A loaded target: either compiled from a program or read from a spec file.
struct Target {
    interner: Interner,
    bundle: SpecBundle,
    /// The workspace, when the target was a program (enables queries).
    workspace: Option<Workspace>,
}

fn load_target(path: &str, minimize: bool) -> Result<Target, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))?;
    if bytes.starts_with(&spec_io::SPEC_BIN_MAGIC) {
        let mut interner = Interner::new();
        let mut bundle = spec_io::read_spec_binary(&bytes, &mut interner)?;
        if minimize {
            bundle.spec = bundle.spec.minimized();
        }
        return Ok(Target {
            interner,
            bundle,
            workspace: None,
        });
    }
    let text = String::from_utf8(bytes)
        .map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))?;
    if text.trim_start().starts_with("fundbspec") {
        let mut interner = Interner::new();
        let mut bundle = read_spec(&text, &mut interner)?;
        if minimize {
            bundle.spec = bundle.spec.minimized();
        }
        Ok(Target {
            interner,
            bundle,
            workspace: None,
        })
    } else {
        let mut ws = Workspace::new();
        ws.parse(&text)?;
        let mut bundle = ws.spec_bundle()?;
        if minimize {
            bundle.spec = bundle.spec.minimized();
        }
        Ok(Target {
            interner: ws.interner.clone(),
            bundle,
            workspace: Some(ws),
        })
    }
}

fn split_flag<'a>(args: &'a [String], flag: &str) -> (Vec<&'a String>, bool) {
    let mut rest = Vec::new();
    let mut found = false;
    for a in args {
        if a == flag {
            found = true;
        } else {
            rest.push(a);
        }
    }
    (rest, found)
}

fn compile(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (args, minimize) = split_flag(args, "--minimize");
    let (input, output) = match args.as_slice() {
        [input] => (input.as_str(), None),
        [input, o, path] if *o == "-o" => (input.as_str(), Some(path.as_str())),
        _ => {
            return Err(CliError::Usage(
                "compile: expected <program> [-o out]".into(),
            ))
        }
    };
    let target = load_target(input, minimize)?;
    let text = write_spec(&target.bundle, &target.interner)?;
    match output {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::Failed(format!("cannot write {path}: {e}")))?;
            writeln!(
                out,
                "wrote {} ({} clusters, {} tuples)",
                path,
                target.bundle.spec.cluster_count(),
                target.bundle.spec.primary_size()
            )?;
        }
        None => write!(out, "{text}")?,
    }
    Ok(())
}

fn show(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (args, minimize) = split_flag(args, "--minimize");
    let [input] = args.as_slice() else {
        return Err(CliError::Usage("show: expected one file".into()));
    };
    let target = load_target(input, minimize)?;
    write!(out, "{}", target.bundle.spec.render(&target.interner))?;
    writeln!(
        out,
        "clusters: {}, edges: {}, primary tuples: {}",
        target.bundle.spec.cluster_count(),
        target.bundle.spec.edge_count(),
        target.bundle.spec.primary_size()
    )?;
    Ok(())
}

fn check(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((input, facts)) = args.split_first() else {
        return Err(CliError::Usage("check: expected <file> <fact>…".into()));
    };
    if facts.is_empty() {
        return Err(CliError::Usage("check: expected at least one fact".into()));
    }
    let mut target = load_target(input, false)?;

    // Build an elaborator whose predicate kinds come from the target: the
    // workspace's when compiled from a program, or reconstructed from the
    // specification's atom vocabulary when loaded from a spec file.
    let mut elaborator = Elaborator::new();
    for (_, pred, _) in target.bundle.spec.atoms.iter() {
        elaborator.force_functional(target.interner.resolve(pred.sym()));
    }

    for fact in facts {
        let holds = check_one(&mut target, &mut elaborator, fact)?;
        writeln!(out, "{fact} -> {holds}")?;
    }
    Ok(())
}

fn check_one(
    target: &mut Target,
    elaborator: &mut Elaborator,
    fact: &str,
) -> Result<bool, CliError> {
    // Prefer the workspace's own elaboration when available (it knows
    // predicate kinds even for predicates with empty extensions).
    if let Some(ws) = target.workspace.as_mut() {
        return Ok(ws.holds(&target.bundle.spec, fact)?);
    }
    let stmts = parse_source(&format!("{fact}."))?;
    elaborator.absorb(&stmts);
    let [fundb_parser::PStatement::Rule(rule)] = &stmts[..] else {
        return Err(CliError::Failed("expected a single ground atom".into()));
    };
    let atom = elaborator.atom(&rule.head, &mut target.interner)?;
    if !atom.is_ground() {
        return Err(CliError::Failed(format!("fact `{fact}` is not ground")));
    }
    let args: Vec<fundb_term::Cst> = atom
        .args()
        .iter()
        .map(|a| a.as_const().expect("checked ground"))
        .collect();
    match atom.fterm() {
        Some(ft) => {
            let Some(path) = spec_io::pure_path_with_map(ft, &target.bundle.sym_map) else {
                return Ok(false);
            };
            Ok(target.bundle.spec.holds(atom.pred(), &path, &args))
        }
        None => Ok(target.bundle.spec.holds_relational(atom.pred(), &args)),
    }
}

fn query(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut limit = 10usize;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--limit" {
            limit = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CliError::Usage("--limit needs a number".into()))?;
        } else {
            positional.push(a);
        }
    }
    let [input, body] = positional.as_slice() else {
        return Err(CliError::Usage(
            "query: expected <program> \"<body>\"".into(),
        ));
    };
    let text = std::fs::read_to_string(input)
        .map_err(|e| CliError::Failed(format!("cannot read {input}: {e}")))?;
    let mut ws = Workspace::new();
    ws.parse(&text)?;
    let spec = ws.graph_spec()?;
    let q = ws.parse_query(body)?;
    if q.is_uniform() {
        let ans = q.answer_incremental(&spec, &ws.interner)?;
        writeln!(
            out,
            "incremental answer: {} tuple(s) over the specification",
            ans.size()
        )?;
        let shown = ans.enumerate_terms(&spec, limit);
        if shown.is_empty() {
            // No functional output — print the tuples directly.
            if let fundb_core::IncrementalAnswer::Tuples(ts) = &ans {
                let mut rows: Vec<String> = ts
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|c| ws.interner.resolve(c.sym()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    })
                    .collect();
                rows.sort();
                for r in rows {
                    writeln!(out, "  ({r})")?;
                }
            }
        } else {
            for (path, tuple) in shown {
                let term = render_term_path(&path, &ws.interner);
                let args = tuple
                    .iter()
                    .map(|c| ws.interner.resolve(c.sym()))
                    .collect::<Vec<_>>()
                    .join(", ");
                if args.is_empty() {
                    writeln!(out, "  {term}")?;
                } else {
                    writeln!(out, "  {term}: ({args})")?;
                }
            }
        }
    } else {
        let (ext, qp) =
            q.answer_by_extension(&ws.program.clone(), &ws.db.clone(), &mut ws.interner)?;
        writeln!(
            out,
            "non-uniform query answered by extension: QUERY predicate `{}` in a {}-cluster spec",
            ws.interner.resolve(qp.sym()),
            ext.cluster_count()
        )?;
    }
    Ok(())
}

pub(crate) fn render_term_path(path: &[fundb_term::Func], interner: &Interner) -> String {
    if path.is_empty() {
        return "0".to_string();
    }
    // All-temporal paths print as the day number.
    if path.iter().all(|f| interner.resolve(f.sym()) == "+1") {
        return path.len().to_string();
    }
    let mut s = String::new();
    for f in path.iter().rev() {
        s.push_str(interner.resolve(f.sym()));
        s.push('(');
    }
    s.push('0');
    for _ in path {
        s.push(')');
    }
    s
}

fn analyze(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let [input] = args else {
        return Err(CliError::Usage("analyze: expected one file".into()));
    };
    let target = load_target(input, false)?;
    let spec = &target.bundle.spec;
    let report = analysis::analyze(spec);
    writeln!(
        out,
        "clusters: {} | successor edges: {} | primary tuples: {}",
        spec.cluster_count(),
        spec.edge_count(),
        spec.primary_size()
    )?;
    match (&report.finite, report.functional_fact_count) {
        (true, Some(n)) => writeln!(out, "least fixpoint: FINITE, {n} functional fact(s)")?,
        _ => writeln!(
            out,
            "least fixpoint: INFINITE (witness cluster {:?}) — a safety-based \
             system [RBS87] would reject queries against it",
            report.infinite_witness
        )?,
    }
    if let Some(ws) = target.workspace {
        // Temporal programs additionally get their lasso parameters.
        let mut ti = ws.interner.clone();
        match fundb_temporal::classify(&ws.program, &ws.db, &ti) {
            fundb_temporal::TemporalClass::NotTemporal => {}
            class => {
                if let Ok(t) = fundb_temporal::TemporalSpec::compute(&ws.program, &ws.db, &mut ti) {
                    let (a, b) = t.equation();
                    writeln!(
                        out,
                        "temporal ({class:?}): lasso ρ={} λ={}, equational R = {{({a}, {b})}}",
                        t.rho(),
                        t.lambda()
                    )?;
                }
            }
        }
        let normal = fundb_core::normalize(&ws.program.clone(), &mut ws.interner.clone());
        let mut interner = ws.interner.clone();
        if let Ok(pure) = fundb_core::to_pure(&normal, &ws.db, &mut interner) {
            let p = DataParams::of(&pure.schema);
            writeln!(
                out,
                "data parameters (§2.5): s={} k={} d={} c={} m={} gsize={}",
                p.s, p.k, p.d, p.c, p.m, p.gsize
            )?;
            writeln!(
                out,
                "scope bounds: scope~ ≤ {}, scope≅ ≤ {} (Lemma 3.2)",
                clip(p.equivalence_scope_bound()),
                clip(p.congruence_scope_bound())
            )?;
        }
    }
    Ok(())
}

/// `fundb explain <program> <fact> [--depth N]`: a derivation tree for a
/// fact of the (possibly infinite) least fixpoint, found within a bounded
/// horizon via the traced materialization.
fn explain(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut depth: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--depth" {
            depth = Some(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--depth needs a number".into()))?,
            );
        } else {
            positional.push(a);
        }
    }
    let [input, fact] = positional.as_slice() else {
        return Err(CliError::Usage("explain: expected <program> <fact>".into()));
    };
    let text = std::fs::read_to_string(input)
        .map_err(|e| CliError::Failed(format!("cannot read {input}: {e}")))?;
    let mut ws = Workspace::new();
    ws.parse(&text)?;
    let normal = fundb_core::normalize(&ws.program, &mut ws.interner);
    let pure = fundb_core::to_pure(&normal, &ws.db, &mut ws.interner)?;

    // Parse the fact through the workspace's elaboration.
    let stmts = parse_source(&format!("{fact}."))?;
    let [fundb_parser::PStatement::Rule(rule)] = &stmts[..] else {
        return Err(CliError::Failed("expected a single ground atom".into()));
    };
    let mut el = Elaborator::new();
    for (p, sig) in &pure.schema.sigs {
        if sig.functional {
            el.force_functional(ws.interner.resolve(p.sym()));
        }
    }
    let atom = el.atom(&rule.head, &mut ws.interner)?;
    let cst_args: Vec<fundb_term::Cst> = atom
        .args()
        .iter()
        .map(|a| {
            a.as_const()
                .ok_or_else(|| CliError::Failed(format!("fact `{fact}` is not ground")))
        })
        .collect::<Result<_, _>>()?;
    let Some(ft) = atom.fterm() else {
        return Err(CliError::Failed(
            "explain currently supports functional facts".into(),
        ));
    };
    let Some(path) = spec_io::pure_path_with_map(ft, &pure.sym_map) else {
        writeln!(out, "{fact} does not hold (unknown instantiation)")?;
        return Ok(());
    };
    let horizon = depth.unwrap_or_else(|| (path.len() + 4).max(pure.schema.max_ground_depth));
    let mat = fundb_core::BoundedMaterialization::run_traced(&pure, horizon, &mut ws.interner)?;
    match mat.explain(atom.pred(), &path, &cst_args) {
        Some(d) => {
            write!(out, "{}", fundb_datalog::Provenance::render(&d, &ws.interner))?;
        }
        None => writeln!(
            out,
            "no derivation within horizon {horizon} (the fact may not hold, or may need a deeper horizon — try --depth)"
        )?,
    }
    Ok(())
}

fn clip(v: u128) -> String {
    if v == u128::MAX {
        "≥2^127".to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn write_program(dir: &std::path::Path, name: &str, src: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, src).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fundb-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const MEETS: &str = "Meets(t, x), Next(x, y) -> Meets(t+1, y).
Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).\n";

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("fundb compile"));
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        assert!(matches!(run_str(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn compile_show_check_round_trip() {
        let dir = tempdir();
        let prog = write_program(&dir, "meets.fdb", MEETS);
        let spec_path = dir.join("meets.fspec").to_string_lossy().into_owned();

        let out = run_str(&["compile", &prog, "-o", &spec_path]).unwrap();
        assert!(out.contains("clusters"));

        // Show works on both the program and the spec file.
        let shown_prog = run_str(&["show", &prog]).unwrap();
        let shown_spec = run_str(&["show", &spec_path]).unwrap();
        assert!(shown_prog.contains("Meets(Tony)"));
        assert!(shown_spec.contains("Meets(Tony)"));

        // Check against the program…
        let out = run_str(&["check", &prog, "Meets(4, Tony)", "Meets(4, Jan)"]).unwrap();
        assert!(out.contains("Meets(4, Tony) -> true"));
        assert!(out.contains("Meets(4, Jan) -> false"));
        // …and against the spec file, with the rules forgotten (§1).
        let out = run_str(&["check", &spec_path, "Meets(5, Jan)", "Next(Tony, Jan)"]).unwrap();
        assert!(out.contains("Meets(5, Jan) -> true"));
        assert!(out.contains("Next(Tony, Jan) -> true"));
    }

    #[test]
    fn query_enumerates() {
        let dir = tempdir();
        let prog = write_program(&dir, "meets2.fdb", MEETS);
        let out = run_str(&["query", &prog, "Meets(t, x)", "--limit", "4"]).unwrap();
        assert!(out.contains("0: (Tony)"));
        assert!(out.contains("1: (Jan)"));
    }

    #[test]
    fn analyze_reports_infinity_and_params() {
        let dir = tempdir();
        let prog = write_program(&dir, "meets3.fdb", MEETS);
        let out = run_str(&["analyze", &prog]).unwrap();
        assert!(out.contains("INFINITE"));
        assert!(out.contains("data parameters"));
    }

    #[test]
    fn check_mixed_terms_against_spec_file() {
        let dir = tempdir();
        let prog = write_program(
            &dir,
            "lists.fdb",
            "P(x) -> Member(ext(0, x), x).
             P(y), Member(s, x) -> Member(ext(s, y), y).
             P(y), Member(s, x) -> Member(ext(s, y), x).
             P(A). P(B).\n",
        );
        let spec_path = dir.join("lists.fspec").to_string_lossy().into_owned();
        run_str(&["compile", &prog, "-o", &spec_path, "--minimize"]).unwrap();
        let out = run_str(&[
            "check",
            &spec_path,
            "Member(ext(ext(0, A), B), A)",
            "Member(ext(0, A), B)",
        ])
        .unwrap();
        assert!(out.contains("Member(ext(ext(0, A), B), A) -> true"));
        assert!(out.contains("Member(ext(0, A), B) -> false"));
    }

    #[test]
    fn minimize_flag_shrinks() {
        let dir = tempdir();
        let prog = write_program(
            &dir,
            "lists2.fdb",
            "P(x) -> Member(ext(0, x), x).
             P(y), Member(s, x) -> Member(ext(s, y), y).
             P(y), Member(s, x) -> Member(ext(s, y), x).
             P(A). P(B).\n",
        );
        let full = run_str(&["show", &prog]).unwrap();
        let min = run_str(&["show", &prog, "--minimize"]).unwrap();
        assert!(full.contains("clusters: 6"));
        assert!(min.contains("clusters: 4"));
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn explain_renders_a_proof() {
        let dir = std::env::temp_dir().join(format!(
            "fundb-cli-explain-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let prog = dir.join("meets.fdb");
        std::fs::write(
            &prog,
            "Meets(t, x), Next(x, y) -> Meets(t+1, y).
             Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).\n",
        )
        .unwrap();
        let prog = prog.to_string_lossy().into_owned();
        let out = run_str(&["explain", &prog, "Meets(2, Tony)"]).unwrap();
        assert!(out.contains("[by rule"), "{out}");
        assert!(out.contains("[given]"), "{out}");
        assert!(out.contains("Meets"), "{out}");
        // Non-facts report no derivation.
        let out = run_str(&["explain", &prog, "Meets(1, Tony)"]).unwrap();
        assert!(out.contains("no derivation"), "{out}");
    }
}
