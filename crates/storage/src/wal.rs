//! The append-only write-ahead log.
//!
//! A WAL file is a fixed header followed by checksummed, length-prefixed
//! records:
//!
//! ```text
//! header:  "FDBWAL01" (8)  version u32 (=1)  base_seq u64
//! record:  len u32  crc u32  payload (len bytes, crc = CRC-32C of payload)
//! payload: kind u8  kind-specific fields (little-endian)
//! ```
//!
//! `base_seq` names the snapshot the log extends: replaying the log onto
//! snapshot `base_seq` reconstructs the database. Record kinds:
//!
//! * `DefSym` — defines file-local symbol id `n` (dense, in order) as a
//!   string, so facts and rules can be stored as fixed-width ids and the
//!   recovered interner assigns identical ids when it starts empty;
//! * `Fact` — one inserted row (file-local pred and constant ids);
//! * `Rows` — a batch of derived rows, emitted when a wide round
//!   overflows the sink's in-memory batch (the common case fuses the
//!   batch into the round's marker instead; see `RoundCommit`). The
//!   payload is a sequence of groups — a varint `pred, arity, count`
//!   header, then `count * arity` raw little-endian cells — so a round's
//!   contiguous per-relation row slices are copied in, not re-encoded
//!   per value. Cells are `u32`, or `u16` in the narrow variant the
//!   writer picks when every file-local symbol id fits (which halves
//!   the log's row payload — the E17 overhead budget);
//! * `RoundCommit` — a completed-round marker carrying the cumulative
//!   [`EvalStats`] at that boundary, and, fused into the same record,
//!   the row groups the round derived (one frame, one checksum, and one
//!   fault point per round instead of two). **Recovery replays only up
//!   to the last intact marker**: everything after it (intact or torn)
//!   is truncated, which is what makes recovery land on a
//!   completed-round prefix of the uninterrupted run;
//! * `Retract` — one completed retraction round: the asserted target
//!   tuple, the full over-delete set and the rows re-derivation
//!   restored (both as row groups, in execution order, so replay
//!   reproduces the tombstone/free-list state and thereby the RowIds of
//!   the uninterrupted run), plus the cumulative [`EvalStats`] after
//!   the round. Like `RoundCommit` it is a **commit marker**: a crash
//!   mid-retraction leaves no `Retract` record, recovery truncates to
//!   the previous marker, and the retraction simply never happened;
//! * `Rule` — a logged rule definition;
//! * `Note` — an opaque UTF-8 payload for upper layers (the REPL logs
//!   accepted input lines this way).
//!
//! The IO faults of [`FaultPlan`] (`torn_write`, `short_read`,
//! `fsync_fail`, `crash_after_record`) are injected here, at the record
//! granularity the crash-recovery harness enumerates.

use crate::codec::{crc32c, put_str, put_u32, put_u64, put_uv, CodecError, Reader};
use fundb_datalog::{EvalStats, FaultPlan};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"FDBWAL01";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + version + base sequence number.
pub const WAL_HEADER_LEN: u64 = 8 + 4 + 8;

/// Number of `u64` counters a `RoundCommit` marker carries — the fields of
/// [`EvalStats`], in declaration order.
pub const STAT_FIELDS: usize = 12;

/// Appended bytes buffered in memory before an automatic write-through.
const FLUSH_THRESHOLD: usize = 256 * 1024;

/// [`EvalStats`] as the fixed-width wire tuple a `RoundCommit` carries.
pub fn stats_to_wire(s: &EvalStats) -> [u64; STAT_FIELDS] {
    [
        s.rounds as u64,
        s.derived as u64,
        s.join_probes as u64,
        s.index_hits as u64,
        s.index_misses as u64,
        s.magic_rules as u64,
        s.demanded_tuples as u64,
        s.replans as u64,
        s.bloom_skips as u64,
        s.shared_prefix_hits as u64,
        s.retractions as u64,
        s.rederived as u64,
    ]
}

/// Inverse of [`stats_to_wire`].
pub fn stats_from_wire(w: &[u64; STAT_FIELDS]) -> EvalStats {
    EvalStats {
        rounds: w[0] as usize,
        derived: w[1] as usize,
        join_probes: w[2] as usize,
        index_hits: w[3] as usize,
        index_misses: w[4] as usize,
        magic_rules: w[5] as usize,
        demanded_tuples: w[6] as usize,
        replans: w[7] as usize,
        bloom_skips: w[8] as usize,
        shared_prefix_hits: w[9] as usize,
        retractions: w[10] as usize,
        rederived: w[11] as usize,
    }
}

/// One term of a logged rule, in file-local symbol ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireTerm {
    /// A variable.
    Var(u32),
    /// A constant.
    Const(u32),
}

/// One atom of a logged rule, in file-local symbol ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireAtom {
    /// File-local id of the predicate symbol.
    pub pred: u32,
    /// The argument terms.
    pub args: Vec<WireTerm>,
}

/// A decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Defines file-local symbol id `id` (dense, in file order) as `name`.
    DefSym {
        /// The file-local id being defined (must equal the count of
        /// previously defined symbols).
        id: u32,
        /// The symbol's string.
        name: String,
    },
    /// One inserted row.
    Fact {
        /// File-local id of the predicate symbol.
        pred: u32,
        /// File-local ids of the row's constants.
        row: Vec<u32>,
    },
    /// A completed-round marker: the cumulative statistics at a
    /// governor checkpoint boundary, with the round's derived rows fused
    /// into the same record. Recovery replays up to the last one.
    RoundCommit {
        /// [`EvalStats`] as a wire tuple (see [`stats_to_wire`]).
        stats: [u64; STAT_FIELDS],
        /// The rows this round derived (empty for bare markers such as
        /// base-fact commits), in the same group encoding and order as
        /// [`WalRecord::Rows`].
        rows: Vec<(u32, Vec<u32>)>,
    },
    /// A logged rule definition.
    Rule {
        /// The head atom.
        head: WireAtom,
        /// The body atoms.
        body: Vec<WireAtom>,
    },
    /// An opaque UTF-8 payload for upper layers.
    Note {
        /// The payload.
        text: String,
    },
    /// One completed retraction round, recorded as a commit marker (a
    /// crash before this record lands leaves the pre-retraction state).
    /// `deleted` is the over-delete set in discovery order and
    /// `restored` the re-derived survivors in restoration order; replay
    /// tombstones then revives in exactly that order, reproducing the
    /// free-list (and so the RowIds) of the uninterrupted run.
    Retract {
        /// File-local id of the retracted fact's predicate.
        pred: u32,
        /// The retracted fact's constants, file-local ids.
        row: Vec<u32>,
        /// Cumulative [`EvalStats`] after the retraction round.
        stats: [u64; STAT_FIELDS],
        /// Every row the over-delete pass tombstoned (the target first),
        /// in discovery order.
        deleted: Vec<(u32, Vec<u32>)>,
        /// Rows re-derivation restored in place, in restoration order.
        restored: Vec<(u32, Vec<u32>)>,
    },
    /// A batch of derived rows spilled mid-round (rounds that fit the
    /// sink's batch fuse their rows into the `RoundCommit` instead). The
    /// payload is a sequence of groups — varint `pred, arity, count`
    /// header, then `count * arity` raw little-endian cells (`u32`, or
    /// `u16` in the narrow on-disk variant) — so the writer can memcpy a
    /// round's contiguous per-relation row slices straight into the log
    /// (the E17 ns-per-row budget).
    Rows {
        /// `(pred, row)` pairs in deterministic commit order (relations in
        /// predicate order, rows in insertion order), file-local ids.
        rows: Vec<(u32, Vec<u32>)>,
    },
}

const KIND_DEFSYM: u8 = 1;
const KIND_FACT: u8 = 2;
const KIND_ROUND_COMMIT: u8 = 3;
const KIND_RULE: u8 = 4;
const KIND_NOTE: u8 = 5;
const KIND_ROWS: u8 = 6;
/// `Rows` with 2-byte cells (every file-local id fits a `u16`).
const KIND_ROWS16: u8 = 7;
/// `RoundCommit` with the round's row groups fused in (4-byte cells).
const KIND_ROUND_COMMIT_ROWS: u8 = 8;
/// `RoundCommit` with fused row groups, 2-byte cells.
const KIND_ROUND_COMMIT_ROWS16: u8 = 9;
/// A completed retraction round (commit marker, like `RoundCommit`).
const KIND_RETRACT: u8 = 10;

fn put_atom(buf: &mut Vec<u8>, atom: &WireAtom) {
    put_u32(buf, atom.pred);
    put_u32(buf, atom.args.len() as u32);
    for a in &atom.args {
        match a {
            WireTerm::Var(v) => {
                buf.push(0);
                put_u32(buf, *v);
            }
            WireTerm::Const(c) => {
                buf.push(1);
                put_u32(buf, *c);
            }
        }
    }
}

fn read_atom(r: &mut Reader<'_>) -> Result<WireAtom, CodecError> {
    let pred = r.u32()?;
    let n = r.u32()? as usize;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        let id = r.u32()?;
        args.push(match tag {
            0 => WireTerm::Var(id),
            1 => WireTerm::Const(id),
            _ => return Err(CodecError::BadValue),
        });
    }
    Ok(WireAtom { pred, args })
}

/// Encodes row groups (varint `pred, arity, count` headers followed by
/// raw little-endian `u32` cells), merging consecutive same-shape rows
/// under one header — the same layout the storage layer's bulk writer
/// emits.
fn put_groups(buf: &mut Vec<u8>, rows: &[(u32, Vec<u32>)]) {
    let mut i = 0;
    while i < rows.len() {
        let (pred, ref first) = rows[i];
        let arity = first.len();
        let mut j = i + 1;
        // Arity-0 rows carry no cells, so their count is the only record
        // of multiplicity — keep it 1 per group.
        while arity > 0 && j < rows.len() && rows[j].0 == pred && rows[j].1.len() == arity {
            j += 1;
        }
        put_uv(buf, u64::from(pred));
        put_uv(buf, arity as u64);
        put_uv(buf, (j - i) as u64);
        for (_, row) in &rows[i..j] {
            for &c in row {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        i = j;
    }
}

/// Decodes row groups until the reader is exhausted. `cell_bytes` is 4
/// for the `u32` variants, 2 for the narrow `u16` variants; both widen to
/// `u32` rows, so replay never sees the on-disk width.
fn read_groups(r: &mut Reader<'_>, cell_bytes: usize) -> Result<Vec<(u32, Vec<u32>)>, CodecError> {
    let mut rows = Vec::new();
    while !r.is_empty() {
        let pred = u32::try_from(r.uv()?).map_err(|_| CodecError::BadValue)?;
        let arity = r.uv()? as usize;
        let count = r.uv()? as usize;
        if count == 0 {
            return Err(CodecError::BadValue);
        }
        if arity == 0 {
            // Cell-less rows carry no payload to bound `count` by; the
            // writer emits exactly one per group.
            if count != 1 {
                return Err(CodecError::BadValue);
            }
            rows.push((pred, Vec::new()));
            continue;
        }
        let nbytes = count
            .checked_mul(arity)
            .and_then(|n| n.checked_mul(cell_bytes))
            .ok_or(CodecError::BadValue)?;
        let cells = r.bytes(nbytes)?;
        for row_cells in cells.chunks_exact(arity * cell_bytes) {
            let row: Vec<u32> = if cell_bytes == 4 {
                row_cells
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect()
            } else {
                row_cells
                    .chunks_exact(2)
                    .map(|b| u32::from(u16::from_le_bytes([b[0], b[1]])))
                    .collect()
            };
            rows.push((pred, row));
        }
    }
    Ok(rows)
}

impl WalRecord {
    /// Serializes the record payload (kind byte plus fields).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::DefSym { id, name } => {
                buf.push(KIND_DEFSYM);
                put_u32(buf, *id);
                put_str(buf, name);
            }
            WalRecord::Fact { pred, row } => {
                buf.push(KIND_FACT);
                put_u32(buf, *pred);
                put_u32(buf, row.len() as u32);
                for &c in row {
                    put_u32(buf, c);
                }
            }
            WalRecord::RoundCommit { stats, rows } => {
                buf.push(if rows.is_empty() {
                    KIND_ROUND_COMMIT
                } else {
                    KIND_ROUND_COMMIT_ROWS
                });
                for &v in stats {
                    put_u64(buf, v);
                }
                put_groups(buf, rows);
            }
            WalRecord::Retract {
                pred,
                row,
                stats,
                deleted,
                restored,
            } => {
                buf.push(KIND_RETRACT);
                put_u32(buf, *pred);
                put_u32(buf, row.len() as u32);
                for &c in row {
                    put_u32(buf, c);
                }
                for &v in stats {
                    put_u64(buf, v);
                }
                // The deleted groups are length-prefixed so the decoder
                // knows where the restored groups begin (group decoding
                // otherwise runs to the end of the payload).
                let mut del = Vec::new();
                put_groups(&mut del, deleted);
                put_uv(buf, del.len() as u64);
                buf.extend_from_slice(&del);
                put_groups(buf, restored);
            }
            WalRecord::Rule { head, body } => {
                buf.push(KIND_RULE);
                put_atom(buf, head);
                put_u32(buf, body.len() as u32);
                for a in body {
                    put_atom(buf, a);
                }
            }
            WalRecord::Note { text } => {
                buf.push(KIND_NOTE);
                put_str(buf, text);
            }
            WalRecord::Rows { rows } => {
                buf.push(KIND_ROWS);
                put_groups(buf, rows);
            }
        }
    }

    /// Parses a record payload. Any violation (unknown kind, short field,
    /// bad UTF-8) is a [`CodecError`] — during recovery that stops the
    /// scan, exactly like a CRC mismatch.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            KIND_DEFSYM => WalRecord::DefSym {
                id: r.u32()?,
                name: r.str()?.to_string(),
            },
            KIND_FACT => {
                let pred = r.u32()?;
                let n = r.u32()? as usize;
                let mut row = Vec::with_capacity(n.min(payload.len() / 4 + 1));
                for _ in 0..n {
                    row.push(r.u32()?);
                }
                WalRecord::Fact { pred, row }
            }
            kind @ (KIND_ROUND_COMMIT | KIND_ROUND_COMMIT_ROWS | KIND_ROUND_COMMIT_ROWS16) => {
                let mut stats = [0u64; STAT_FIELDS];
                for v in stats.iter_mut() {
                    *v = r.u64()?;
                }
                // A bare marker's trailing bytes are caught by the
                // whole-payload emptiness check below.
                let rows = match kind {
                    KIND_ROUND_COMMIT => Vec::new(),
                    KIND_ROUND_COMMIT_ROWS => read_groups(&mut r, 4)?,
                    _ => read_groups(&mut r, 2)?,
                };
                WalRecord::RoundCommit { stats, rows }
            }
            KIND_RETRACT => {
                let pred = r.u32()?;
                let n = r.u32()? as usize;
                let mut row = Vec::with_capacity(n.min(payload.len() / 4 + 1));
                for _ in 0..n {
                    row.push(r.u32()?);
                }
                let mut stats = [0u64; STAT_FIELDS];
                for v in stats.iter_mut() {
                    *v = r.u64()?;
                }
                let dlen = r.uv()? as usize;
                let mut del = Reader::new(r.bytes(dlen)?);
                let deleted = read_groups(&mut del, 4)?;
                let restored = read_groups(&mut r, 4)?;
                WalRecord::Retract {
                    pred,
                    row,
                    stats,
                    deleted,
                    restored,
                }
            }
            KIND_RULE => {
                let head = read_atom(&mut r)?;
                let n = r.u32()? as usize;
                let mut body = Vec::with_capacity(n.min(payload.len() / 9 + 1));
                for _ in 0..n {
                    body.push(read_atom(&mut r)?);
                }
                WalRecord::Rule { head, body }
            }
            KIND_NOTE => WalRecord::Note {
                text: r.str()?.to_string(),
            },
            KIND_ROWS => WalRecord::Rows {
                rows: read_groups(&mut r, 4)?,
            },
            KIND_ROWS16 => WalRecord::Rows {
                rows: read_groups(&mut r, 2)?,
            },
            _ => return Err(CodecError::BadValue),
        };
        if !r.is_empty() {
            return Err(CodecError::BadValue);
        }
        Ok(rec)
    }
}

/// Lifetime counters of one [`Wal`] handle (since open/create), surfaced
/// by the REPL's `:wal-stats`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub records: u64,
    /// Frame bytes appended (headers included).
    pub bytes: u64,
    /// Commit markers (`RoundCommit` or `Retract`) among the appended
    /// records.
    pub round_commits: u64,
    /// Buffered bytes handed to the OS (`flush` calls that wrote).
    pub flushes: u64,
    /// Durability syncs (`fsync`) completed.
    pub syncs: u64,
}

/// An open, append-only WAL handle.
///
/// Appends buffer in memory and reach the OS on [`flush`](Wal::flush)
/// (automatic past a threshold), so the durability window is "everything
/// flushed"; [`sync`](Wal::sync) additionally fsyncs. The
/// [`FaultPlan`] IO faults are evaluated per handle, counting appended
/// records from 1.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    buf: Vec<u8>,
    fault: FaultPlan,
    /// Records appended through this handle (fault counters key off this).
    appended: u64,
    /// Durability syncs attempted through this handle.
    sync_attempts: u64,
    /// Set once an injected fault killed the handle; every later
    /// operation fails with this message.
    dead: Option<String>,
    stats: WalStats,
}

fn dead_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, msg.to_string())
}

impl Wal {
    /// Creates (truncating) a WAL file whose records extend snapshot
    /// `base_seq`, under the given fault plan.
    pub fn create(path: &Path, base_seq: u64, fault: FaultPlan) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION);
        put_u64(&mut header, base_seq);
        file.write_all(&header)?;
        file.flush()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            buf: Vec::new(),
            fault,
            appended: 0,
            sync_attempts: 0,
            dead: None,
            stats: WalStats::default(),
        })
    }

    /// Opens an existing WAL file for appending, validating its header,
    /// and returns the handle plus the header's base sequence number.
    /// Call after [`recover`] has truncated the torn tail.
    pub fn open_append(path: &Path, fault: FaultPlan) -> io::Result<(Wal, u64)> {
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "WAL header truncated"))?;
        let base_seq = check_header(&header)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                buf: Vec::new(),
                fault,
                appended: 0,
                sync_attempts: 0,
                dead: None,
                stats: WalStats::default(),
            },
            base_seq,
        ))
    }

    /// The file this handle appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// This handle's lifetime counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Bytes buffered but not yet handed to the OS.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends one record (buffered).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let commit = matches!(
            rec,
            WalRecord::RoundCommit { .. } | WalRecord::Retract { .. }
        );
        self.append_with(commit, |buf| rec.encode(buf))
    }

    /// Appends a `Fact` record without an intermediate allocation — the
    /// hot path of the engine's row sink.
    pub fn append_fact(&mut self, pred: u32, row: &[u32]) -> io::Result<()> {
        self.append_with(false, |buf| {
            buf.push(KIND_FACT);
            put_u32(buf, pred);
            put_u32(buf, row.len() as u32);
            for &c in row {
                put_u32(buf, c);
            }
        })
    }

    /// Appends a `Rows` batch from a pre-encoded group buffer (a sequence
    /// of `pred, arity, count` varint headers each followed by
    /// `count * arity` raw little-endian cells — the layout
    /// [`WalRecord::Rows`] decodes; `narrow` selects 2-byte cells) — the
    /// engine sink's spill record for rounds too wide to fuse into their
    /// marker, framed and checksummed once for the whole batch.
    pub fn append_rows_raw(&mut self, entries: &[u8], narrow: bool) -> io::Result<()> {
        self.append_with(false, |buf| {
            buf.push(if narrow { KIND_ROWS16 } else { KIND_ROWS });
            buf.extend_from_slice(entries);
        })
    }

    /// Appends a `RoundCommit` marker carrying `stats`.
    pub fn append_round_commit(&mut self, stats: &EvalStats) -> io::Result<()> {
        self.append(&WalRecord::RoundCommit {
            stats: stats_to_wire(stats),
            rows: Vec::new(),
        })
    }

    /// Appends a `RoundCommit` marker with the round's pre-encoded row
    /// groups (same buffer layout as [`append_rows_raw`](Self::append_rows_raw))
    /// fused into the record — the engine sink's steady-state path: one
    /// frame, one checksum, and one fault point per round.
    pub fn append_round_commit_rows(
        &mut self,
        stats: &EvalStats,
        entries: &[u8],
        narrow: bool,
    ) -> io::Result<()> {
        let wire = stats_to_wire(stats);
        self.append_with(true, |buf| {
            buf.push(match (entries.is_empty(), narrow) {
                (true, _) => KIND_ROUND_COMMIT,
                (false, false) => KIND_ROUND_COMMIT_ROWS,
                (false, true) => KIND_ROUND_COMMIT_ROWS16,
            });
            for &v in &wire {
                put_u64(buf, v);
            }
            buf.extend_from_slice(entries);
        })
    }

    /// Core append: frames the payload written by `build`, applying the
    /// `crash_after_record` and `torn_write` faults at record granularity.
    fn append_with(&mut self, commit: bool, build: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
        if let Some(msg) = &self.dead {
            return Err(dead_err(msg));
        }
        if let Some(limit) = self.fault.crash_after_record {
            if self.appended >= limit as u64 {
                // A real crash would leave whatever was already handed to
                // the OS; flush so the harness observes exactly that.
                let _ = self.write_through();
                self.dead = Some("injected crash_after_record fault: WAL handle is dead".into());
                return Err(dead_err(self.dead.as_deref().unwrap_or_default()));
            }
        }
        let start = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 8]);
        build(&mut self.buf);
        let payload_len = self.buf.len() - start - 8;
        let crc = crc32c(&self.buf[start + 8..]);
        self.buf[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());

        let this_record = self.appended + 1;
        if self.fault.torn_write == Some(this_record as usize) {
            // The record reaches the file only as a prefix, as if the
            // process died mid-write; prior records land intact first.
            let frame = self.buf.split_off(start);
            self.write_through()?;
            let cut = (frame.len() / 2).max(1).min(frame.len() - 1);
            self.file.write_all(&frame[..cut])?;
            let _ = self.file.flush();
            self.dead = Some("injected torn_write fault: WAL handle is dead".into());
            return Err(dead_err(self.dead.as_deref().unwrap_or_default()));
        }

        self.appended = this_record;
        self.stats.records += 1;
        self.stats.bytes += (self.buf.len() - start) as u64;
        if commit {
            self.stats.round_commits += 1;
        }
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.write_through()?;
        }
        Ok(())
    }

    fn write_through(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buf)?;
        self.buf.clear();
        self.stats.flushes += 1;
        Ok(())
    }

    /// Hands every buffered byte to the OS (no fsync). After a successful
    /// flush the appended records survive a process kill, though not
    /// necessarily a power loss.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(msg) = &self.dead {
            return Err(dead_err(msg));
        }
        self.write_through()
    }

    /// Flushes and fsyncs: the full durability barrier. Subject to the
    /// `fsync_fail` fault (which fails the call but leaves the handle
    /// usable — callers decide whether to retry or surface it).
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(msg) = &self.dead {
            return Err(dead_err(msg));
        }
        self.sync_attempts += 1;
        if self.fault.fsync_fail == Some(self.sync_attempts as usize) {
            return Err(io::Error::other("injected fsync_fail fault"));
        }
        self.write_through()?;
        self.file.sync_data()?;
        self.stats.syncs += 1;
        Ok(())
    }
}

fn check_header(header: &[u8]) -> io::Result<u64> {
    if header.len() < WAL_HEADER_LEN as usize || header[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a fundb WAL file (bad magic)",
        ));
    }
    let mut r = Reader::new(&header[8..]);
    let version = r
        .u32()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if version != WAL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "WAL format version {version} is not supported (this build reads {WAL_VERSION})"
            ),
        ));
    }
    r.u64()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// What [`recover`] found and did: the replayable record prefix plus an
/// account of everything it had to cut.
#[derive(Debug)]
pub struct WalScan {
    /// The snapshot sequence number this log extends.
    pub base_seq: u64,
    /// The records up to and including the last intact commit marker
    /// (`RoundCommit` or `Retract`) — the completed-round prefix to
    /// replay.
    pub records: Vec<WalRecord>,
    /// Intact records *after* the last marker, dropped because their round
    /// never committed.
    pub dropped_records: usize,
    /// Bytes truncated from the file: the dropped records plus any torn
    /// or corrupt tail.
    pub truncated_bytes: u64,
}

/// Scans a WAL file, truncates it to its last intact commit marker — a
/// `RoundCommit` or `Retract` record —
/// (cutting torn/corrupt records and uncommitted tails), and returns the
/// replayable prefix. The `short_read` fault makes the scan treat the
/// `N`-th record as cut off by end-of-file.
pub fn recover(path: &Path, fault: FaultPlan) -> io::Result<WalScan> {
    let data = std::fs::read(path)?;
    if data.len() < WAL_HEADER_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "WAL header truncated",
        ));
    }
    let base_seq = check_header(&data[..WAL_HEADER_LEN as usize])?;

    let mut pos = WAL_HEADER_LEN as usize;
    let mut records = Vec::new();
    let mut index = 0u64;
    // Offset just past the last intact commit marker, and its record count.
    let mut marker: (usize, usize) = (pos, 0);
    while pos < data.len() {
        index += 1;
        if fault.short_read == Some(index as usize) {
            break;
        }
        if pos + 8 > data.len() {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > data.len() {
            break; // torn payload
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32c(payload) != crc {
            break; // corrupt record
        }
        let Ok(rec) = WalRecord::decode(payload) else {
            break; // CRC-clean but malformed: stop, like corruption
        };
        pos += 8 + len;
        let is_marker = matches!(
            rec,
            WalRecord::RoundCommit { .. } | WalRecord::Retract { .. }
        );
        records.push(rec);
        if is_marker {
            marker = (pos, records.len());
        }
    }
    let (cut_at, keep) = marker;
    let dropped_records = records.len() - keep;
    records.truncate(keep);
    let truncated_bytes = data.len() as u64 - cut_at as u64;
    if truncated_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(cut_at as u64)?;
        file.sync_data()?;
    }
    Ok(WalScan {
        base_seq,
        records,
        dropped_records,
        truncated_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fundb-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::DefSym {
                id: 0,
                name: "edge".into(),
            },
            WalRecord::Fact {
                pred: 0,
                row: vec![1, 2],
            },
            WalRecord::Rule {
                head: WireAtom {
                    pred: 0,
                    args: vec![WireTerm::Var(3), WireTerm::Const(1)],
                },
                body: vec![WireAtom {
                    pred: 0,
                    args: vec![WireTerm::Var(3), WireTerm::Var(4)],
                }],
            },
            WalRecord::RoundCommit {
                stats: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
                rows: vec![(0, vec![1, 2]), (0, vec![2, 5]), (3, vec![])],
            },
            WalRecord::Note {
                text: "p(X) :- q(X).".into(),
            },
            WalRecord::RoundCommit {
                stats: [0; STAT_FIELDS],
                rows: Vec::new(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_files() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.000001");
        let mut wal = Wal::create(&path, 1, FaultPlan::default()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.stats().records, 6);
        assert_eq!(wal.stats().round_commits, 2);
        drop(wal);
        let scan = recover(&path, FaultPlan::default()).unwrap();
        assert_eq!(scan.base_seq, 1);
        assert_eq!(scan.records, sample_records());
        assert_eq!(scan.dropped_records, 0);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn narrow_and_fused_row_records_round_trip() {
        let dir = tmpdir("narrow");
        let path = dir.join("wal.000000");
        let mut wal = Wal::create(&path, 0, FaultPlan::default()).unwrap();
        let rows = vec![(0u32, vec![1u32, 2]), (0, vec![2, 65535]), (3, vec![])];
        // Hand-encode the group buffer the storage sink produces: one
        // 2-cell group of two rows, then one cell-less group.
        let mut narrow_buf = Vec::new();
        for (cells, n) in [(vec![1u16, 2, 2, 65535], 2u64), (Vec::new(), 1)] {
            put_uv(&mut narrow_buf, if cells.is_empty() { 3 } else { 0 });
            put_uv(&mut narrow_buf, (cells.len() as u64) / n);
            put_uv(&mut narrow_buf, n);
            for c in cells {
                narrow_buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        let mut wide_buf = Vec::new();
        put_groups(&mut wide_buf, &rows);
        let stats = EvalStats {
            rounds: 7,
            ..EvalStats::default()
        };
        wal.append_rows_raw(&narrow_buf, true).unwrap();
        wal.append_rows_raw(&wide_buf, false).unwrap();
        wal.append_round_commit_rows(&stats, &narrow_buf, true)
            .unwrap();
        wal.append_round_commit_rows(&stats, &wide_buf, false)
            .unwrap();
        // An empty batch degrades to a bare marker regardless of width.
        wal.append_round_commit_rows(&stats, &[], true).unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.stats().round_commits, 3);
        drop(wal);
        let scan = recover(&path, FaultPlan::default()).unwrap();
        let wire = stats_to_wire(&stats);
        assert_eq!(
            scan.records,
            vec![
                WalRecord::Rows { rows: rows.clone() },
                WalRecord::Rows { rows: rows.clone() },
                WalRecord::RoundCommit {
                    stats: wire,
                    rows: rows.clone(),
                },
                WalRecord::RoundCommit { stats: wire, rows },
                WalRecord::RoundCommit {
                    stats: wire,
                    rows: Vec::new(),
                },
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_retract() -> WalRecord {
        WalRecord::Retract {
            pred: 0,
            row: vec![1, 2],
            stats: [9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 2, 1],
            deleted: vec![(0, vec![1, 2]), (1, vec![1, 2]), (1, vec![1, 5])],
            restored: vec![(1, vec![1, 5])],
        }
    }

    #[test]
    fn retract_records_round_trip_and_commit() {
        let dir = tmpdir("retract");
        let path = dir.join("wal.000000");
        let mut wal = Wal::create(&path, 0, FaultPlan::default()).unwrap();
        // Empty deleted/restored lists and an arity-0 target must survive
        // the length-prefixed group split too.
        let bare = WalRecord::Retract {
            pred: 7,
            row: Vec::new(),
            stats: [0; STAT_FIELDS],
            deleted: vec![(7, vec![])],
            restored: Vec::new(),
        };
        wal.append(&sample_retract()).unwrap();
        wal.append(&bare).unwrap();
        // An uncommitted fact after the last Retract marker is dropped.
        wal.append(&WalRecord::Fact {
            pred: 0,
            row: vec![4, 4],
        })
        .unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.stats().round_commits, 2, "Retract is a commit marker");
        drop(wal);
        let scan = recover(&path, FaultPlan::default()).unwrap();
        assert_eq!(scan.records, vec![sample_retract(), bare]);
        assert_eq!(scan.dropped_records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_truncates_to_last_marker() {
        let dir = tmpdir("truncate");
        let path = dir.join("wal.000000");
        let mut wal = Wal::create(&path, 0, FaultPlan::default()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        // Uncommitted tail: facts after the final marker must be dropped.
        wal.append(&WalRecord::Fact {
            pred: 0,
            row: vec![9, 9],
        })
        .unwrap();
        wal.flush().unwrap();
        drop(wal);
        let len_before = std::fs::metadata(&path).unwrap().len();
        let scan = recover(&path, FaultPlan::default()).unwrap();
        assert_eq!(scan.records, sample_records());
        assert_eq!(scan.dropped_records, 1);
        assert!(scan.truncated_bytes > 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before - scan.truncated_bytes
        );
        // Idempotent: a second recovery finds a clean log.
        let again = recover(&path, FaultPlan::default()).unwrap();
        assert_eq!(again.records, sample_records());
        assert_eq!(again.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_cuts_scan_at_previous_marker() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.000000");
        let mut wal = Wal::create(&path, 0, FaultPlan::default()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Flip a byte inside the final marker's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = recover(&path, FaultPlan::default()).unwrap();
        assert_eq!(scan.records, sample_records()[..4].to_vec());
        assert_eq!(scan.dropped_records, 1, "the intact Note is dropped too");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_fault_leaves_prefix_and_kills_handle() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.000000");
        let fault = FaultPlan::parse("torn_write:4");
        let mut wal = Wal::create(&path, 0, fault).unwrap();
        let recs = sample_records();
        for rec in &recs[..3] {
            wal.append(rec).unwrap();
        }
        let err = wal.append(&recs[3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Handle is dead from here on.
        assert!(wal.append(&recs[4]).is_err());
        assert!(wal.flush().is_err());
        drop(wal);
        // No marker ever landed: recovery keeps nothing.
        let scan = recover(&path, FaultPlan::default()).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_record_and_fsync_faults_fire_once_armed() {
        let dir = tmpdir("crash");
        let path = dir.join("wal.000000");
        let fault = FaultPlan::parse("crash_after_record:2,fsync_fail:1");
        let mut wal = Wal::create(&path, 0, fault).unwrap();
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        let err = wal.sync().unwrap_err();
        assert_eq!(err.to_string(), "injected fsync_fail fault");
        wal.sync().unwrap(); // only the 1st sync fails
        wal.append(&recs[1]).unwrap();
        assert_eq!(
            wal.append(&recs[2]).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_fault_truncates_scan() {
        let dir = tmpdir("shortread");
        let path = dir.join("wal.000000");
        let mut wal = Wal::create(&path, 0, FaultPlan::default()).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Pretend record 5 is cut off: scan keeps records 1..=4 (marker).
        let scan = recover(&path, FaultPlan::parse("short_read:5")).unwrap();
        assert_eq!(scan.records, sample_records()[..4].to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_rejected() {
        let dir = tmpdir("version");
        let path = dir.join("wal.000000");
        let mut header = Vec::new();
        header.extend_from_slice(&WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION + 1);
        put_u64(&mut header, 0);
        std::fs::write(&path, &header).unwrap();
        let err = recover(&path, FaultPlan::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("not supported"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
