//! Minimal binary codec shared by the WAL, the snapshot format, and the
//! binary specification format: little-endian fixed-width integers,
//! length-prefixed strings, and CRC-32C (Castagnoli) checksums.
//! Hand-rolled because the build environment is offline — no serde, no
//! crc crates.

/// CRC-32C (Castagnoli, poly `0x1EDC6F41` reflected to `0x82F63B78`)
/// lookup tables for slicing-by-8, built at compile time. `CRC_TABLES[0]`
/// is the classic bytewise table; `CRC_TABLES[k]` advances a byte through
/// `k` additional zero bytes, letting the software loop fold eight input
/// bytes per iteration with eight independent lookups.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32C (Castagnoli) of `bytes` — the checksum guarding every WAL
/// record and snapshot body against torn writes and bit rot. Castagnoli
/// rather than IEEE because x86-64 executes it in hardware (SSE 4.2's
/// `crc32` instruction, detected at runtime): the WAL sits on the
/// engine's commit path, so checksumming must stay a small fraction of
/// the per-row derivation cost. The software fallback is slicing-by-8
/// over [`CRC_TABLES`]; both paths produce identical values.
pub fn crc32c(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the sse4.2 check above guarantees the `crc32`
        // instructions the function compiles to exist on this CPU.
        return unsafe { crc32c_hw(bytes) };
    }
    crc32c_sw(bytes)
}

/// Hardware CRC-32C: folds eight bytes per `crc32` instruction.
///
/// # Safety
///
/// Must only be called after `is_x86_feature_detected!("sse4.2")`
/// confirmed the instruction set is present.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        crc = _mm_crc32_u64(crc, v);
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// Software CRC-32C: slicing-by-8 over the compile-time tables.
fn crc32c_sw(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` length prefix followed by the UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends an LEB128 varint — the encoding of the row-batch records on
/// the WAL hot path, where symbol and predicate ids are small and a
/// fixed-width `u32` would quadruple the log's row payload.
pub fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Why a decode failed. A short read is the signature of a torn tail
/// (recovery truncates there); the other variants mean corruption that the
/// CRC did not catch or a format violation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it promised.
    Short,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A tag or count field held an impossible value.
    BadValue,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CodecError::Short => "truncated record",
            CodecError::BadUtf8 => "invalid UTF-8 in record",
            CodecError::BadValue => "invalid value in record",
        })
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an immutable byte slice. Every read
/// returns [`CodecError::Short`] instead of panicking when the slice runs
/// out, so torn tails surface as recoverable errors.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole slice.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Short);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.bytes(n)?).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads an LEB128 varint (at most ten bytes — a full `u64`).
    pub fn uv(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::BadValue);
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::BadValue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // Standard CRC-32C (Castagnoli) test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_hw_sw_and_bytewise_agree_at_every_length() {
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        // Every alignment and remainder length of the 8-byte fold, through
        // both the dispatching entry point and the software path.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(37) >> 3) as u8)
            .collect();
        for start in 0..9 {
            for end in start..data.len() {
                let expect = bytewise(&data[start..end]);
                assert_eq!(crc32c(&data[start..end]), expect, "slice [{start}..{end}]");
                assert_eq!(crc32c_sw(&data[start..end]), expect, "sw [{start}..{end}]");
            }
        }
    }

    #[test]
    fn varint_round_trips_and_rejects_overflow() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_uv(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.uv(), Ok(v));
        }
        assert!(r.is_empty());
        // An 11-byte varint (or a 10th byte above 1) overflows u64.
        let mut bad = vec![0xFF; 10];
        bad.push(0x01);
        assert_eq!(Reader::new(&bad).uv(), Err(CodecError::BadValue));
        let mut short = Reader::new(&[0x80u8][..]);
        assert_eq!(short.uv(), Err(CodecError::Short));
    }

    #[test]
    fn reader_round_trips_and_detects_short() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), Ok(7));
        assert_eq!(r.u64(), Ok(u64::MAX - 3));
        assert_eq!(r.str(), Ok("héllo"));
        assert!(r.is_empty());
        assert_eq!(r.u8(), Err(CodecError::Short));

        let mut short = Reader::new(&buf[..5]);
        assert_eq!(short.u32(), Ok(7));
        assert_eq!(short.u64(), Err(CodecError::Short));
    }
}
