//! Versioned binary snapshots of the row store.
//!
//! A snapshot is a self-contained image of a durable database at one
//! `RoundCommit` boundary: the file-local symbol table (in id order), the
//! logged rules, every relation's rows in insertion (RowId) order, and
//! the cumulative [`EvalStats`](fundb_datalog::EvalStats) at the boundary.
//! Once a snapshot is durable (written to a temporary file, fsynced, and
//! atomically renamed into place) the WAL it supersedes can be deleted —
//! that is the compaction path.
//!
//! ```text
//! header:  "FDBSNAP1" (8)  version u32 (=1)  seq u64
//! body:    len u64  crc u32  payload (len bytes, crc = CRC-32C of payload)
//! payload: symbols, rules, relations, stats (see `encode_body`)
//! ```
//!
//! Forward compatibility is rejection: a reader presented with a version
//! newer than it understands reports a clean error instead of guessing.

use crate::codec::{crc32c, put_str, put_u32, put_u64, CodecError, Reader};
use crate::wal::{WireAtom, WireTerm, STAT_FIELDS};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"FDBSNAP1";
/// Current snapshot format version.
pub const SNAP_VERSION: u32 = 1;

/// One relation's rows, in file-local symbol ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRelation {
    /// File-local id of the predicate symbol.
    pub pred: u32,
    /// Number of columns.
    pub arity: u32,
    /// Number of rows (explicit, so zero-arity relations round-trip).
    pub nrows: u64,
    /// Rows flattened in insertion (RowId) order: row `i` occupies
    /// `rows[i*arity..(i+1)*arity]`.
    pub rows: Vec<u32>,
    /// Asserted (base-fact) bitmap: row `i`'s bit is
    /// `asserted[i/64] >> (i%64) & 1`, `ceil(nrows/64)` words. Loading
    /// replays asserted rows as base facts and the rest as derived, so a
    /// retraction after recovery sees the same self-support set as one
    /// before it.
    pub asserted: Vec<u64>,
}

/// A logged rule, in file-local symbol ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRule {
    /// The head atom.
    pub head: WireAtom,
    /// The body atoms.
    pub body: Vec<WireAtom>,
}

/// The decoded content of a snapshot file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotData {
    /// The snapshot's sequence number (matches the `NNNNNN` in its file
    /// name and the `base_seq` of the WAL that extends it).
    pub seq: u64,
    /// The file-local symbol table: `symbols[i]` is the string of file id
    /// `i`. Recovery interns these in order, so a fresh interner assigns
    /// identical ids.
    pub symbols: Vec<String>,
    /// The logged rules.
    pub rules: Vec<WireRule>,
    /// Every relation, sorted by predicate file id (deterministic
    /// encoding regardless of hash-map iteration order).
    pub relations: Vec<WireRelation>,
    /// Cumulative [`EvalStats`](fundb_datalog::EvalStats) at the
    /// snapshot boundary, as a wire tuple.
    pub stats: [u64; STAT_FIELDS],
}

fn put_atom(buf: &mut Vec<u8>, atom: &WireAtom) {
    put_u32(buf, atom.pred);
    put_u32(buf, atom.args.len() as u32);
    for a in &atom.args {
        match a {
            WireTerm::Var(v) => {
                buf.push(0);
                put_u32(buf, *v);
            }
            WireTerm::Const(c) => {
                buf.push(1);
                put_u32(buf, *c);
            }
        }
    }
}

fn read_atom(r: &mut Reader<'_>) -> Result<WireAtom, CodecError> {
    let pred = r.u32()?;
    let n = r.u32()? as usize;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        let id = r.u32()?;
        args.push(match tag {
            0 => WireTerm::Var(id),
            1 => WireTerm::Const(id),
            _ => return Err(CodecError::BadValue),
        });
    }
    Ok(WireAtom { pred, args })
}

fn encode_body(data: &SnapshotData) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, data.symbols.len() as u32);
    for name in &data.symbols {
        put_str(&mut buf, name);
    }
    put_u32(&mut buf, data.rules.len() as u32);
    for rule in &data.rules {
        put_atom(&mut buf, &rule.head);
        put_u32(&mut buf, rule.body.len() as u32);
        for a in &rule.body {
            put_atom(&mut buf, a);
        }
    }
    put_u32(&mut buf, data.relations.len() as u32);
    for rel in &data.relations {
        put_u32(&mut buf, rel.pred);
        put_u32(&mut buf, rel.arity);
        debug_assert_eq!(rel.rows.len() as u64, rel.nrows * rel.arity as u64);
        put_u64(&mut buf, rel.nrows);
        for &c in &rel.rows {
            put_u32(&mut buf, c);
        }
        debug_assert_eq!(rel.asserted.len(), (rel.nrows as usize).div_ceil(64));
        for &w in &rel.asserted {
            put_u64(&mut buf, w);
        }
    }
    for &v in &data.stats {
        put_u64(&mut buf, v);
    }
    buf
}

fn decode_body(seq: u64, body: &[u8]) -> Result<SnapshotData, CodecError> {
    let mut r = Reader::new(body);
    let nsyms = r.u32()? as usize;
    let mut symbols = Vec::with_capacity(nsyms.min(body.len() / 4 + 1));
    for _ in 0..nsyms {
        symbols.push(r.str()?.to_string());
    }
    let nrules = r.u32()? as usize;
    let mut rules = Vec::with_capacity(nrules.min(body.len() / 9 + 1));
    for _ in 0..nrules {
        let head = read_atom(&mut r)?;
        let nbody = r.u32()? as usize;
        let mut rbody = Vec::with_capacity(nbody.min(body.len() / 9 + 1));
        for _ in 0..nbody {
            rbody.push(read_atom(&mut r)?);
        }
        rules.push(WireRule { head, body: rbody });
    }
    let nrels = r.u32()? as usize;
    let mut relations = Vec::with_capacity(nrels.min(body.len() / 16 + 1));
    for _ in 0..nrels {
        let pred = r.u32()?;
        let arity = r.u32()?;
        let nrows = r.u64()?;
        let ncells = (nrows as usize)
            .checked_mul(arity as usize)
            .ok_or(CodecError::BadValue)?;
        let mut rows = Vec::with_capacity(ncells.min(body.len() / 4 + 1));
        for _ in 0..ncells {
            rows.push(r.u32()?);
        }
        let nwords = (nrows as usize).div_ceil(64);
        let mut asserted = Vec::with_capacity(nwords.min(body.len() / 8 + 1));
        for _ in 0..nwords {
            asserted.push(r.u64()?);
        }
        relations.push(WireRelation {
            pred,
            arity,
            nrows,
            rows,
            asserted,
        });
    }
    let mut stats = [0u64; STAT_FIELDS];
    for v in stats.iter_mut() {
        *v = r.u64()?;
    }
    if !r.is_empty() {
        return Err(CodecError::BadValue);
    }
    Ok(SnapshotData {
        seq,
        symbols,
        rules,
        relations,
        stats,
    })
}

/// Writes a snapshot durably: encode, write to `<path>.tmp`, fsync,
/// rename over `path`, and fsync the directory (best effort), so a crash
/// at any point leaves either the old file or the complete new one.
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> io::Result<()> {
    let body = encode_body(data);
    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(&SNAP_MAGIC);
    put_u32(&mut out, SNAP_VERSION);
    put_u64(&mut out, data.seq);
    put_u64(&mut out, body.len() as u64);
    put_u32(&mut out, crc32c(&body));
    out.extend_from_slice(&body);

    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&out)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory sync makes the rename itself durable; not all
        // filesystems support opening a directory, so failures are
        // tolerated.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads and validates a snapshot file. Bad magic, a version this build
/// does not understand, a length/CRC mismatch, or a malformed body all
/// report [`io::ErrorKind::InvalidData`] — the caller falls back to an
/// older snapshot.
pub fn read_snapshot(path: &Path) -> io::Result<SnapshotData> {
    let data = fs::read(path)?;
    if data.len() < 8 + 4 + 8 + 8 + 4 || data[..8] != SNAP_MAGIC {
        return Err(invalid("not a fundb snapshot (bad magic or truncated)"));
    }
    let mut r = Reader::new(&data[8..]);
    let version = r.u32().map_err(|e| invalid(e.to_string()))?;
    if version > SNAP_VERSION {
        return Err(invalid(format!(
            "snapshot format version {version} is from a newer build (this build reads ≤ {SNAP_VERSION})"
        )));
    }
    if version != SNAP_VERSION {
        return Err(invalid(format!("unknown snapshot version {version}")));
    }
    let seq = r.u64().map_err(|e| invalid(e.to_string()))?;
    let len = r.u64().map_err(|e| invalid(e.to_string()))? as usize;
    let crc = r.u32().map_err(|e| invalid(e.to_string()))?;
    let body = r
        .bytes(len)
        .map_err(|_| invalid("snapshot body truncated"))?;
    if !r.is_empty() {
        return Err(invalid("trailing bytes after snapshot body"));
    }
    if crc32c(body) != crc {
        return Err(invalid("snapshot body checksum mismatch"));
    }
    decode_body(seq, body).map_err(|e| invalid(format!("snapshot body malformed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fundb-snap-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            seq: 3,
            symbols: vec!["edge".into(), "path".into(), "a".into(), "b".into()],
            rules: vec![WireRule {
                head: WireAtom {
                    pred: 1,
                    args: vec![WireTerm::Var(2), WireTerm::Var(3)],
                },
                body: vec![WireAtom {
                    pred: 0,
                    args: vec![WireTerm::Var(2), WireTerm::Var(3)],
                }],
            }],
            relations: vec![
                WireRelation {
                    pred: 0,
                    arity: 2,
                    nrows: 1,
                    rows: vec![2, 3],
                    asserted: vec![0b1],
                },
                WireRelation {
                    pred: 1,
                    arity: 2,
                    nrows: 2,
                    rows: vec![2, 3, 3, 2],
                    asserted: vec![0b00],
                },
            ],
            stats: [4, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("snapshot.000003");
        write_snapshot(&path, &sample()).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), sample());
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_and_future_versions_are_rejected() {
        let dir = tmpdir("reject");
        let path = dir.join("snapshot.000003");
        write_snapshot(&path, &sample()).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped body byte → checksum mismatch.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncated body.
        std::fs::write(&path, &good[..good.len() - 2]).unwrap();
        assert!(read_snapshot(&path).is_err());

        // Future version → explicit forward-compat rejection.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("newer build"), "{err}");

        // Wrong magic.
        let mut magic = good.clone();
        magic[0] ^= 0xFF;
        std::fs::write(&path, &magic).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
