//! Durable storage for the datalog engine: an append-only, checksummed
//! write-ahead log of mutations and round-commit markers, periodic
//! versioned binary snapshots, and crash recovery that always lands on a
//! **completed-round prefix** of the uninterrupted history.
//!
//! Layers, bottom up:
//!
//! - [`codec`] — little-endian primitives, length-prefixed strings, and
//!   CRC-32C (hardware-accelerated on x86-64), shared by every on-disk format in the workspace.
//! - [`wal`] — the log itself: `FDBWAL01` header, `[len][crc][payload]`
//!   records, buffered appends with explicit flush/fsync points, and
//!   [`wal::recover`], which truncates torn or corrupt tails back to the
//!   last intact [`WalRecord::RoundCommit`] marker.
//! - [`snapshot`] — whole-state checkpoints (`FDBSNAP1`, versioned, CRC
//!   guarded, written atomically via tmp-file + rename) that let the log
//!   be compacted.
//! - [`store`] — [`DurableDb`]: ties a [`fundb_datalog::Database`] to a
//!   WAL + snapshot directory, tees the engine's deterministic merge into
//!   the log via [`fundb_datalog::RoundSink`], and rebuilds byte-identical
//!   state (rows, RowIds, `EvalStats`) on [`DurableDb::open`].
//!
//! Crash injection reuses the engine's [`fundb_datalog::FaultPlan`]
//! (`FUNDB_FAULT` knobs `torn_write:N`, `short_read:N`, `fsync_fail:N`,
//! `crash_after_record:N`), so the kill-at-every-crash-point harness can
//! drive both layers from one plan.

#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{
    read_snapshot, write_snapshot, SnapshotData, WireRelation, WireRule, SNAP_VERSION,
};
pub use store::{DurableDb, OpenDurable, RecoveryReport};
pub use wal::{
    recover, stats_from_wire, stats_to_wire, Wal, WalRecord, WalScan, WalStats, WireAtom, WireTerm,
    STAT_FIELDS, WAL_VERSION,
};
