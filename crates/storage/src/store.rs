//! The durable database: a [`dl::Database`] whose mutations flow through
//! a [`Wal`], checkpointed by periodic [`snapshot`](DurableDb::snapshot)s,
//! recovered by [`DurableDb::open`] (or the [`OpenDurable`] extension
//! trait, which puts `Database::open_durable` in scope).
//!
//! The recovery invariant: **opening a directory always lands on a
//! completed-round prefix of the uninterrupted history** — the latest
//! valid snapshot plus the WAL tail up to its last intact `RoundCommit`
//! marker, with torn/corrupt/uncommitted records truncated away. Replay
//! re-interns the logged symbol table in file order, so a process that
//! starts with a fresh [`Interner`] reconstructs byte-identical symbol
//! ids, rows, RowIds, and [`dl::EvalStats`].

use crate::codec::put_uv;
use crate::snapshot::{self, SnapshotData, WireRelation, WireRule};
use crate::wal::{
    self, stats_from_wire, stats_to_wire, Wal, WalRecord, WalStats, WireAtom, WireTerm,
};
use fundb_datalog as dl;
use fundb_term::{Cst, Interner, Pred, Sym, Var};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Sentinel in the interner→file id table: not yet logged.
const UNMAPPED: u32 = u32::MAX;

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot.{seq:06}"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal.{seq:06}"))
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// What [`DurableDb::open`] reconstructed and repaired, for observability
/// (`:wal-stats` in the REPL, assertions in the crash harness).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery started from (0 = none).
    pub snapshot_seq: u64,
    /// Rows loaded from that snapshot.
    pub snapshot_rows: usize,
    /// WAL records replayed (everything up to the last intact marker).
    pub replayed_records: usize,
    /// `Fact` records among them.
    pub replayed_facts: usize,
    /// `RoundCommit` markers among them.
    pub replayed_rounds: usize,
    /// `Retract` markers among them.
    pub replayed_retractions: usize,
    /// Intact records dropped because their round never committed.
    pub dropped_records: usize,
    /// Bytes truncated from the WAL (dropped records plus torn tail).
    pub truncated_bytes: u64,
}

/// Puts `Database::open_durable` in scope: the recovery entry point as a
/// method on the type it reconstructs.
pub trait OpenDurable {
    /// Opens (creating if absent) a durable database directory, running
    /// crash recovery: load the latest valid snapshot, replay the WAL
    /// tail to its last intact round marker, truncate the rest.
    fn open_durable(dir: &Path, interner: &mut Interner) -> io::Result<DurableDb>;
}

impl OpenDurable for dl::Database {
    fn open_durable(dir: &Path, interner: &mut Interner) -> io::Result<DurableDb> {
        DurableDb::open(dir, interner)
    }
}

fn term_to_wire(t: &dl::Term, to_file: &[u32]) -> Option<WireTerm> {
    let fid = |s: Sym| -> Option<u32> {
        match to_file.get(s.index()) {
            Some(&f) if f != UNMAPPED => Some(f),
            _ => None,
        }
    };
    Some(match t {
        dl::Term::Var(v) => WireTerm::Var(fid(v.sym())?),
        dl::Term::Const(c) => WireTerm::Const(fid(c.sym())?),
    })
}

fn atom_to_wire(a: &dl::Atom, to_file: &[u32]) -> Option<WireAtom> {
    let pred = match to_file.get(a.pred.index()) {
        Some(&f) if f != UNMAPPED => f,
        _ => return None,
    };
    let args = a
        .args
        .iter()
        .map(|t| term_to_wire(t, to_file))
        .collect::<Option<Vec<_>>>()?;
    Some(WireAtom { pred, args })
}

fn rule_to_wire(r: &dl::Rule, to_file: &[u32]) -> Option<WireRule> {
    Some(WireRule {
        head: atom_to_wire(&r.head, to_file)?,
        body: r
            .body
            .iter()
            .map(|a| atom_to_wire(a, to_file))
            .collect::<Option<Vec<_>>>()?,
    })
}

/// Replays one decoded row-group batch (a `Rows` spill or a marker's
/// fused rows) into the database, widening file-local ids back to
/// interner symbols. Returns the number of rows inserted. Rows in these
/// records came from the engine's merge, so they replay as *derived*
/// (always appended, never reclaiming a tombstoned slot) — the same
/// placement the live run used, keeping replayed RowIds byte-identical
/// even when retractions left free-list slots behind.
fn replay_rows(
    db: &mut dl::Database,
    from_file: &[Sym],
    rows: &[(u32, Vec<u32>)],
    row_buf: &mut Vec<Cst>,
) -> io::Result<usize> {
    for (pred, row) in rows {
        let pred = Pred(sym_from_file(from_file, *pred)?);
        row_buf.clear();
        for &c in row {
            row_buf.push(Cst(sym_from_file(from_file, c)?));
        }
        db.insert_derived(pred, row_buf);
    }
    Ok(rows.len())
}

fn sym_from_file(from_file: &[Sym], id: u32) -> io::Result<Sym> {
    from_file
        .get(id as usize)
        .copied()
        .ok_or_else(|| invalid(format!("file symbol id {id} is undefined")))
}

fn atom_from_wire(a: &WireAtom, from_file: &[Sym]) -> io::Result<dl::Atom> {
    let pred = Pred(sym_from_file(from_file, a.pred)?);
    let mut args = Vec::with_capacity(a.args.len());
    for t in &a.args {
        args.push(match t {
            WireTerm::Var(v) => dl::Term::Var(Var(sym_from_file(from_file, *v)?)),
            WireTerm::Const(c) => dl::Term::Const(Cst(sym_from_file(from_file, *c)?)),
        });
    }
    Ok(dl::Atom { pred, args })
}

/// A durably stored [`dl::Database`] plus its rule log.
///
/// Every mutation goes through the WAL *before* it is applied in memory
/// (`insert`, `log_rule`), or is teed from the engine's deterministic
/// merge (`run`). Durability points are explicit: [`commit`](Self::commit)
/// writes a round marker and flushes, [`sync`](Self::sync) adds an fsync,
/// [`snapshot`](Self::snapshot) rewrites the whole state as a fresh
/// snapshot and compacts the log. Appends between those points buffer in
/// memory, so the crash-durability window is "everything up to the last
/// flush" — and recovery further rolls back to the last round marker.
#[derive(Debug)]
pub struct DurableDb {
    dir: PathBuf,
    fault: dl::FaultPlan,
    seq: u64,
    wal: Wal,
    db: dl::Database,
    rules: Vec<dl::Rule>,
    /// Cumulative stats as of the last round marker written or recovered.
    stats: dl::EvalStats,
    /// Interner sym index → file-local id ([`UNMAPPED`] = not yet logged).
    to_file: Vec<u32>,
    /// File-local id → interner sym.
    from_file: Vec<Sym>,
    /// Interner ids below this have been scanned into `to_file`.
    scanned: usize,
    notes: Vec<String>,
    report: RecoveryReport,
}

impl DurableDb {
    /// Opens a durable database directory with the process-wide
    /// (`FUNDB_FAULT`) fault plan. See [`OpenDurable::open_durable`].
    pub fn open(dir: &Path, interner: &mut Interner) -> io::Result<DurableDb> {
        Self::open_with_faults(dir, interner, *dl::FaultPlan::from_env())
    }

    /// [`DurableDb::open`] with an explicit fault plan (the crash harness
    /// arms IO faults programmatically).
    pub fn open_with_faults(
        dir: &Path,
        interner: &mut Interner,
        fault: dl::FaultPlan,
    ) -> io::Result<DurableDb> {
        fs::create_dir_all(dir)?;

        // Enumerate snapshots; clear incomplete temporaries.
        let mut snaps: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(seq) = name
                .strip_prefix("snapshot.")
                .and_then(|s| s.parse::<u64>().ok())
            {
                snaps.push(seq);
            }
        }
        snaps.sort_unstable();

        // Latest valid snapshot wins; a corrupt one falls back to its
        // predecessor, but a snapshot from a *newer build* is a hard
        // error — silently recovering an older state would be data loss.
        let mut loaded: Option<SnapshotData> = None;
        for &seq in snaps.iter().rev() {
            match snapshot::read_snapshot(&snapshot_path(dir, seq)) {
                Ok(d) => {
                    loaded = Some(d);
                    break;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::InvalidData
                        && !e.to_string().contains("newer build") =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }

        let seq = loaded.as_ref().map_or(0, |d| d.seq);
        let mut db = dl::Database::new();
        let mut rules: Vec<dl::Rule> = Vec::new();
        let mut stats = dl::EvalStats::default();
        let mut from_file: Vec<Sym> = Vec::new();
        let mut notes: Vec<String> = Vec::new();
        let mut report = RecoveryReport {
            snapshot_seq: seq,
            ..RecoveryReport::default()
        };

        if let Some(data) = &loaded {
            for name in &data.symbols {
                from_file.push(interner.intern(name));
            }
            for rule in &data.rules {
                rules.push(dl::Rule {
                    head: atom_from_wire(&rule.head, &from_file)?,
                    body: rule
                        .body
                        .iter()
                        .map(|a| atom_from_wire(a, &from_file))
                        .collect::<io::Result<Vec<_>>>()?,
                });
            }
            let mut row_buf: Vec<Cst> = Vec::new();
            for rel in &data.relations {
                let pred = Pred(sym_from_file(&from_file, rel.pred)?);
                let arity = rel.arity as usize;
                for i in 0..rel.nrows as usize {
                    row_buf.clear();
                    for &c in &rel.rows[i * arity..(i + 1) * arity] {
                        row_buf.push(Cst(sym_from_file(&from_file, c)?));
                    }
                    // The asserted bitmap decides base fact vs derived
                    // row — a retraction after recovery must see the
                    // same self-support set as one before it.
                    let base = rel
                        .asserted
                        .get(i / 64)
                        .is_some_and(|w| w >> (i % 64) & 1 == 1);
                    if base {
                        db.insert(pred, &row_buf);
                    } else {
                        db.insert_derived(pred, &row_buf);
                    }
                }
            }
            stats = stats_from_wire(&data.stats);
            report.snapshot_rows = db.fact_count();
        }

        // Recover the WAL tail extending this snapshot.
        let wpath = wal_path(dir, seq);
        if wpath.exists() {
            match wal::recover(&wpath, fault) {
                Ok(scan) => {
                    if scan.base_seq != seq {
                        return Err(invalid(format!(
                            "WAL {} extends snapshot {} but snapshot {seq} was loaded",
                            wpath.display(),
                            scan.base_seq
                        )));
                    }
                    report.dropped_records = scan.dropped_records;
                    report.truncated_bytes = scan.truncated_bytes;
                    report.replayed_records = scan.records.len();
                    let mut row_buf: Vec<Cst> = Vec::new();
                    for rec in &scan.records {
                        match rec {
                            WalRecord::DefSym { id, name } => {
                                if *id as usize != from_file.len() {
                                    return Err(invalid(format!(
                                        "DefSym id {id} out of order (expected {})",
                                        from_file.len()
                                    )));
                                }
                                from_file.push(interner.intern(name));
                            }
                            WalRecord::Fact { pred, row } => {
                                let pred = Pred(sym_from_file(&from_file, *pred)?);
                                row_buf.clear();
                                for &c in row {
                                    row_buf.push(Cst(sym_from_file(&from_file, c)?));
                                }
                                db.insert(pred, &row_buf);
                                report.replayed_facts += 1;
                            }
                            WalRecord::RoundCommit { stats: w, rows } => {
                                // Fused rows precede their marker's effect:
                                // they belong to the round being committed.
                                report.replayed_facts +=
                                    replay_rows(&mut db, &from_file, rows, &mut row_buf)?;
                                stats = stats_from_wire(w);
                                report.replayed_rounds += 1;
                            }
                            WalRecord::Rule { head, body } => {
                                rules.push(dl::Rule {
                                    head: atom_from_wire(head, &from_file)?,
                                    body: body
                                        .iter()
                                        .map(|a| atom_from_wire(a, &from_file))
                                        .collect::<io::Result<Vec<_>>>()?,
                                });
                            }
                            WalRecord::Note { text } => notes.push(text.clone()),
                            WalRecord::Rows { rows } => {
                                report.replayed_facts +=
                                    replay_rows(&mut db, &from_file, rows, &mut row_buf)?;
                            }
                            WalRecord::Retract {
                                pred,
                                row,
                                stats: w,
                                deleted,
                                restored,
                            } => {
                                // Reproduce the retraction round exactly as
                                // the live pass ran it: clear the target's
                                // asserted bit, tombstone the over-delete
                                // set in discovery order, then revive the
                                // re-derived survivors in restoration
                                // order — same free list, same RowIds.
                                let p = Pred(sym_from_file(&from_file, *pred)?);
                                row_buf.clear();
                                for &c in row {
                                    row_buf.push(Cst(sym_from_file(&from_file, c)?));
                                }
                                let rel = db.relation_mut(p, row_buf.len());
                                let id = rel.find(&row_buf).ok_or_else(|| {
                                    invalid("Retract record names a row the log never inserted")
                                })?;
                                rel.set_asserted(id, false);
                                for (dp, drow) in deleted {
                                    let dp = Pred(sym_from_file(&from_file, *dp)?);
                                    row_buf.clear();
                                    for &c in drow {
                                        row_buf.push(Cst(sym_from_file(&from_file, c)?));
                                    }
                                    db.relation_mut(dp, row_buf.len())
                                        .retract_tuple(&row_buf)
                                        .ok_or_else(|| {
                                            invalid(
                                                "Retract record deletes a row the log never \
                                                 inserted",
                                            )
                                        })?;
                                }
                                for (rp, rrow) in restored {
                                    let rp = Pred(sym_from_file(&from_file, *rp)?);
                                    row_buf.clear();
                                    for &c in rrow {
                                        row_buf.push(Cst(sym_from_file(&from_file, c)?));
                                    }
                                    db.relation_mut(rp, row_buf.len())
                                        .restore_tuple(&row_buf)
                                        .ok_or_else(|| {
                                            invalid(
                                                "Retract record restores a row it did not \
                                                 delete",
                                            )
                                        })?;
                                }
                                for (dp, _) in deleted {
                                    let dp = Pred(sym_from_file(&from_file, *dp)?);
                                    if let Some(rel) = db.relation(dp) {
                                        let arity = rel.arity();
                                        db.relation_mut(dp, arity).maybe_resketch();
                                    }
                                }
                                stats = stats_from_wire(w);
                                report.replayed_retractions += 1;
                            }
                        }
                    }
                }
                // A log whose *header* never made it to disk intact (a
                // crash inside create) carries no committed rounds; start
                // it over. Version mismatches propagate above via the
                // explicit "not supported" error.
                Err(e)
                    if e.kind() == io::ErrorKind::InvalidData
                        && !e.to_string().contains("not supported") =>
                {
                    Wal::create(&wpath, seq, fault)?;
                }
                Err(e) => return Err(e),
            }
        } else {
            Wal::create(&wpath, seq, fault)?;
        }
        let (wal, _base) = Wal::open_append(&wpath, fault)?;

        let mut to_file = vec![UNMAPPED; interner.len()];
        for (fid, sym) in from_file.iter().enumerate() {
            to_file[sym.index()] = fid as u32;
        }

        Ok(DurableDb {
            dir: dir.to_path_buf(),
            fault,
            seq,
            wal,
            db,
            rules,
            stats,
            to_file,
            from_file,
            scanned: 0,
            notes,
            report,
        })
    }

    /// The recovered (and since mutated) in-memory database.
    pub fn database(&self) -> &dl::Database {
        &self.db
    }

    /// The logged rules, in log order.
    pub fn rules(&self) -> &[dl::Rule] {
        &self.rules
    }

    /// Cumulative [`dl::EvalStats`] as of the last committed round.
    pub fn stats(&self) -> dl::EvalStats {
        self.stats
    }

    /// What recovery reconstructed when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// `Note` records recovered from the log, in order.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// The WAL handle's lifetime counters (since open).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The current snapshot sequence number (0 before any snapshot).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_id(&self, s: Sym) -> io::Result<u32> {
        match self.to_file.get(s.index()) {
            Some(&f) if f != UNMAPPED => Ok(f),
            _ => Err(invalid(
                "symbol has no logged definition (synthetic, or sync_symbols was skipped)",
            )),
        }
    }

    /// Logs `DefSym` records for every interner symbol not yet in the
    /// file's symbol table. Called automatically by every mutating entry
    /// point; idempotent and cheap once caught up.
    pub fn sync_symbols(&mut self, interner: &Interner) -> io::Result<()> {
        if self.to_file.len() < interner.len() {
            self.to_file.resize(interner.len(), UNMAPPED);
        }
        for id in self.scanned..interner.len() {
            if self.to_file[id] != UNMAPPED {
                continue;
            }
            let fid = self.from_file.len() as u32;
            let sym = Sym::synthetic(id as u32);
            self.wal.append(&WalRecord::DefSym {
                id: fid,
                name: interner.resolve(sym).to_string(),
            })?;
            self.to_file[id] = fid;
            self.from_file.push(sym);
        }
        self.scanned = interner.len();
        Ok(())
    }

    /// Inserts a base fact, logging it first (WAL rule: nothing reaches
    /// the in-memory store that is not in the log). Returns whether the
    /// row was new. Not durable until the next [`commit`](Self::commit) /
    /// [`sync`](Self::sync) writes a marker.
    pub fn insert(&mut self, interner: &Interner, pred: Pred, row: &[Cst]) -> io::Result<bool> {
        if self.db.contains(pred, row) {
            return Ok(false);
        }
        self.sync_symbols(interner)?;
        let p = self.file_id(pred.sym())?;
        let mapped: Vec<u32> = row
            .iter()
            .map(|c| self.file_id(c.sym()))
            .collect::<io::Result<_>>()?;
        self.wal.append_fact(p, &mapped)?;
        Ok(self.db.insert(pred, row))
    }

    /// Retracts an asserted base fact with full incremental maintenance
    /// (over-delete + re-derive; see `fundb_datalog::retract`), then logs
    /// the completed round as a `Retract` commit marker and flushes.
    ///
    /// The marker is written *after* the in-memory maintenance because
    /// the over-delete set is only known once the pass has run; since
    /// `Retract` is itself the commit point this preserves the recovery
    /// invariant — a crash before the marker lands truncates to the
    /// previous marker and the retraction simply never happened. If the
    /// append itself fails the in-memory state is ahead of the log;
    /// the caller should treat the handle as poisoned and reopen.
    pub fn retract_fact(
        &mut self,
        interner: &Interner,
        pred: Pred,
        row: &[Cst],
        plan: &dl::DeltaPlan,
    ) -> io::Result<dl::RetractOutcome> {
        self.sync_symbols(interner)?;
        let outcome = self.db.retract_fact(pred, row, &self.rules, plan);
        if !outcome.found {
            return Ok(outcome);
        }
        self.stats.absorb(outcome.stats);
        let p = self.file_id(pred.sym())?;
        let wire_row = |r: &[Cst]| -> io::Result<Vec<u32>> {
            r.iter().map(|c| self.file_id(c.sym())).collect()
        };
        let wire_list = |list: &[(Pred, Box<[Cst]>)]| -> io::Result<Vec<(u32, Vec<u32>)>> {
            list.iter()
                .map(|(lp, lr)| Ok((self.file_id(lp.sym())?, wire_row(lr)?)))
                .collect()
        };
        let rec = WalRecord::Retract {
            pred: p,
            row: wire_row(row)?,
            stats: stats_to_wire(&self.stats),
            deleted: wire_list(&outcome.deleted)?,
            restored: wire_list(&outcome.restored)?,
        };
        self.wal.append(&rec)?;
        self.wal.flush()?;
        Ok(outcome)
    }

    /// Logs a rule definition and adds it to [`rules`](Self::rules).
    pub fn log_rule(&mut self, interner: &Interner, rule: &dl::Rule) -> io::Result<()> {
        self.sync_symbols(interner)?;
        let wire = rule_to_wire(rule, &self.to_file)
            .ok_or_else(|| invalid("rule contains symbols unknown to the interner"))?;
        self.wal.append(&WalRecord::Rule {
            head: wire.head,
            body: wire.body,
        })?;
        self.rules.push(rule.clone());
        Ok(())
    }

    /// Logs an opaque note for upper layers (the REPL's session journal).
    pub fn append_note(&mut self, text: &str) -> io::Result<()> {
        self.wal.append(&WalRecord::Note {
            text: text.to_string(),
        })
    }

    /// Writes a round marker for the current committed state and flushes.
    /// This is the commit point recovery rolls forward to: everything
    /// logged before it (facts, rules, notes) becomes recoverable.
    pub fn commit(&mut self) -> io::Result<()> {
        self.wal.append_round_commit(&self.stats)?;
        self.wal.flush()
    }

    /// [`commit`](Self::commit) plus an fsync durability barrier.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.append_round_commit(&self.stats)?;
        self.wal.sync()
    }

    /// Runs the fixpoint with the WAL attached as the engine's
    /// [`dl::RoundSink`]: every merged row and every completed-round
    /// marker is teed into the log at governor checkpoint boundaries, in
    /// the engine's deterministic merge order — the log bytes are
    /// byte-identical at any thread count. The WAL is flushed when the
    /// run ends; a log failure surfaces as [`dl::EvalError::WalFailed`]
    /// while the in-memory database keeps every completed round.
    pub fn run(
        &mut self,
        interner: &Interner,
        eval: &mut dl::IncrementalEval,
        plan: &dl::DeltaPlan,
    ) -> Result<dl::EvalStats, dl::EvalError> {
        let wal_failed = |e: io::Error| dl::EvalError::WalFailed {
            detail: e.to_string(),
        };
        self.sync_symbols(interner).map_err(wal_failed)?;
        // Fresh sessions and fresh-interner opens log symbols in interner
        // order, making the file id map an identity — which lets the sink
        // skip per-cell translation. O(symbols), once per run.
        let identity = self.to_file.iter().enumerate().all(|(i, &f)| f == i as u32);
        // File-local ids are dense, so when the whole symbol table fits a
        // u16 the sink halves the log's row payload with 2-byte cells. No
        // symbol can appear mid-run: sync_symbols above fixed the table.
        let narrow = self.from_file.len() <= usize::from(u16::MAX) + 1;
        let mut sink = WalSink {
            wal: &mut self.wal,
            to_file: &self.to_file,
            ident_len: if identity { self.to_file.len() } else { 0 },
            narrow,
            base: self.stats,
            batch: Vec::new(),
            batched: 0,
            committed: None,
            failed: None,
        };
        let res = eval.run_with_sink(&mut self.db, &self.rules, plan, &mut sink);
        if let Some(total) = sink.committed {
            self.stats = total;
        }
        let flushed = self.wal.flush();
        match res {
            Ok(st) => {
                flushed.map_err(wal_failed)?;
                Ok(st)
            }
            Err(e) => Err(e),
        }
    }

    /// Writes snapshot `seq + 1` of the current state (atomically:
    /// tmp-file, fsync, rename), starts a fresh WAL extending it, and
    /// compacts — the superseded WAL and snapshot are deleted. Acts as a
    /// durability barrier for everything in memory.
    pub fn snapshot(&mut self, interner: &Interner) -> io::Result<u64> {
        self.sync_symbols(interner)?;
        let next = self.seq + 1;

        // Compact away retraction tombstones first: the snapshot writes
        // `len()` rows from `rows()` (which skips tombstones), so the two
        // must agree — and compaction is also where stale bloom filters
        // are rebuilt over live keys only. A snapshot starts a fresh
        // history, so the RowId renumbering is invisible to recovery.
        self.db.compact();

        let mut preds: Vec<Pred> = self.db.iter().map(|(p, _)| p).collect();
        preds.sort_unstable_by_key(|p| p.index());
        let mut relations = Vec::with_capacity(preds.len());
        for p in preds {
            let rel = self.db.relation(p).expect("pred came from iter");
            let mut rows = Vec::with_capacity(rel.len() * rel.arity());
            for row in rel.rows() {
                for c in row {
                    rows.push(self.file_id(c.sym())?);
                }
            }
            let mut asserted = vec![0u64; rel.len().div_ceil(64)];
            for i in 0..rel.len() {
                if rel.is_asserted(dl::RowId(i as u32)) {
                    asserted[i / 64] |= 1 << (i % 64);
                }
            }
            relations.push(WireRelation {
                pred: self.file_id(p.sym())?,
                arity: rel.arity() as u32,
                nrows: rel.len() as u64,
                rows,
                asserted,
            });
        }
        let rules = self
            .rules
            .iter()
            .map(|r| {
                rule_to_wire(r, &self.to_file)
                    .ok_or_else(|| invalid("rule contains symbols unknown to the interner"))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let symbols = self
            .from_file
            .iter()
            .map(|s| interner.resolve(*s).to_string())
            .collect();
        let data = SnapshotData {
            seq: next,
            symbols,
            rules,
            relations,
            stats: stats_to_wire(&self.stats),
        };
        snapshot::write_snapshot(&snapshot_path(&self.dir, next), &data)?;

        // The snapshot is durable: switch logs, then compact.
        self.wal = Wal::create(&wal_path(&self.dir, next), next, self.fault)?;
        let old = self.seq;
        self.seq = next;
        let _ = fs::remove_file(wal_path(&self.dir, old));
        let _ = fs::remove_file(snapshot_path(&self.dir, old));
        Ok(next)
    }
}

/// A wide round's row batch is cut into `Rows` records of roughly this
/// many payload bytes, bounding sink memory and keeping the WAL's
/// auto-flush cadence (recovery only commits at markers, so mid-round
/// record boundaries are semantically invisible).
const ROWS_CHUNK: usize = 256 * 1024;

/// The engine-facing WAL adapter: buffers row-append failures (the
/// [`dl::RoundSink`] row callbacks are infallible by design) and surfaces
/// them at the next round boundary, where the engine can abort cleanly.
///
/// Rows arrive per relation as contiguous arena slices
/// ([`dl::RoundSink::rows_committed`]) and are copied into a per-round
/// batch of fixed-width cell groups (`u16` cells when the symbol table
/// fits, else `u32`), fused into the round's `RoundCommit` record at the
/// boundary — one frame, one checksum, and (in the common
/// identity-mapped case) one bounds check per cell is all the steady
/// state costs (the E17 overhead budget).
struct WalSink<'a> {
    wal: &'a mut Wal,
    to_file: &'a [u32],
    /// When the file-local symbol table is an identity prefix of the
    /// interner (every fresh session, and every fresh-interner open),
    /// symbols below this index need no translation and rows can be
    /// copied cell by cell. 0 disables the fast path.
    ident_len: usize,
    /// Emit 2-byte cells (every file-local id fits a `u16`).
    narrow: bool,
    /// Committed totals at run start; markers carry `base + run` so the
    /// log always holds absolute counters.
    base: dl::EvalStats,
    /// Encoded row groups of the current round.
    batch: Vec<u8>,
    /// Rows in `batch`.
    batched: u64,
    /// Totals at the last marker that reached the log.
    committed: Option<dl::EvalStats>,
    failed: Option<String>,
}

impl WalSink<'_> {
    /// Spills the buffered row batch (if any) as one `Rows` record —
    /// only wide rounds that outgrow [`ROWS_CHUNK`] take this path; a
    /// round that fits fuses its batch into the marker instead.
    fn flush_batch(&mut self) -> Result<(), String> {
        if self.batched == 0 {
            return Ok(());
        }
        let res = self.wal.append_rows_raw(&self.batch, self.narrow);
        self.batch.clear();
        self.batched = 0;
        res.map_err(|e| e.to_string())
    }

    fn fail_unmapped(&mut self) {
        self.failed = Some("derived row uses a symbol with no logged definition".into());
    }
}

impl dl::RoundSink for WalSink<'_> {
    fn row_committed(&mut self, pred: Pred, row: &[Cst]) {
        self.rows_committed(pred, row.len(), 1, row);
    }

    fn rows_committed(&mut self, pred: Pred, arity: usize, count: usize, cells: &[Cst]) {
        if self.failed.is_some() || count == 0 {
            return;
        }
        let to_file = self.to_file;
        let fid = |s: Sym| -> Option<u32> {
            match to_file.get(s.index()) {
                Some(&f) if f != UNMAPPED => Some(f),
                _ => None,
            }
        };
        let Some(p) = fid(pred.sym()) else {
            self.fail_unmapped();
            return;
        };
        if arity == 0 {
            // Cell-less rows: one group per row (the decoder's contract).
            for _ in 0..count {
                put_uv(&mut self.batch, u64::from(p));
                put_uv(&mut self.batch, 0);
                put_uv(&mut self.batch, 1);
            }
            self.batched += count as u64;
            return;
        }
        // Cut wide deltas into whole-row groups of at most ~ROWS_CHUNK
        // bytes so a chunk flush never splits a group.
        let cell_bytes = if self.narrow { 2 } else { 4 };
        let per_group = (ROWS_CHUNK / (arity * cell_bytes)).max(1);
        let mut done = 0;
        while done < count {
            let n = per_group.min(count - done);
            put_uv(&mut self.batch, u64::from(p));
            put_uv(&mut self.batch, arity as u64);
            put_uv(&mut self.batch, n as u64);
            let slice = &cells[done * arity..(done + n) * arity];
            self.batch.reserve(slice.len() * cell_bytes);
            if self.ident_len > 0 {
                // Identity-mapped symbols: file id == interner id, so the
                // group body is a straight cell copy.
                for &c in slice {
                    let id = c.index();
                    if id >= self.ident_len {
                        self.fail_unmapped();
                        return;
                    }
                    if self.narrow {
                        self.batch.extend_from_slice(&(id as u16).to_le_bytes());
                    } else {
                        self.batch.extend_from_slice(&(id as u32).to_le_bytes());
                    }
                }
            } else {
                for &c in slice {
                    match fid(c.sym()) {
                        Some(f) if self.narrow => {
                            self.batch.extend_from_slice(&(f as u16).to_le_bytes());
                        }
                        Some(f) => self.batch.extend_from_slice(&f.to_le_bytes()),
                        None => {
                            // A partial group may land in `batch` here;
                            // `round_committed` discards the whole batch
                            // on failure, so it never reaches the log.
                            self.fail_unmapped();
                            return;
                        }
                    }
                }
            }
            self.batched += n as u64;
            done += n;
            if self.batch.len() >= ROWS_CHUNK {
                if let Err(e) = self.flush_batch() {
                    self.failed = Some(e);
                    return;
                }
            }
        }
    }

    fn round_committed(&mut self, stats: &dl::EvalStats) -> Result<(), String> {
        if let Some(e) = self.failed.take() {
            self.batch.clear();
            self.batched = 0;
            return Err(e);
        }
        let mut total = self.base;
        total.absorb(*stats);
        // The round's batch rides inside the marker record: one frame,
        // one checksum, one fault point per round.
        let res = self
            .wal
            .append_round_commit_rows(&total, &self.batch, self.narrow);
        self.batch.clear();
        self.batched = 0;
        res.map_err(|e| e.to_string())?;
        self.committed = Some(total);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::Term;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fundb-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Collects (pred name, row-of-names) pairs sorted by pred name, with
    /// row order preserved (row order == RowId order per relation).
    fn dump(db: &dl::Database, interner: &Interner) -> Vec<(String, Vec<Vec<String>>)> {
        let mut out: Vec<(String, Vec<Vec<String>>)> = db
            .iter()
            .map(|(p, rel)| {
                (
                    interner.resolve(p.sym()).to_string(),
                    rel.rows()
                        .map(|row| {
                            row.iter()
                                .map(|c| interner.resolve(c.sym()).to_string())
                                .collect()
                        })
                        .collect(),
                )
            })
            .collect();
        out.sort();
        out
    }

    fn cst(interner: &mut Interner, s: &str) -> Cst {
        Cst(interner.intern(s))
    }

    fn tc_rules(interner: &mut Interner) -> Vec<dl::Rule> {
        let edge = Pred(interner.intern("edge"));
        let path = Pred(interner.intern("path"));
        let x = Var(interner.intern("X"));
        let y = Var(interner.intern("Y"));
        let z = Var(interner.intern("Z"));
        vec![
            dl::Rule {
                head: dl::Atom {
                    pred: path,
                    args: vec![Term::Var(x), Term::Var(y)],
                },
                body: vec![dl::Atom {
                    pred: edge,
                    args: vec![Term::Var(x), Term::Var(y)],
                }],
            },
            dl::Rule {
                head: dl::Atom {
                    pred: path,
                    args: vec![Term::Var(x), Term::Var(z)],
                },
                body: vec![
                    dl::Atom {
                        pred: edge,
                        args: vec![Term::Var(x), Term::Var(y)],
                    },
                    dl::Atom {
                        pred: path,
                        args: vec![Term::Var(y), Term::Var(z)],
                    },
                ],
            },
        ]
    }

    #[test]
    fn inserts_rules_and_notes_survive_reopen() {
        let dir = tmpdir("reopen");
        let mut interner = Interner::new();
        let edge = Pred(interner.intern("edge"));
        {
            let mut ddb = dl::Database::open_durable(&dir, &mut interner).unwrap();
            let (a, b, c) = (
                cst(&mut interner, "a"),
                cst(&mut interner, "b"),
                cst(&mut interner, "c"),
            );
            assert!(ddb.insert(&interner, edge, &[a, b]).unwrap());
            assert!(!ddb.insert(&interner, edge, &[a, b]).unwrap());
            assert!(ddb.insert(&interner, edge, &[b, c]).unwrap());
            for rule in tc_rules(&mut interner) {
                ddb.log_rule(&interner, &rule).unwrap();
            }
            ddb.append_note("session line one").unwrap();
            ddb.commit().unwrap();
        }
        let expect = {
            let mut fresh = Interner::new();
            let mut ddb = dl::Database::open_durable(&dir, &mut fresh).unwrap();
            assert_eq!(ddb.database().fact_count(), 2);
            assert_eq!(ddb.rules().len(), 2);
            assert_eq!(ddb.notes(), ["session line one"]);
            assert_eq!(ddb.recovery().replayed_rounds, 1);
            assert_eq!(ddb.recovery().dropped_records, 0);
            // Idempotent: reopening again after a clean recovery is a no-op
            // mutation-wise, and further inserts keep working.
            let d = cst(&mut fresh, "d");
            let c = cst(&mut fresh, "c");
            let edge = Pred(fresh.intern("edge"));
            ddb.insert(&fresh, edge, &[c, d]).unwrap();
            ddb.commit().unwrap();
            dump(ddb.database(), &fresh)
        };
        let mut again = Interner::new();
        let ddb = dl::Database::open_durable(&dir, &mut again).unwrap();
        assert_eq!(dump(ddb.database(), &again), expect);
    }

    #[test]
    fn engine_run_recovers_byte_identical_rows_and_stats() {
        let dir = tmpdir("engine");
        let mut interner = Interner::new();
        let (reference, ref_stats) = {
            let mut ddb = dl::Database::open_durable(&dir, &mut interner).unwrap();
            let edge = Pred(interner.intern("edge"));
            let names: Vec<Cst> = (0..24)
                .map(|i| cst(&mut interner, &format!("n{i}")))
                .collect();
            for w in names.windows(2) {
                ddb.insert(&interner, edge, &[w[0], w[1]]).unwrap();
            }
            let rules = tc_rules(&mut interner);
            for rule in &rules {
                ddb.log_rule(&interner, rule).unwrap();
            }
            let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
            let mut eval = dl::IncrementalEval::new().with_threads(2);
            let stats = ddb.run(&interner, &mut eval, &plan).unwrap();
            assert!(stats.derived > 0);
            (dump(ddb.database(), &interner), ddb.stats())
        };
        // Fresh process, fresh interner: recovery must reproduce the same
        // rows in the same per-relation order (RowIds) and the same stats.
        let mut fresh = Interner::new();
        let ddb = dl::Database::open_durable(&dir, &mut fresh).unwrap();
        assert_eq!(dump(ddb.database(), &fresh), reference);
        assert_eq!(ddb.stats(), ref_stats);
        assert!(ddb.recovery().replayed_rounds > 0);
    }

    #[test]
    fn snapshot_compacts_and_later_wal_extends_it() {
        let dir = tmpdir("snapshot");
        let mut interner = Interner::new();
        let edge = Pred(interner.intern("edge"));
        {
            let mut ddb = dl::Database::open_durable(&dir, &mut interner).unwrap();
            let (a, b, c) = (
                cst(&mut interner, "a"),
                cst(&mut interner, "b"),
                cst(&mut interner, "c"),
            );
            ddb.insert(&interner, edge, &[a, b]).unwrap();
            for rule in tc_rules(&mut interner) {
                ddb.log_rule(&interner, &rule).unwrap();
            }
            ddb.commit().unwrap();
            assert_eq!(ddb.snapshot(&interner).unwrap(), 1);
            // Compaction removed the seq-0 generation.
            assert!(!wal_path(&dir, 0).exists());
            // Post-snapshot mutations land in the new WAL.
            ddb.insert(&interner, edge, &[b, c]).unwrap();
            ddb.sync().unwrap();
        }
        let mut fresh = Interner::new();
        let ddb = dl::Database::open_durable(&dir, &mut fresh).unwrap();
        assert_eq!(ddb.recovery().snapshot_seq, 1);
        assert_eq!(ddb.recovery().snapshot_rows, 1);
        assert_eq!(ddb.recovery().replayed_facts, 1);
        assert_eq!(ddb.database().fact_count(), 2);
        assert_eq!(ddb.rules().len(), 2);
    }

    #[test]
    fn retract_fact_survives_reopen_and_snapshot() {
        let dir = tmpdir("retract");
        let mut interner = Interner::new();
        let reference = {
            let mut ddb = dl::Database::open_durable(&dir, &mut interner).unwrap();
            let edge = Pred(interner.intern("edge"));
            let names: Vec<Cst> = (0..8)
                .map(|i| cst(&mut interner, &format!("n{i}")))
                .collect();
            for w in names.windows(2) {
                ddb.insert(&interner, edge, &[w[0], w[1]]).unwrap();
            }
            let rules = tc_rules(&mut interner);
            for rule in &rules {
                ddb.log_rule(&interner, rule).unwrap();
            }
            let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
            let mut eval = dl::IncrementalEval::new();
            ddb.run(&interner, &mut eval, &plan).unwrap();
            let out = ddb
                .retract_fact(&interner, edge, &[names[3], names[4]], &plan)
                .unwrap();
            assert!(out.found);
            assert!(out.stats.retractions > 0);
            // Retracting an absent fact logs nothing.
            let miss = ddb
                .retract_fact(&interner, edge, &[names[0], names[7]], &plan)
                .unwrap();
            assert!(!miss.found);
            dump(ddb.database(), &interner)
        };
        // WAL replay: the Retract marker re-runs the tombstone/restore
        // sequence, landing on the same live rows in the same order.
        let mut fresh = Interner::new();
        let mut ddb = dl::Database::open_durable(&dir, &mut fresh).unwrap();
        assert_eq!(dump(ddb.database(), &fresh), reference);
        assert_eq!(ddb.recovery().replayed_retractions, 1);
        assert!(ddb.stats().retractions > 0);
        // Snapshot compacts the tombstones away and records the asserted
        // bitmap; a second recovery goes through the snapshot path.
        ddb.snapshot(&fresh).unwrap();
        drop(ddb);
        let mut again = Interner::new();
        let ddb = dl::Database::open_durable(&dir, &mut again).unwrap();
        assert_eq!(dump(ddb.database(), &again), reference);
        // Asserted bits survived the snapshot: derived path rows must not
        // have become base facts, or later retractions would see a wrong
        // self-support set.
        let path = Pred(again.intern("path"));
        let rel = ddb.database().relation(path).expect("path survives");
        assert!((0..rel.len()).all(|i| !rel.is_asserted(dl::RowId(i as u32))));
        let edge = Pred(again.intern("edge"));
        let rel = ddb.database().relation(edge).expect("edge survives");
        assert!((0..rel.len()).all(|i| rel.is_asserted(dl::RowId(i as u32))));
    }

    #[test]
    fn crash_after_flushed_record_rolls_back_to_last_marker() {
        let dir = tmpdir("crash");
        let mut interner = Interner::new();
        let edge = Pred(interner.intern("edge"));
        let (a, b, c, d) = (
            cst(&mut interner, "a"),
            cst(&mut interner, "b"),
            cst(&mut interner, "c"),
            cst(&mut interner, "d"),
        );
        // Records: DefSym edge,a,b,c,d (1-5), Fact a,b (6), marker (7),
        // Fact c,d (8) — the crash fires on the *next* append, flushing
        // records 1-8 so the file ends in an uncommitted tail.
        let fault = dl::FaultPlan {
            crash_after_record: Some(8),
            ..dl::FaultPlan::default()
        };
        {
            let mut ddb = DurableDb::open_with_faults(&dir, &mut interner, fault).unwrap();
            ddb.insert(&interner, edge, &[a, b]).unwrap();
            ddb.commit().unwrap();
            ddb.insert(&interner, edge, &[c, d]).unwrap();
            let err = ddb.insert(&interner, edge, &[d, a]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        }
        let mut fresh = Interner::new();
        let ddb = dl::Database::open_durable(&dir, &mut fresh).unwrap();
        assert_eq!(ddb.database().fact_count(), 1);
        assert!(ddb.recovery().dropped_records >= 1);
        assert!(ddb.recovery().truncated_bytes > 0);
        let edge = Pred(fresh.intern("edge"));
        let a = cst(&mut fresh, "a");
        let b = cst(&mut fresh, "b");
        assert!(ddb.database().contains(edge, &[a, b]));
    }

    #[test]
    fn wal_failure_during_run_surfaces_as_wal_failed() {
        let dir = tmpdir("walfail");
        let mut interner = Interner::new();
        let edge = Pred(interner.intern("edge"));
        // Arm a torn write deep enough into the record stream that it
        // fires while the engine's derived rows are being teed in.
        let fault = dl::FaultPlan {
            torn_write: Some(22),
            ..dl::FaultPlan::default()
        };
        let mut ddb = DurableDb::open_with_faults(&dir, &mut interner, fault).unwrap();
        let names: Vec<Cst> = (0..6)
            .map(|i| cst(&mut interner, &format!("n{i}")))
            .collect();
        for w in names.windows(2) {
            ddb.insert(&interner, edge, &[w[0], w[1]]).unwrap();
        }
        let rules = tc_rules(&mut interner);
        for rule in &rules {
            ddb.log_rule(&interner, rule).unwrap();
        }
        ddb.commit().unwrap();
        let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
        let mut eval = dl::IncrementalEval::new();
        let err = ddb.run(&interner, &mut eval, &plan).unwrap_err();
        assert!(
            matches!(err, dl::EvalError::WalFailed { .. }),
            "expected WalFailed, got {err:?}"
        );
        // Recovery still lands on a consistent committed prefix: the base
        // facts plus rounds one and two — the torn record was round
        // three's fused marker, so rounds one and two were already
        // durable and round three is gone entirely.
        let mut fresh = Interner::new();
        let ddb = dl::Database::open_durable(&dir, &mut fresh).unwrap();
        assert_eq!(ddb.database().fact_count(), 14);
        assert_eq!(ddb.recovery().replayed_rounds, 3);
        assert_eq!(ddb.stats().rounds, 2);
    }
}
