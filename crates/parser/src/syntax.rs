//! Recursive-descent parser producing a neutral (sort-free) parse tree.
//!
//! The parser does not yet know which predicates are functional — that is
//! decided by [`crate::elaborate`] — so terms are parsed into the neutral
//! [`PTerm`] form.

use crate::lexer::{Lexer, Token, TokenKind};
use fundb_core::error::{Error, Result};

/// A neutral parsed term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PTerm {
    /// Numeric literal `n` (functional: `+1ⁿ(0)`).
    Num(u64),
    /// A bare identifier: constant (uppercase) or variable (lowercase).
    Ident(String),
    /// A function application `f(t, …)`.
    App(String, Vec<PTerm>),
    /// Temporal sugar `t + n`.
    Plus(Box<PTerm>, u64),
}

/// A parsed atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PAtom {
    /// Predicate name.
    pub pred: String,
    /// Arguments.
    pub args: Vec<PTerm>,
    /// Byte offset (diagnostics).
    pub offset: usize,
}

/// A parsed rule (facts are rules with an empty body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PRule {
    /// Head atom.
    pub head: PAtom,
    /// Body conjunction.
    pub body: Vec<PAtom>,
}

/// One top-level statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PStatement {
    /// A rule or fact, terminated by `.`.
    Rule(PRule),
    /// A query `?- body.`
    Query(Vec<PAtom>),
    /// A declaration `functional Name/arity.`
    FunctionalDecl {
        /// Predicate name.
        name: String,
        /// Total arity (functional position included).
        arity: usize,
    },
}

/// Parses a full source text into statements.
pub fn parse_source(src: &str) -> Result<Vec<PStatement>> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at(TokenKind::Eof) {
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(Error::Parse {
                offset: self.peek().offset,
                detail: format!("expected {what}"),
            })
        }
    }

    fn statement(&mut self) -> Result<PStatement> {
        if self.at(TokenKind::QueryMark) {
            self.bump();
            let body = self.atom_list()?;
            self.expect(TokenKind::Dot, "`.` after query")?;
            return Ok(PStatement::Query(body));
        }
        // `functional Name/arity.` declaration?
        if let TokenKind::Ident(name) = &self.peek().kind {
            if name == "functional" {
                if let Some(Token {
                    kind: TokenKind::Ident(_),
                    ..
                }) = self.tokens.get(self.pos + 1)
                {
                    self.bump();
                    let TokenKind::Ident(pname) = self.bump().kind else {
                        unreachable!()
                    };
                    self.expect(TokenKind::Slash, "`/` in functional declaration")?;
                    let t = self.bump();
                    let TokenKind::Num(ar) = t.kind else {
                        return Err(Error::Parse {
                            offset: t.offset,
                            detail: "expected arity".into(),
                        });
                    };
                    self.expect(TokenKind::Dot, "`.` after declaration")?;
                    return Ok(PStatement::FunctionalDecl {
                        name: pname,
                        arity: ar as usize,
                    });
                }
            }
        }
        let first = self.atom_list()?;
        if self.at(TokenKind::Arrow) {
            self.bump();
            let mut heads = self.atom_list()?;
            if heads.len() != 1 {
                return Err(Error::Parse {
                    offset: self.peek().offset,
                    detail: "a rule must have exactly one head atom".into(),
                });
            }
            self.expect(TokenKind::Dot, "`.` after rule")?;
            Ok(PStatement::Rule(PRule {
                head: heads.pop().expect("checked length"),
                body: first,
            }))
        } else {
            self.expect(TokenKind::Dot, "`.` after fact")?;
            if first.len() != 1 {
                return Err(Error::Parse {
                    offset: self.peek().offset,
                    detail: "a fact must be a single atom".into(),
                });
            }
            Ok(PStatement::Rule(PRule {
                head: first.into_iter().next().expect("checked length"),
                body: vec![],
            }))
        }
    }

    fn atom_list(&mut self) -> Result<Vec<PAtom>> {
        let mut out = vec![self.atom()?];
        while self.at(TokenKind::Comma) {
            self.bump();
            out.push(self.atom()?);
        }
        Ok(out)
    }

    fn atom(&mut self) -> Result<PAtom> {
        let t = self.bump();
        let offset = t.offset;
        let TokenKind::Ident(pred) = t.kind else {
            return Err(Error::Parse {
                offset,
                detail: "expected a predicate name".into(),
            });
        };
        if !pred.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return Err(Error::Parse {
                offset,
                detail: format!("predicate `{pred}` must start with an uppercase letter"),
            });
        }
        let mut args = Vec::new();
        if self.at(TokenKind::LParen) {
            self.bump();
            if !self.at(TokenKind::RParen) {
                args.push(self.term()?);
                while self.at(TokenKind::Comma) {
                    self.bump();
                    args.push(self.term()?);
                }
            }
            self.expect(TokenKind::RParen, "`)` after arguments")?;
        }
        Ok(PAtom { pred, args, offset })
    }

    fn term(&mut self) -> Result<PTerm> {
        let t = self.bump();
        let mut base = match t.kind {
            TokenKind::Num(n) => PTerm::Num(n),
            TokenKind::Ident(name) => {
                if self.at(TokenKind::LParen) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.at(TokenKind::Comma) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(TokenKind::RParen, "`)` after function arguments")?;
                    PTerm::App(name, args)
                } else {
                    PTerm::Ident(name)
                }
            }
            _ => {
                return Err(Error::Parse {
                    offset: t.offset,
                    detail: "expected a term".into(),
                });
            }
        };
        while self.at(TokenKind::Plus) {
            self.bump();
            let t = self.bump();
            let TokenKind::Num(n) = t.kind else {
                return Err(Error::Parse {
                    offset: t.offset,
                    detail: "expected a number after `+`".into(),
                });
            };
            base = PTerm::Plus(Box::new(base), n);
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_meets_example() {
        let src = "Meets(t, x), Next(x, y) -> Meets(t+1, y).\n\
                   Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).";
        let stmts = parse_source(src).unwrap();
        assert_eq!(stmts.len(), 4);
        let PStatement::Rule(rule) = &stmts[0] else {
            panic!("expected a rule");
        };
        assert_eq!(rule.body.len(), 2);
        assert_eq!(rule.head.pred, "Meets");
        assert_eq!(
            rule.head.args[0],
            PTerm::Plus(Box::new(PTerm::Ident("t".into())), 1)
        );
    }

    #[test]
    fn parses_mixed_applications() {
        let src = "At(s, p1), Connected(p1, p2) -> At(move(s, p1, p2), p2).";
        let stmts = parse_source(src).unwrap();
        let PStatement::Rule(rule) = &stmts[0] else {
            panic!()
        };
        assert_eq!(
            rule.head.args[0],
            PTerm::App(
                "move".into(),
                vec![
                    PTerm::Ident("s".into()),
                    PTerm::Ident("p1".into()),
                    PTerm::Ident("p2".into()),
                ]
            )
        );
    }

    #[test]
    fn parses_queries_and_decls() {
        let stmts = parse_source("?- Member(s, A).\nfunctional Member/2.").unwrap();
        assert!(matches!(stmts[0], PStatement::Query(_)));
        assert_eq!(
            stmts[1],
            PStatement::FunctionalDecl {
                name: "Member".into(),
                arity: 2
            }
        );
    }

    #[test]
    fn nullary_atoms_parse() {
        let stmts = parse_source("Halt -> Stop.").unwrap();
        let PStatement::Rule(rule) = &stmts[0] else {
            panic!()
        };
        assert!(rule.head.args.is_empty());
        assert!(rule.body[0].args.is_empty());
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_source("Meets(t x).").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        let err = parse_source("meets(t).").unwrap_err();
        let Error::Parse { detail, .. } = err else {
            panic!()
        };
        assert!(detail.contains("uppercase"));
    }

    #[test]
    fn two_headed_rules_rejected() {
        assert!(parse_source("P(0) -> Q(0), R(0).").is_err());
    }

    #[test]
    fn iterated_plus() {
        let stmts = parse_source("P(t+1+2).").unwrap();
        let PStatement::Rule(rule) = &stmts[0] else {
            panic!()
        };
        assert_eq!(
            rule.head.args[0],
            PTerm::Plus(
                Box::new(PTerm::Plus(Box::new(PTerm::Ident("t".into())), 1)),
                2
            )
        );
    }
}
