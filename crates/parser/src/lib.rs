#![warn(missing_docs)]
//! Concrete syntax for functional deductive databases.
//!
//! The grammar follows the paper's notation (§1–§2):
//!
//! ```text
//! Meets(t, x), Next(x, y) -> Meets(t+1, y).     % a rule
//! Meets(0, Tony).                               % a functional fact
//! Next(Tony, Jan).                              % a relational fact
//! At(s, p1), Connected(p1, p2) -> At(move(s, p1, p2), p2).  % mixed symbol
//! ?- Meets(t, x).                               % a query
//! ```
//!
//! Lexical conventions (the paper's, made machine-checkable):
//!
//! * **Predicates** start with an uppercase letter and head an atom.
//! * **Constants** start with an uppercase letter in argument position
//!   (`Tony`, `Jan`) — they are the paper's non-functional constants.
//! * **Variables** are lowercase identifiers (`t`, `x`, `s`).
//! * **Function symbols** are lowercase identifiers applied to arguments:
//!   `f(t)` (pure), `move(s, p1, p2)` (mixed — first argument functional).
//! * `0` is the unique functional constant; `7` abbreviates `+1` applied
//!   seven times to `0`, and `t+2` abbreviates `+1(+1(t))` — the paper's
//!   temporal sugar with the implicit pure symbol `+1`.
//! * Comments run from `%` or `//` to end of line.
//!
//! Which predicates are functional is inferred: a predicate whose first
//! argument is ever syntactically functional (a number, `…+n`, or a
//! function application) is functional, and variables appearing in that
//! position become functional variables; the inference iterates to a
//! fixpoint. The `functional Name/2.` declaration forces a predicate to be
//! functional with the given total arity when no syntactic evidence exists.
//!
//! [`Workspace`] bundles an interner, a program and a database with the
//! whole pipeline behind one-line methods.

mod elaborate;
mod lexer;
mod syntax;
mod workspace;

pub use elaborate::Elaborator;
pub use lexer::{Lexer, Token, TokenKind};
pub use syntax::{parse_source, PAtom, PRule, PStatement, PTerm};
pub use workspace::Workspace;
