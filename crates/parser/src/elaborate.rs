//! Sort inference and elaboration into the typed core AST.
//!
//! The neutral parse tree does not distinguish functional from relational
//! predicates. Elaboration infers the distinction to a fixpoint:
//!
//! * a predicate whose first argument is ever a number, a `+n` term, or a
//!   function application is **functional**;
//! * a variable occurring as the first argument of a functional predicate
//!   (or inside the functional position of an application) is a
//!   **functional variable**;
//! * a predicate whose first argument is a known functional variable is
//!   functional too.
//!
//! `functional Name/arity.` declarations pre-seed the inference.

use crate::syntax::{PAtom, PRule, PStatement, PTerm};
use fundb_core::error::{Error, Result};
use fundb_core::program::{Atom, Database, FTerm, NTerm, Program, Rule};
use fundb_core::query::Query;
use fundb_term::{Cst, Func, FxHashMap, FxHashSet, Interner, MixedSym, Pred, Var};

/// Persistent elaboration state (predicate kinds survive across `parse`
/// calls so later fact or query strings agree with the program).
#[derive(Default, Clone, Debug)]
pub struct Elaborator {
    functional: FxHashSet<String>,
    declared_arity: FxHashMap<String, usize>,
}

impl Elaborator {
    /// Creates an empty elaborator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a predicate name is (currently known to be) functional.
    pub fn is_functional(&self, pred: &str) -> bool {
        self.functional.contains(pred)
    }

    /// Forces a predicate to be treated as functional — used when the kinds
    /// come from an external source (e.g. a loaded specification file)
    /// rather than from syntactic evidence.
    pub fn force_functional(&mut self, pred: &str) {
        self.functional.insert(pred.to_string());
    }

    /// Absorbs kind evidence from statements, iterating to a fixpoint.
    pub fn absorb(&mut self, stmts: &[PStatement]) {
        let mut atoms: Vec<&PAtom> = Vec::new();
        for s in stmts {
            match s {
                PStatement::Rule(r) => {
                    atoms.push(&r.head);
                    atoms.extend(r.body.iter());
                }
                PStatement::Query(body) => atoms.extend(body.iter()),
                PStatement::FunctionalDecl { name, arity } => {
                    self.functional.insert(name.clone());
                    self.declared_arity.insert(name.clone(), *arity);
                }
            }
        }
        // Direct syntactic evidence.
        for a in &atoms {
            if matches!(
                a.args.first(),
                Some(PTerm::Num(_)) | Some(PTerm::Plus(..)) | Some(PTerm::App(..))
            ) {
                self.functional.insert(a.pred.clone());
            }
        }
        // Propagate through shared variables.
        let mut fvars: FxHashSet<String> = FxHashSet::default();
        loop {
            let mut changed = false;
            for a in &atoms {
                if self.functional.contains(&a.pred) {
                    if let Some(first) = a.args.first() {
                        changed |= collect_spine_vars(first, &mut fvars);
                    }
                } else if let Some(PTerm::Ident(v)) = a.args.first() {
                    if is_var_name(v) && fvars.contains(v) && self.functional.insert(a.pred.clone())
                    {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Elaborates one statement batch into program rules, database facts
    /// and queries.
    pub fn elaborate(
        &self,
        stmts: &[PStatement],
        interner: &mut Interner,
        program: &mut Program,
        db: &mut Database,
        queries: &mut Vec<Query>,
    ) -> Result<()> {
        for s in stmts {
            match s {
                PStatement::FunctionalDecl { .. } => {}
                PStatement::Rule(r) => {
                    let rule = self.rule(r, interner)?;
                    if rule.body.is_empty() && rule.head.is_ground() {
                        db.insert(rule.head, interner)?;
                    } else {
                        program.push(rule);
                    }
                }
                PStatement::Query(body) => {
                    queries.push(self.query(body, interner)?);
                }
            }
        }
        Ok(())
    }

    /// Elaborates a query body, taking all variables (in order of first
    /// occurrence) as outputs.
    pub fn query(&self, body: &[PAtom], interner: &mut Interner) -> Result<Query> {
        let atoms: Vec<Atom> = body
            .iter()
            .map(|a| self.atom(a, interner))
            .collect::<Result<_>>()?;
        let mut out_fvar = None;
        let mut out_nvars = Vec::new();
        let mut seen: FxHashSet<Var> = FxHashSet::default();
        for atom in &atoms {
            if let Some(v) = atom.spine_var() {
                if seen.insert(v) && out_fvar.is_none() {
                    out_fvar = Some(v);
                }
            }
            for v in atom.nvars() {
                if seen.insert(v) {
                    out_nvars.push(v);
                }
            }
        }
        let q = Query {
            out_fvar,
            out_nvars,
            body: atoms,
        };
        q.validate(interner)?;
        Ok(q)
    }

    /// Elaborates a single rule.
    pub fn rule(&self, r: &PRule, interner: &mut Interner) -> Result<Rule> {
        Ok(Rule::new(
            self.atom(&r.head, interner)?,
            r.body
                .iter()
                .map(|a| self.atom(a, interner))
                .collect::<Result<_>>()?,
        ))
    }

    /// Elaborates a single atom.
    pub fn atom(&self, a: &PAtom, interner: &mut Interner) -> Result<Atom> {
        let pred = Pred(interner.intern(&a.pred));
        if let Some(&arity) = self.declared_arity.get(&a.pred) {
            if a.args.len() != arity {
                return Err(Error::Parse {
                    offset: a.offset,
                    detail: format!(
                        "{} declared with arity {arity} but used with {}",
                        a.pred,
                        a.args.len()
                    ),
                });
            }
        }
        if self.functional.contains(&a.pred) {
            let Some((first, rest)) = a.args.split_first() else {
                return Err(Error::Parse {
                    offset: a.offset,
                    detail: format!("functional predicate {} needs a first argument", a.pred),
                });
            };
            Ok(Atom::Functional {
                pred,
                fterm: self.fterm(first, a.offset, interner)?,
                args: rest
                    .iter()
                    .map(|t| self.nterm(t, a.offset, interner))
                    .collect::<Result<_>>()?,
            })
        } else {
            Ok(Atom::Relational {
                pred,
                args: a
                    .args
                    .iter()
                    .map(|t| self.nterm(t, a.offset, interner))
                    .collect::<Result<_>>()?,
            })
        }
    }

    fn fterm(&self, t: &PTerm, offset: usize, interner: &mut Interner) -> Result<FTerm> {
        Ok(match t {
            PTerm::Num(n) => iterate_succ(FTerm::Zero, *n, interner),
            PTerm::Plus(base, n) => {
                let inner = self.fterm(base, offset, interner)?;
                iterate_succ(inner, *n, interner)
            }
            PTerm::Ident(name) => {
                if is_var_name(name) {
                    FTerm::Var(Var(interner.intern(name)))
                } else {
                    return Err(Error::Parse {
                        offset,
                        detail: format!(
                            "constant `{name}` cannot appear in a functional position \
                             (only `0`, variables and function applications can)"
                        ),
                    });
                }
            }
            PTerm::App(f, args) => {
                let Some((first, rest)) = args.split_first() else {
                    return Err(Error::Parse {
                        offset,
                        detail: format!("function symbol `{f}` needs arguments"),
                    });
                };
                let inner = self.fterm(first, offset, interner)?;
                if rest.is_empty() {
                    FTerm::Pure(Func(interner.intern(f)), Box::new(inner))
                } else {
                    let extra = u8::try_from(rest.len()).map_err(|_| Error::Parse {
                        offset,
                        detail: "function arity too large".into(),
                    })?;
                    FTerm::Mixed(
                        MixedSym {
                            name: interner.intern(f),
                            extra_args: extra,
                        },
                        Box::new(inner),
                        rest.iter()
                            .map(|t| self.nterm(t, offset, interner))
                            .collect::<Result<_>>()?,
                    )
                }
            }
        })
    }

    fn nterm(&self, t: &PTerm, offset: usize, interner: &mut Interner) -> Result<NTerm> {
        match t {
            PTerm::Ident(name) => {
                if is_var_name(name) {
                    Ok(NTerm::Var(Var(interner.intern(name))))
                } else {
                    Ok(NTerm::Const(Cst(interner.intern(name))))
                }
            }
            PTerm::Num(_) | PTerm::Plus(..) | PTerm::App(..) => Err(Error::Parse {
                offset,
                detail: "functional term in a non-functional position".into(),
            }),
        }
    }
}

fn is_var_name(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
}

/// The implicit temporal successor symbol.
pub(crate) fn succ_symbol(interner: &mut Interner) -> Func {
    Func(interner.intern("+1"))
}

fn iterate_succ(mut t: FTerm, n: u64, interner: &mut Interner) -> FTerm {
    let s = succ_symbol(interner);
    for _ in 0..n {
        t = FTerm::Pure(s, Box::new(t));
    }
    t
}

/// Records variables in functional (spine) positions; returns whether any
/// was new.
fn collect_spine_vars(t: &PTerm, fvars: &mut FxHashSet<String>) -> bool {
    match t {
        PTerm::Num(_) => false,
        PTerm::Ident(v) => is_var_name(v) && fvars.insert(v.clone()),
        PTerm::Plus(base, _) => collect_spine_vars(base, fvars),
        PTerm::App(_, args) => args
            .first()
            .is_some_and(|first| collect_spine_vars(first, fvars)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_source;

    fn elaborate_all(src: &str) -> Result<(Interner, Program, Database, Vec<Query>)> {
        let stmts = parse_source(src)?;
        let mut el = Elaborator::new();
        el.absorb(&stmts);
        let mut interner = Interner::new();
        let mut program = Program::new();
        let mut db = Database::new();
        let mut queries = Vec::new();
        el.elaborate(&stmts, &mut interner, &mut program, &mut db, &mut queries)?;
        Ok((interner, program, db, queries))
    }

    #[test]
    fn meets_example_elaborates() {
        let (i, program, db, _) = elaborate_all(
            "Meets(t, x), Next(x, y) -> Meets(t+1, y).\n\
             Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
        )
        .unwrap();
        assert_eq!(program.rules.len(), 1);
        assert_eq!(db.len(), 3);
        let rule = &program.rules[0];
        assert!(rule.head.fterm().is_some(), "Meets inferred functional");
        assert!(rule.body[1].fterm().is_none(), "Next stays relational");
        // The renderer folds the implicit successor back into the paper's
        // postfix sugar, so concrete syntax round-trips.
        assert_eq!(
            fundb_core::program::display_rule(rule, &i).to_string(),
            "Meets(t,x), Next(x,y) -> Meets(t+1,y)."
        );
    }

    #[test]
    fn kind_inference_propagates_through_variables() {
        // Q is functional only via sharing the variable s with P.
        let (_, program, _, _) =
            elaborate_all("P(s(t)) -> P(t).\nP(u), Q(u) -> R.\nQ(0).").unwrap();
        // Q(u) must have elaborated functionally (same var as functional P).
        let rule2 = &program.rules[1];
        assert!(rule2.body.iter().all(|a| a.fterm().is_some()));
    }

    #[test]
    fn numbers_desugar_to_succ_chains() {
        let (i, _, db, _) = elaborate_all("Even(4).").unwrap();
        let ft = db.facts[0].fterm().unwrap();
        assert_eq!(ft.depth(), 4);
        let path = ft.pure_path().unwrap();
        assert!(path.iter().all(|f| i.resolve(f.sym()) == "+1"));
    }

    #[test]
    fn mixed_symbols_elaborate() {
        let (_, program, _, _) = elaborate_all("P(x) -> Member(ext(0, x), x).\nP(A).").unwrap();
        let head = &program.rules[0].head;
        assert!(matches!(head.fterm(), Some(FTerm::Mixed(..))));
    }

    #[test]
    fn queries_collect_outputs() {
        let (_, _, _, queries) =
            elaborate_all("Meets(0, Tony).\nMeets(t, x) -> Meets(t+1, x).\n?- Meets(t, x).")
                .unwrap();
        assert_eq!(queries.len(), 1);
        assert!(queries[0].out_fvar.is_some());
        assert_eq!(queries[0].out_nvars.len(), 1);
    }

    #[test]
    fn constants_rejected_in_functional_position() {
        let err = elaborate_all("P(0).\nP(Tony).").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn functional_terms_rejected_in_relational_position() {
        let err = elaborate_all("Next(Tony, f(0)).").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn declaration_forces_kind_and_arity() {
        let (_, program, _, _) = elaborate_all("functional P/1.\nP(t) -> Q(t).").unwrap();
        assert!(program.rules[0].body[0].fterm().is_some());
        let err = elaborate_all("functional P/2.\nP(t) -> Q(t).").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }
}
