//! Tokenizer for the concrete syntax.

use fundb_core::error::{Error, Result};

/// Kinds of tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (predicate, constant, variable or function symbol).
    Ident(String),
    /// Unsigned integer literal.
    Num(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `?-`
    QueryMark,
    /// `/` (used in `functional P/2` declarations)
    Slash,
    /// End of input.
    Eof,
}

/// A token with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// A simple hand-rolled lexer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let offset = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    return Err(Error::Parse {
                        offset,
                        detail: "expected `->`".into(),
                    });
                }
            }
            b'?' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    TokenKind::QueryMark
                } else {
                    return Err(Error::Parse {
                        offset,
                        detail: "expected `?-`".into(),
                    });
                }
            }
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while let Some(d @ b'0'..=b'9') = self.peek() {
                    self.bump();
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((d - b'0') as u64))
                        .ok_or(Error::Parse {
                            offset,
                            detail: "numeric literal overflow".into(),
                        })?;
                }
                TokenKind::Num(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii identifier")
                    .to_string();
                TokenKind::Ident(text)
            }
            other => {
                return Err(Error::Parse {
                    offset,
                    detail: format!("unexpected character `{}`", other as char),
                });
            }
        };
        Ok(Token { kind, offset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_rule() {
        let ks = kinds("Meets(t,x) -> Meets(t+1,x).");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("Meets".into()),
                TokenKind::LParen,
                TokenKind::Ident("t".into()),
                TokenKind::Comma,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("Meets".into()),
                TokenKind::LParen,
                TokenKind::Ident("t".into()),
                TokenKind::Plus,
                TokenKind::Num(1),
                TokenKind::Comma,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("% header\nP(0). // tail\nQ(0).");
        assert_eq!(ks.iter().filter(|k| matches!(k, TokenKind::Dot)).count(), 2);
    }

    #[test]
    fn query_marker() {
        assert_eq!(kinds("?-")[0], TokenKind::QueryMark);
    }

    #[test]
    fn bad_character_errors() {
        assert!(Lexer::new("P(0) & Q(0)").tokenize().is_err());
        assert!(Lexer::new("-x").tokenize().is_err());
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = Lexer::new("  P(0)").tokenize().unwrap();
        assert_eq!(toks[0].offset, 2);
    }
}
