//! One-stop facade over the whole pipeline.
//!
//! [`Workspace`] owns an interner, a program, a database and the persistent
//! elaboration state, and exposes the full paper pipeline as one-line
//! methods:
//!
//! ```
//! use fundb_parser::Workspace;
//!
//! let mut ws = Workspace::new();
//! ws.parse(
//!     "Meets(t, x), Next(x, y) -> Meets(t+1, y).
//!      Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
//! ).unwrap();
//! let spec = ws.graph_spec().unwrap();
//! assert!(ws.holds(&spec, "Meets(4, Tony)").unwrap());
//! assert!(!ws.holds(&spec, "Meets(4, Jan)").unwrap());
//! ```

use crate::elaborate::Elaborator;
use crate::syntax::{parse_source, PStatement};
use fundb_core::error::{Error, Result};
use fundb_core::{
    normalize, to_pure, CompiledProgram, Database, Engine, EqSpec, FTerm, Governor, GraphSpec,
    Program, Query,
};
use fundb_term::{Cst, Func, FxHashMap, Interner, MixedSym};

/// A functional deductive database under construction, with the pipeline
/// attached.
pub struct Workspace {
    /// Symbol interner (shared by everything the workspace builds).
    pub interner: Interner,
    /// The accumulated rules.
    pub program: Program,
    /// The accumulated ground facts.
    pub db: Database,
    /// Queries collected from `?-` statements.
    pub queries: Vec<Query>,
    elaborator: Elaborator,
    /// Mixed→pure symbol instantiations from the last `engine()` /
    /// `graph_spec()` build, used to translate ground mixed terms in later
    /// membership checks.
    sym_map: FxHashMap<(MixedSym, Box<[Cst]>), Func>,
    /// Execution governor installed into every engine this workspace builds
    /// (unlimited by default).
    governor: Governor,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace {
            interner: Interner::new(),
            program: Program::new(),
            db: Database::new(),
            queries: Vec::new(),
            elaborator: Elaborator::new(),
            sym_map: FxHashMap::default(),
            governor: Governor::default(),
        }
    }

    /// Installs an execution governor; every engine built afterwards runs
    /// under its budgets, cancellation token and fault plan.
    pub fn set_governor(&mut self, governor: Governor) {
        self.governor = governor;
    }

    /// The currently installed governor.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// Parses a source fragment (rules, facts, declarations, queries) and
    /// appends it. Can be called multiple times.
    pub fn parse(&mut self, src: &str) -> Result<()> {
        let stmts = parse_source(src)?;
        self.elaborator.absorb(&stmts);
        self.elaborator.elaborate(
            &stmts,
            &mut self.interner,
            &mut self.program,
            &mut self.db,
            &mut self.queries,
        )
    }

    /// Builds a solved engine (validate → normalize → pure → compile →
    /// solve).
    pub fn engine(&mut self) -> Result<Engine> {
        let normal = normalize(&self.program, &mut self.interner);
        let pure = to_pure(&normal, &self.db, &mut self.interner)?;
        self.sym_map = pure.sym_map.clone();
        let cp = CompiledProgram::compile(&pure, &mut self.interner)?;
        let mut engine = Engine::new(cp);
        engine.set_governor(self.governor.clone());
        engine.solve()?;
        Ok(engine)
    }

    /// Builds the graph specification (Algorithm Q).
    pub fn graph_spec(&mut self) -> Result<GraphSpec> {
        let mut engine = self.engine()?;
        GraphSpec::from_engine(&mut engine)
    }

    /// Builds a serializable bundle: the graph specification plus the
    /// mixed→pure symbol map (see `fundb_core::spec_io`).
    pub fn spec_bundle(&mut self) -> Result<fundb_core::SpecBundle> {
        let spec = self.graph_spec()?;
        Ok(fundb_core::SpecBundle {
            spec,
            sym_map: self.sym_map.clone(),
        })
    }

    /// Builds the equational specification (§3.5).
    pub fn eq_spec(&mut self) -> Result<EqSpec> {
        Ok(EqSpec::from_graph(&self.graph_spec()?))
    }

    /// Parses a single query (without the `?-`).
    pub fn parse_query(&mut self, src: &str) -> Result<Query> {
        let stmts = parse_source(&format!("?- {src}."))?;
        self.elaborator.absorb(&stmts);
        let PStatement::Query(body) = &stmts[0] else {
            return Err(Error::UnsupportedQuery {
                detail: "expected a query body".into(),
            });
        };
        self.elaborator.query(body, &mut self.interner)
    }

    /// Checks one ground fact, written in concrete syntax, against a graph
    /// specification.
    pub fn holds(&mut self, spec: &GraphSpec, fact: &str) -> Result<bool> {
        let (pred, fterm, args) = self.parse_ground_fact(fact)?;
        match fterm {
            Some(ft) => {
                let Some(path) = self.pure_path_of(&ft) else {
                    return Ok(false);
                };
                Ok(spec.holds(pred, &path, &args))
            }
            None => Ok(spec.holds_relational(pred, &args)),
        }
    }

    /// Checks one ground fact against an equational specification.
    pub fn holds_eq(&mut self, eq: &mut EqSpec, fact: &str) -> Result<bool> {
        let (pred, fterm, args) = self.parse_ground_fact(fact)?;
        match fterm {
            Some(ft) => {
                let Some(path) = self.pure_path_of(&ft) else {
                    return Ok(false);
                };
                Ok(eq.holds(pred, &path, &args))
            }
            None => Ok(eq.holds_relational(pred, &args)),
        }
    }

    /// Parses one ground fact written in concrete syntax (no trailing `.`)
    /// into its predicate, optional functional term, and constant
    /// arguments — the shape `:retract` needs to address a base fact.
    pub fn parse_fact(
        &mut self,
        fact: &str,
    ) -> Result<(fundb_term::Pred, Option<FTerm>, Vec<Cst>)> {
        self.parse_ground_fact(fact)
    }

    fn parse_ground_fact(
        &mut self,
        fact: &str,
    ) -> Result<(fundb_term::Pred, Option<FTerm>, Vec<Cst>)> {
        let stmts = parse_source(&format!("{fact}."))?;
        let [PStatement::Rule(rule)] = &stmts[..] else {
            return Err(Error::Parse {
                offset: 0,
                detail: "expected a single ground atom".into(),
            });
        };
        if !rule.body.is_empty() {
            return Err(Error::Parse {
                offset: 0,
                detail: "expected a fact, not a rule".into(),
            });
        }
        let atom = self.elaborator.atom(&rule.head, &mut self.interner)?;
        if !atom.is_ground() {
            return Err(Error::NonGroundFact { fact: fact.into() });
        }
        let args: Vec<Cst> = atom
            .args()
            .iter()
            .map(|a| a.as_const().expect("checked ground"))
            .collect();
        Ok((atom.pred(), atom.fterm().cloned(), args))
    }

    /// Translates a ground (possibly mixed) functional term into a pure
    /// symbol path using the last build's mixed→pure instantiations.
    /// Returns `None` when the term uses an instantiation that never occurs
    /// in the fixpoint (so membership is simply false).
    fn pure_path_of(&self, ft: &FTerm) -> Option<Vec<Func>> {
        let (steps, end) = ft.decompose();
        if !matches!(end, FTerm::Zero) {
            return None;
        }
        // Steps are outermost-first; paths are innermost-first.
        let mut path = Vec::with_capacity(steps.len());
        for s in steps.into_iter().rev() {
            match s {
                fundb_core::program::SpineStep::Pure(f) => path.push(f),
                fundb_core::program::SpineStep::Mixed(g, args) => {
                    let consts: Box<[Cst]> = args
                        .into_iter()
                        .map(|a| a.as_const())
                        .collect::<Option<_>>()?;
                    path.push(*self.sym_map.get(&(g, consts))?);
                }
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meets_end_to_end() {
        let mut ws = Workspace::new();
        ws.parse(
            "Meets(t, x), Next(x, y) -> Meets(t+1, y).
             Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
        )
        .unwrap();
        let spec = ws.graph_spec().unwrap();
        assert!(ws.holds(&spec, "Meets(0, Tony)").unwrap());
        assert!(ws.holds(&spec, "Meets(4, Tony)").unwrap());
        assert!(ws.holds(&spec, "Meets(7, Jan)").unwrap());
        assert!(!ws.holds(&spec, "Meets(7, Tony)").unwrap());
        assert!(ws.holds(&spec, "Next(Tony, Jan)").unwrap());
        assert!(!ws.holds(&spec, "Next(Jan, Jan)").unwrap());
    }

    #[test]
    fn lists_example_end_to_end() {
        // §3.4's list-membership example, including mixed ground terms in
        // membership checks.
        let mut ws = Workspace::new();
        ws.parse(
            "P(x) -> Member(ext(0, x), x).
             P(y), Member(s, x) -> Member(ext(s, y), y).
             P(y), Member(s, x) -> Member(ext(s, y), x).
             P(A). P(B).",
        )
        .unwrap();
        let spec = ws.graph_spec().unwrap();
        assert!(ws.holds(&spec, "Member(ext(0, A), A)").unwrap());
        assert!(!ws.holds(&spec, "Member(ext(0, A), B)").unwrap());
        assert!(ws.holds(&spec, "Member(ext(ext(0, A), B), A)").unwrap());
        assert!(ws.holds(&spec, "Member(ext(ext(0, A), B), B)").unwrap());
        assert!(ws
            .holds(&spec, "Member(ext(ext(ext(0, B), A), B), A)")
            .unwrap());
        // An instantiation over an unknown constant is simply false.
        assert!(!ws.holds(&spec, "Member(ext(0, C), C)").unwrap());
    }

    #[test]
    fn eq_spec_round_trip() {
        let mut ws = Workspace::new();
        ws.parse("Even(t) -> Even(t+2).\nEven(0).").unwrap();
        let mut eq = ws.eq_spec().unwrap();
        assert!(ws.holds_eq(&mut eq, "Even(4)").unwrap());
        assert!(!ws.holds_eq(&mut eq, "Even(3)").unwrap());
        assert!(ws.holds_eq(&mut eq, "Even(100)").unwrap());
    }

    #[test]
    fn queries_parse_and_answer() {
        let mut ws = Workspace::new();
        ws.parse(
            "Meets(t, x), Next(x, y) -> Meets(t+1, y).
             Meets(0, Tony). Next(Tony, Jan). Next(Jan, Tony).",
        )
        .unwrap();
        let spec = ws.graph_spec().unwrap();
        let q = ws.parse_query("Meets(t, x)").unwrap();
        assert!(q.is_uniform());
        let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
        assert!(ans.size() >= 2);
    }

    #[test]
    fn incremental_parse_keeps_kinds() {
        let mut ws = Workspace::new();
        ws.parse("Meets(0, Tony).").unwrap();
        // Second fragment uses Meets with a variable first arg — still
        // functional thanks to the persistent elaborator.
        ws.parse("Meets(t, x) -> Meets(t+1, x).").unwrap();
        let spec = ws.graph_spec().unwrap();
        assert!(ws.holds(&spec, "Meets(9, Tony)").unwrap());
    }

    #[test]
    fn non_ground_membership_is_rejected() {
        let mut ws = Workspace::new();
        ws.parse("Even(0).").unwrap();
        let spec = ws.graph_spec().unwrap();
        assert!(ws.holds(&spec, "Even(x)").is_err());
    }
}
