//! Magic-set / demand rewriting for goal-directed evaluation.
//!
//! Bottom-up evaluation materializes the full least fixpoint before a query
//! reads a single answer. For ground or partially-bound goals that is wasted
//! work: only the derivations *reachable from the goal's bindings* can
//! contribute. This module implements the classic magic-set transformation
//! (generalized supplementary magic sets with the identity SIP): given a rule
//! set and a query body, it
//!
//! 1. **adorns** every IDB atom with a binding pattern (`b`/`f` per argument,
//!    e.g. `bf` = first argument bound, second free), propagating bindings
//!    sideways through the body in *written order* — the SIP is the textual
//!    left-to-right order, which keeps the rewrite deterministic and matches
//!    the order [`crate::query`] compiles,
//! 2. synthesizes a **magic predicate** `m_P^a` per demanded adornment,
//!    holding the bound-argument tuples for which `P`'s tuples are actually
//!    needed, seeded from the query's constants and guarded along each rule
//!    body prefix, and
//! 3. emits the **adorned program**: each original rule for `P` becomes, per
//!    demanded adornment `a`, a copy whose head is `P^a`, whose body is
//!    prefixed by the guard `m_P^a(bound args)`, and whose IDB body atoms are
//!    themselves adorned; a *bridge* rule `P^a(x̄) :- m_P^a(x̄|a), P(x̄)`
//!    carries over base-database facts stored under the original predicate,
//! 4. chains every multi-atom body through **supplementary predicates**
//!    `sup_i(V̄) :- sup_{i-1}(…), t_i(…)` that materialize the prefix join
//!    up to atom `i`, keeping only the variables still needed to the right.
//!    Every emitted rule body has at most two atoms, so each semi-naive
//!    delta join probes exactly one other relation on their shared (and
//!    composite-indexable) columns — without this, a delta on a recursive
//!    atom deep in a body re-scans the magic relation on a partial key and
//!    the probe count degenerates to the full fixpoint's (the classic
//!    right-recursive `bb` trap).
//!
//! An atom demanded with the empty adornment (no bound argument under the
//! SIP) keeps its original predicate and pulls in its original rules
//! verbatim — its cone is materialized in full, which is always sound and
//! avoids zero-arity magic relations.
//!
//! The rewritten program is evaluated into a *scratch overlay* database by
//! [`crate::engine::query_demand`]; the base database is never mutated, so
//! demand-driven answering composes with concurrent readers and with the
//! frozen-spec serving layer. Synthetic predicates are minted past every
//! interned symbol (see [`Sym::synthetic`]) and never leak out of the
//! overlay.

use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, FxHashSet, Interner, Pred, Sym, Var};

/// Maximum atom arity the rewrite supports: adornments are `u64` bitmasks,
/// matching the composite-index signature width used by the compiler.
pub const MAX_ADORNED_ARITY: usize = 64;

/// The all-bound adornment for an `arity`-column goal: the binding pattern of
/// a fully ground atom. Used by answer caches that key on the adorned goal.
pub fn all_bound(arity: usize) -> u64 {
    if arity >= MAX_ADORNED_ARITY {
        u64::MAX
    } else {
        (1u64 << arity) - 1
    }
}

/// Renders an adornment bitmask as the conventional `b`/`f` string, e.g.
/// `0b01` over arity 2 → `"bf"`.
pub fn adornment_str(mask: u64, arity: usize) -> String {
    (0..arity)
        .map(|i| if mask & (1 << i) != 0 { 'b' } else { 'f' })
        .collect()
}

/// The binding pattern of `atom` given the variables bound so far: a bit per
/// argument position, set for constants and already-bound variables.
fn adornment_of(atom: &Atom, bound: &FxHashSet<Var>) -> u64 {
    let mut mask = 0u64;
    for (i, t) in atom.args.iter().enumerate() {
        let b = match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        };
        if b {
            mask |= 1 << i;
        }
    }
    mask
}

/// What a synthetic predicate stands for.
#[derive(Clone, Copy, Debug)]
enum SynthPred {
    /// `base` adorned with `adornment`.
    Adorned {
        base: Pred,
        adornment: u64,
        arity: usize,
    },
    /// The magic (demand) relation of `base` adorned with `adornment`.
    Magic {
        base: Pred,
        adornment: u64,
        arity: usize,
    },
    /// A supplementary relation materializing one rule-body prefix join.
    Sup { index: u32 },
}

/// The result of a magic-set rewrite: a self-contained program whose
/// evaluation over (a copy of) the base facts derives exactly the tuples
/// demanded by the goal, plus the transformed query body to run over it.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten rule set: magic guard rules, adorned rule copies,
    /// bridge rules, and verbatim copies of rules demanded unadorned.
    pub rules: Vec<Rule>,
    /// Ground magic seed facts derived from the query's own constants; the
    /// evaluator inserts these into the overlay before running `rules`.
    pub seeds: Vec<(Pred, Vec<Cst>)>,
    /// The query body with IDB atoms replaced by their adorned versions;
    /// evaluated over the overlay to produce the answers.
    pub query_body: Vec<Atom>,
    /// Number of magic rules synthesized (guard rules plus ground seeds).
    pub magic_rule_count: usize,
    magic_preds: Vec<Pred>,
    synth: FxHashMap<Pred, SynthPred>,
}

impl MagicProgram {
    /// The synthetic magic predicates, in mint order. The row counts of
    /// their overlay relations after evaluation are the `demanded_tuples`
    /// statistic.
    pub fn magic_preds(&self) -> &[Pred] {
        &self.magic_preds
    }

    /// Whether `p` was minted by this rewrite (adorned or magic), as opposed
    /// to naming a relation of the original program.
    pub fn is_synthetic(&self, p: Pred) -> bool {
        self.synth.contains_key(&p)
    }

    /// Every original (non-synthetic) predicate the rewritten program reads
    /// or writes, in first-reference order. The overlay is seeded by copying
    /// exactly these relations from the base database.
    pub fn base_preds(&self) -> Vec<Pred> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        let mut note = |p: Pred, synth: &FxHashMap<Pred, SynthPred>| {
            if !synth.contains_key(&p) && seen.insert(p) {
                out.push(p);
            }
        };
        for rule in &self.rules {
            note(rule.head.pred, &self.synth);
            for atom in &rule.body {
                note(atom.pred, &self.synth);
            }
        }
        for atom in &self.query_body {
            note(atom.pred, &self.synth);
        }
        out
    }

    /// Human-readable name for any predicate of the rewritten program:
    /// original predicates resolve through the interner, synthetic ones
    /// render as `P_bf` / `m_P_bf` from their base predicate and adornment.
    pub fn display_pred(&self, p: Pred, interner: &Interner) -> String {
        match self.synth.get(&p) {
            Some(SynthPred::Adorned {
                base,
                adornment,
                arity,
            }) => format!(
                "{}_{}",
                sym_name(base.sym(), interner),
                adornment_str(*adornment, *arity)
            ),
            Some(SynthPred::Magic {
                base,
                adornment,
                arity,
            }) => format!(
                "m_{}_{}",
                sym_name(base.sym(), interner),
                adornment_str(*adornment, *arity)
            ),
            Some(SynthPred::Sup { index }) => format!("sup{index}"),
            None => sym_name(p.sym(), interner),
        }
    }

    /// Human-readable rendering of one atom of the rewritten program,
    /// resolving synthetic predicates through [`Self::display_pred`].
    pub fn display_atom(&self, atom: &Atom, interner: &Interner) -> String {
        let args = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => sym_name(v.sym(), interner),
                Term::Const(c) => sym_name(c.sym(), interner),
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{}({})", self.display_pred(atom.pred, interner), args)
    }

    /// Renders the whole rewritten program — seeds, rules, and transformed
    /// query body — one clause per line, for the REPL's `:plan` command.
    pub fn render(&self, interner: &Interner) -> String {
        let mut out = String::new();
        for (p, row) in &self.seeds {
            let args = row
                .iter()
                .map(|c| sym_name(c.sym(), interner))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!("{}({}).\n", self.display_pred(*p, interner), args));
        }
        for rule in &self.rules {
            let body = rule
                .body
                .iter()
                .map(|a| self.display_atom(a, interner))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "{} :- {}.\n",
                self.display_atom(&rule.head, interner),
                body
            ));
        }
        let q = self
            .query_body
            .iter()
            .map(|a| self.display_atom(a, interner))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("?- {q}.\n"));
        out
    }
}

/// Resolves a symbol that may be synthetic: interned symbols resolve through
/// the interner, minted ones render positionally.
fn sym_name(sym: Sym, interner: &Interner) -> String {
    if sym.index() < interner.len() {
        interner.resolve(sym).to_owned()
    } else {
        format!("_s{}", sym.index())
    }
}

/// Rewrites `rules` for the goal `query` (a conjunctive body, evaluated
/// left-to-right). Returns `None` when the rewrite cannot help and the
/// caller should fall back to full materialization or direct lookup:
///
/// * the query body is empty,
/// * no body atom names an IDB predicate (the goal is answerable from the
///   base facts alone),
/// * no IDB body atom has a single bound argument under the left-to-right
///   SIP (an all-free goal needs the full fixpoint anyway), or
/// * an atom exceeds [`MAX_ADORNED_ARITY`].
pub fn magic_rewrite(rules: &[Rule], query: &[Atom]) -> Option<MagicProgram> {
    if query.is_empty() {
        return None;
    }
    let wide = |a: &Atom| a.args.len() > MAX_ADORNED_ARITY;
    if query.iter().any(wide)
        || rules
            .iter()
            .any(|r| wide(&r.head) || r.body.iter().any(wide))
    {
        return None;
    }
    let idb: FxHashSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
    if !query.iter().any(|a| idb.contains(&a.pred)) {
        return None;
    }
    // An adornment only restricts anything if some IDB atom sees a binding.
    {
        let mut bound: FxHashSet<Var> = FxHashSet::default();
        let mut any = false;
        for atom in query {
            if idb.contains(&atom.pred) && adornment_of(atom, &bound) != 0 {
                any = true;
                break;
            }
            bound.extend(atom.vars());
        }
        if !any {
            return None;
        }
    }

    let mut rw = Rewriter {
        rules,
        idb,
        next: next_free_sym_index(rules, query),
        adorned: FxHashMap::default(),
        magic: FxHashMap::default(),
        seen: FxHashSet::default(),
        queue: Vec::new(),
        out: Vec::new(),
        seeds: Vec::new(),
        magic_preds: Vec::new(),
        synth: FxHashMap::default(),
        magic_rule_count: 0,
        sup_count: 0,
    };
    // Any query variable may be an output, so the final supplementary
    // context of the query body must carry all of them.
    let qvars: FxHashSet<Var> = query.iter().flat_map(Atom::vars).collect();
    let query_body = rw.transform_body(query, FxHashSet::default(), None, &qvars);
    while let Some((p, mask)) = rw.queue.pop() {
        rw.process_demand(p, mask);
    }
    Some(MagicProgram {
        rules: rw.out,
        seeds: rw.seeds,
        query_body,
        magic_rule_count: rw.magic_rule_count,
        magic_preds: rw.magic_preds,
        synth: rw.synth,
    })
}

/// First symbol index past everything the program and query mention, so
/// minted predicates and variables can never collide with real ones.
fn next_free_sym_index(rules: &[Rule], query: &[Atom]) -> u32 {
    let mut max = 0u32;
    let mut note_sym = |s: Sym| {
        let i = s.index() as u32;
        if i != u32::MAX && i + 1 > max {
            max = i + 1;
        }
    };
    let mut note_atom = |a: &Atom| {
        note_sym(a.pred.sym());
        for t in &a.args {
            match t {
                Term::Var(v) => note_sym(v.sym()),
                Term::Const(c) => note_sym(c.sym()),
            }
        }
    };
    for rule in rules {
        note_atom(&rule.head);
        for a in &rule.body {
            note_atom(a);
        }
    }
    for a in query {
        note_atom(a);
    }
    max
}

/// The terms of `atom` at the bound positions of `mask`, in column order —
/// the argument list of the corresponding magic atom.
fn bound_args(atom: &Atom, mask: u64) -> Vec<Term> {
    atom.args
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, t)| *t)
        .collect()
}

struct Rewriter<'a> {
    rules: &'a [Rule],
    idb: FxHashSet<Pred>,
    next: u32,
    adorned: FxHashMap<(Pred, u64), Pred>,
    magic: FxHashMap<(Pred, u64), Pred>,
    /// Demands already enqueued (predicate × adornment); each is expanded
    /// into rules exactly once.
    seen: FxHashSet<(Pred, u64)>,
    queue: Vec<(Pred, u64)>,
    out: Vec<Rule>,
    seeds: Vec<(Pred, Vec<Cst>)>,
    magic_preds: Vec<Pred>,
    synth: FxHashMap<Pred, SynthPred>,
    magic_rule_count: usize,
    sup_count: u32,
}

impl Rewriter<'_> {
    fn mint(&mut self) -> Sym {
        let s = Sym::synthetic(self.next);
        self.next += 1;
        s
    }

    fn adorned_pred(&mut self, p: Pred, mask: u64, arity: usize) -> Pred {
        debug_assert!(mask != 0);
        if let Some(&ap) = self.adorned.get(&(p, mask)) {
            return ap;
        }
        let ap = Pred(self.mint());
        self.adorned.insert((p, mask), ap);
        self.synth.insert(
            ap,
            SynthPred::Adorned {
                base: p,
                adornment: mask,
                arity,
            },
        );
        ap
    }

    fn magic_pred(&mut self, p: Pred, mask: u64, arity: usize) -> Pred {
        if let Some(&mp) = self.magic.get(&(p, mask)) {
            return mp;
        }
        let mp = Pred(self.mint());
        self.magic.insert((p, mask), mp);
        self.synth.insert(
            mp,
            SynthPred::Magic {
                base: p,
                adornment: mask,
                arity,
            },
        );
        self.magic_preds.push(mp);
        mp
    }

    fn sup_pred(&mut self) -> Pred {
        let sp = Pred(self.mint());
        self.synth.insert(
            sp,
            SynthPred::Sup {
                index: self.sup_count,
            },
        );
        self.sup_count += 1;
        sp
    }

    fn demand(&mut self, p: Pred, mask: u64) {
        if self.seen.insert((p, mask)) {
            self.queue.push((p, mask));
        }
    }

    /// Transforms one body (the query's, or a rule's) under the
    /// left-to-right SIP, chaining the prefix through supplementary
    /// relations. `bound` holds the variables bound on entry (the guard's,
    /// for adorned rule bodies), `ctx` the single atom standing for the
    /// prefix join so far (the guard itself, for adorned rule bodies;
    /// `None` at a body's start otherwise), and `needed_after` the
    /// variables read after the body ends (the head's, or every query
    /// variable).
    ///
    /// For every adorned IDB occurrence a magic guard rule over the current
    /// context is emitted — or, if there is no context yet (only constants
    /// can be bound), a ground magic seed. Between atoms the context is
    /// folded into a supplementary relation keeping exactly the variables
    /// still needed to the right, so every emitted rule body has at most
    /// two atoms. Returns the final transformed body: the last context plus
    /// the transformed last atom.
    fn transform_body(
        &mut self,
        body: &[Atom],
        mut bound: FxHashSet<Var>,
        mut ctx: Option<Atom>,
        needed_after: &FxHashSet<Var>,
    ) -> Vec<Atom> {
        // needed[i]: variables read to the right of atom i.
        let mut needed: Vec<FxHashSet<Var>> = Vec::with_capacity(body.len());
        let mut acc = needed_after.clone();
        for atom in body.iter().rev() {
            needed.push(acc.clone());
            acc.extend(atom.vars());
        }
        needed.reverse();

        let mut last = None;
        for (i, atom) in body.iter().enumerate() {
            let mask = adornment_of(atom, &bound);
            let t_atom = if self.idb.contains(&atom.pred) && mask != 0 {
                let arity = atom.args.len();
                let ap = self.adorned_pred(atom.pred, mask, arity);
                let mp = self.magic_pred(atom.pred, mask, arity);
                let margs = bound_args(atom, mask);
                match &ctx {
                    None => {
                        let row: Vec<Cst> = margs
                            .iter()
                            .map(|t| t.as_const().expect("empty prefix can only bind constants"))
                            .collect();
                        self.seeds.push((mp, row));
                        self.magic_rule_count += 1;
                    }
                    Some(c) => {
                        let guard = Atom::new(mp, margs);
                        // Skip the tautological self-guard `m(x̄) :- m(x̄)`
                        // a recursive atom repeating its head binding makes.
                        if guard != *c {
                            self.out.push(Rule::new(guard, vec![c.clone()]));
                            self.magic_rule_count += 1;
                        }
                    }
                }
                self.demand(atom.pred, mask);
                Atom::new(ap, atom.args.clone())
            } else {
                if self.idb.contains(&atom.pred) {
                    self.demand(atom.pred, 0);
                }
                atom.clone()
            };
            bound.extend(atom.vars());
            if i + 1 == body.len() {
                last = Some(t_atom);
            } else {
                ctx = Some(match ctx.take() {
                    // A single atom is its own context; no relation needed.
                    None => t_atom,
                    Some(c) => {
                        // sup(V̄) :- ctx, t_atom — V̄ the still-needed
                        // variables, in first-appearance order.
                        let mut args: Vec<Term> = Vec::new();
                        let mut seen: FxHashSet<Var> = FxHashSet::default();
                        for t in c.args.iter().chain(t_atom.args.iter()) {
                            if let Term::Var(v) = t {
                                if needed[i].contains(v) && seen.insert(*v) {
                                    args.push(Term::Var(*v));
                                }
                            }
                        }
                        let sup = Atom::new(self.sup_pred(), args);
                        self.out.push(Rule::new(sup.clone(), vec![c, t_atom]));
                        sup
                    }
                });
            }
        }
        let mut out_body = Vec::with_capacity(2);
        if let Some(c) = ctx {
            out_body.push(c);
        }
        out_body.extend(last);
        out_body
    }

    /// Expands one demand `(p, mask)` into rules. For `mask == 0` the
    /// original rules for `p` are copied with transformed bodies (their own
    /// IDB atoms may still be adorned via in-body constants and joins). For
    /// a real adornment each rule becomes an adorned copy guarded by the
    /// magic atom, plus one bridge rule importing `p`'s base facts.
    fn process_demand(&mut self, p: Pred, mask: u64) {
        let mut arity = None;
        let rules = self.rules;
        for rule in rules.iter().filter(|r| r.head.pred == p) {
            arity = Some(rule.head.args.len());
            let head_vars: FxHashSet<Var> = rule.head.vars().collect();
            if mask == 0 {
                let body = self.transform_body(&rule.body, FxHashSet::default(), None, &head_vars);
                self.out.push(Rule::new(rule.head.clone(), body));
            } else {
                let hr = rule.head.args.len();
                let ap = self.adorned_pred(p, mask, hr);
                let mp = self.magic_pred(p, mask, hr);
                let guard = Atom::new(mp, bound_args(&rule.head, mask));
                let bound: FxHashSet<Var> = guard.vars().collect();
                let new_body = self.transform_body(&rule.body, bound, Some(guard), &head_vars);
                self.out
                    .push(Rule::new(Atom::new(ap, rule.head.args.clone()), new_body));
            }
        }
        if mask != 0 {
            // Bridge: base facts stored under `p` itself satisfy any demand
            // on `p` that matches them.
            let arity = arity.expect("demanded predicate has at least one rule");
            let ap = self.adorned_pred(p, mask, arity);
            let mp = self.magic_pred(p, mask, arity);
            let vars: Vec<Term> = (0..arity).map(|_| Term::Var(Var(self.mint()))).collect();
            let base_atom = Atom::new(p, vars.clone());
            let guard = Atom::new(
                mp,
                vars.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, t)| *t)
                    .collect(),
            );
            self.out
                .push(Rule::new(Atom::new(ap, vars), vec![guard, base_atom]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fix {
        interner: Interner,
        path: Pred,
        edge: Pred,
        x: Var,
        y: Var,
        z: Var,
        a: Cst,
    }

    fn fix() -> Fix {
        let mut i = Interner::new();
        Fix {
            path: Pred(i.intern("path")),
            edge: Pred(i.intern("edge")),
            x: Var(i.intern("x")),
            y: Var(i.intern("y")),
            z: Var(i.intern("z")),
            a: Cst(i.intern("a")),
            interner: i,
        }
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_rules(f: &Fix) -> Vec<Rule> {
        vec![
            Rule::new(
                Atom::new(f.path, vec![Term::Var(f.x), Term::Var(f.y)]),
                vec![Atom::new(f.edge, vec![Term::Var(f.x), Term::Var(f.y)])],
            ),
            Rule::new(
                Atom::new(f.path, vec![Term::Var(f.x), Term::Var(f.z)]),
                vec![
                    Atom::new(f.path, vec![Term::Var(f.x), Term::Var(f.y)]),
                    Atom::new(f.edge, vec![Term::Var(f.y), Term::Var(f.z)]),
                ],
            ),
        ]
    }

    #[test]
    fn bound_first_argument_seeds_and_adorns() {
        let f = fix();
        let rules = tc_rules(&f);
        let query = vec![Atom::new(f.path, vec![Term::Const(f.a), Term::Var(f.x)])];
        let mp = magic_rewrite(&rules, &query).expect("rewrite applies");
        // One ground seed from the query constant.
        assert_eq!(mp.seeds.len(), 1);
        let (seed_pred, row) = &mp.seeds[0];
        assert!(mp.is_synthetic(*seed_pred));
        assert_eq!(row, &vec![f.a]);
        assert_eq!(mp.display_pred(*seed_pred, &f.interner), "m_path_bf");
        // Exactly one magic predicate (path^bf), demanded recursively.
        assert_eq!(mp.magic_preds().len(), 1);
        // Query body was replaced by the adorned predicate.
        assert_eq!(mp.query_body.len(), 1);
        assert!(mp.is_synthetic(mp.query_body[0].pred));
        assert_eq!(
            mp.display_pred(mp.query_body[0].pred, &f.interner),
            "path_bf"
        );
        // 2 adorned rule copies + 1 supplementary rule (the recursive
        // body's prefix) + 1 bridge; the recursive atom's self-guard
        // `m_path_bf(x) :- m_path_bf(x)` is skipped as tautological.
        assert_eq!(mp.rules.len(), 4);
        assert!(
            mp.rules.iter().all(|r| r.body.len() <= 2),
            "supplementary chaining must keep every body at ≤2 atoms"
        );
        assert!(mp.rules.iter().all(Rule::is_range_restricted));
        // Base relations read by the overlay: edge and path (bridge).
        assert_eq!(mp.base_preds(), vec![f.edge, f.path]);
    }

    #[test]
    fn all_free_goal_is_a_noop() {
        let f = fix();
        let rules = tc_rules(&f);
        let query = vec![Atom::new(f.path, vec![Term::Var(f.x), Term::Var(f.y)])];
        assert!(magic_rewrite(&rules, &query).is_none());
    }

    #[test]
    fn edb_only_goal_is_a_noop() {
        let f = fix();
        let rules = tc_rules(&f);
        let query = vec![Atom::new(f.edge, vec![Term::Const(f.a), Term::Var(f.x)])];
        assert!(magic_rewrite(&rules, &query).is_none());
        assert!(magic_rewrite(&rules, &[]).is_none());
    }

    #[test]
    fn join_bound_idb_atom_is_adorned() {
        // edge(x,y), path(y,z): path's first argument is bound by the join,
        // so the rewrite applies even though the query has no constants.
        let f = fix();
        let rules = tc_rules(&f);
        let query = vec![
            Atom::new(f.edge, vec![Term::Var(f.x), Term::Var(f.y)]),
            Atom::new(f.path, vec![Term::Var(f.y), Term::Var(f.z)]),
        ];
        let mp = magic_rewrite(&rules, &query).expect("rewrite applies");
        // No ground seed (no constants); the magic rule's body is the
        // transformed prefix [edge(x,y)].
        assert!(mp.seeds.is_empty());
        let guard = mp
            .rules
            .iter()
            .find(|r| mp.magic_preds().contains(&r.head.pred) && r.body[0].pred == f.edge)
            .expect("prefix-guarded magic rule");
        assert_eq!(guard.body.len(), 1);
        assert_eq!(mp.query_body[0].pred, f.edge);
        assert!(mp.is_synthetic(mp.query_body[1].pred));
    }

    #[test]
    fn rewrite_is_deterministic() {
        let f = fix();
        let rules = tc_rules(&f);
        let query = vec![Atom::new(f.path, vec![Term::Const(f.a), Term::Var(f.x)])];
        let a = magic_rewrite(&rules, &query).unwrap();
        let b = magic_rewrite(&rules, &query).unwrap();
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.query_body, b.query_body);
        assert_eq!(a.magic_rule_count, b.magic_rule_count);
    }

    #[test]
    fn wide_atoms_fall_back() {
        let mut i = Interner::new();
        let p = Pred(i.intern("p"));
        let args: Vec<Term> = (0..=MAX_ADORNED_ARITY)
            .map(|k| Term::Var(Var(i.intern(&format!("v{k}")))))
            .collect();
        let rules = vec![Rule::new(
            Atom::new(p, args.clone()),
            vec![Atom::new(p, args.clone())],
        )];
        let mut query = args;
        query[0] = Term::Const(Cst(i.intern("c")));
        assert!(magic_rewrite(&rules, &[Atom::new(p, query)]).is_none());
    }

    #[test]
    fn render_names_adorned_and_magic_predicates() {
        let f = fix();
        let rules = tc_rules(&f);
        let query = vec![Atom::new(f.path, vec![Term::Const(f.a), Term::Var(f.x)])];
        let mp = magic_rewrite(&rules, &query).unwrap();
        let text = mp.render(&f.interner);
        assert!(text.contains("m_path_bf(a)."), "seed missing: {text}");
        assert!(text.contains("path_bf("), "adorned head missing: {text}");
        assert!(text.contains("?- path_bf(a,x)."), "goal missing: {text}");
    }

    #[test]
    fn adornment_helpers() {
        assert_eq!(adornment_str(0b01, 2), "bf");
        assert_eq!(adornment_str(0b10, 2), "fb");
        assert_eq!(adornment_str(0b11, 2), "bb");
        assert_eq!(all_bound(0), 0);
        assert_eq!(all_bound(2), 0b11);
        assert_eq!(all_bound(64), u64::MAX);
    }
}
