//! Execution governor: budgets, cooperative cancellation, and
//! deterministic fault injection for the fixpoint engine.
//!
//! The paper's least fixpoints are in general **infinite** (§1, §2.5), so
//! any evaluator that materializes rows must assume it can be pointed at a
//! program whose fixpoint never converges or converges only after
//! exhausting memory. The [`Governor`] is the per-run contract that makes
//! that survivable: a declarative [`Budget`] (wall-clock deadline, derived
//! rows, fixpoint rounds, approximate row-store bytes), a shared
//! [`CancelToken`] any thread or signal handler can flip, and a
//! [`FaultPlan`] that injects worker panics, synthetic round failures and
//! slow probes deterministically in tests (inert unless configured).
//!
//! Check points are cooperative and two-tier:
//!
//! * **round boundaries** — the evaluator consults the governor between
//!   fixpoint rounds, where the database is consistent. All deterministic
//!   budgets (rounds, rows, bytes, injected round faults) trip here, so a
//!   truncated run is cut at the same place regardless of thread count.
//! * **every [`PROBE_CHECK_INTERVAL`] join probes** — compiled
//!   [`JoinProgram`](crate::JoinProgram) execution polls the deadline and
//!   the cancel token from inside the innermost loop, bounding how long a
//!   single monster round can overshoot. A mid-round trip discards the
//!   whole round's derivation buffer, leaving the database in the last
//!   completed round.
//!
//! Either way the evaluator returns [`EvalError`] instead of panicking or
//! hanging, carrying the committed-round statistics as the deterministic
//! partial result.

use crate::engine::EvalStats;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Join probes between deadline/cancellation polls inside compiled program
/// execution. A power of two: the check compiles to one mask-and-branch on
/// the probe counter the inner loop already maintains, keeping governor
/// overhead within noise (see EXPERIMENTS, governor overhead table).
pub const PROBE_CHECK_INTERVAL: usize = 1024;

pub(crate) const PROBE_CHECK_MASK: usize = PROBE_CHECK_INTERVAL - 1;

/// Round boundaries poll the wall clock every this many rounds (power of
/// two; round 1 always polls). See `Governor::begin_round`.
pub(crate) const DEADLINE_ROUND_STRIDE: usize = 8;

/// The budgeted resource a truncated evaluation ran out of.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// [`Budget::max_rows`]: derived-row limit reached.
    Rows,
    /// [`Budget::max_rounds`]: fixpoint-round limit reached.
    Rounds,
    /// [`Budget::max_millis`]: the wall-clock deadline passed.
    Time,
    /// [`Budget::max_bytes`]: the approximate row-store footprint limit.
    Bytes,
    /// The [`CancelToken`] was flipped (Ctrl-C, another thread, …).
    Cancelled,
    /// An injected `fail_round` fault (tests only; see [`FaultPlan`]).
    Fault,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resource::Rows => "derived-row budget",
            Resource::Rounds => "round budget",
            Resource::Time => "deadline",
            Resource::Bytes => "byte budget",
            Resource::Cancelled => "cancellation",
            Resource::Fault => "injected fault",
        })
    }
}

/// Why an evaluation stopped before reaching the fixpoint.
///
/// Both variants leave the database in a deterministic, consistent state:
/// the rows present are exactly a prefix of the rows an unbudgeted run
/// would have inserted, in the same order, at any thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A budget ran out or the run was cancelled. `partial` is the
    /// statistics snapshot at the truncation point (committed rounds plus,
    /// for the row budget, the deterministic partial merge).
    BudgetExhausted {
        /// Which budget tripped.
        resource: Resource,
        /// Counters for the work that *was* committed.
        partial: EvalStats,
    },
    /// An evaluation task panicked. The panic was caught on the worker, the
    /// round's buffer was discarded, and the database is the last completed
    /// round — the process never aborts.
    WorkerPanicked {
        /// Deterministic global index of the poisoned task.
        task: usize,
        /// The panic payload, rendered as text.
        payload: String,
    },
    /// The durable-log sink attached to the run
    /// ([`IncrementalEval::run_with_sink`](crate::IncrementalEval::run_with_sink))
    /// failed to persist a committed round. The in-memory database still
    /// holds every completed round, but the write-ahead log ends at the
    /// last round whose commit marker reached the sink, so recovery will
    /// land on that earlier completed-round prefix.
    WalFailed {
        /// The sink's error, rendered as text (typically an `io::Error`).
        detail: String,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::BudgetExhausted { resource, partial } => write!(
                f,
                "evaluation truncated by {resource} after {} derived row(s) in {} round(s)",
                partial.derived, partial.rounds
            ),
            EvalError::WorkerPanicked { task, payload } => {
                write!(f, "evaluation task {task} panicked: {payload}")
            }
            EvalError::WalFailed { detail } => {
                write!(f, "durable log write failed: {detail}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Declarative per-run resource limits. `None` everywhere (the default)
/// means unlimited.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum derived rows (across every run sharing the governor).
    pub max_rows: Option<usize>,
    /// Maximum fixpoint rounds (across every run sharing the governor).
    pub max_rounds: Option<usize>,
    /// Wall-clock deadline, in milliseconds from the first governed run.
    pub max_millis: Option<u64>,
    /// Approximate row-store footprint ceiling, in bytes (checked at round
    /// boundaries against [`Database::approx_bytes`](crate::Database::approx_bytes)).
    pub max_bytes: Option<usize>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps derived rows. Builder form.
    pub fn with_max_rows(mut self, n: usize) -> Budget {
        self.max_rows = Some(n);
        self
    }

    /// Caps fixpoint rounds. Builder form.
    pub fn with_max_rounds(mut self, n: usize) -> Budget {
        self.max_rounds = Some(n);
        self
    }

    /// Sets the wall-clock deadline. Builder form.
    pub fn with_max_millis(mut self, ms: u64) -> Budget {
        self.max_millis = Some(ms);
        self
    }

    /// Caps the approximate row-store footprint. Builder form.
    pub fn with_max_bytes(mut self, bytes: usize) -> Budget {
        self.max_bytes = Some(bytes);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// A shared cancellation flag: cheap to clone, safe to flip from another
/// thread or a signal handler (one atomic store).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, unset token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; governed evaluations return
    /// [`Resource::Cancelled`] at their next check point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Clears the flag so the token can govern the next run (REPL reuse
    /// after a cancelled command).
    pub fn clear(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Deterministic fault injection, inert by default. Configured either
/// programmatically (tests) or through the `FUNDB_FAULT` environment
/// variable, whose value is a comma-separated list of `kind:n` knobs:
///
/// * `panic_task:N` — the task with deterministic global index `N` panics
///   before executing, exercising worker panic isolation;
/// * `fail_round:N` — the `N`-th fixpoint round (1-based, counted across
///   runs sharing a governor) reports [`Resource::Fault`] at its boundary,
///   exercising mid-fixpoint budget exhaustion;
/// * `slow_probe:N` — every probe-level governor check sleeps `N`
///   microseconds, driving deadline hits without timing races.
///
/// IO faults, consumed by the durable-storage layer (`fundb-storage`) to
/// drive crash-recovery tests; the in-memory evaluator ignores them:
///
/// * `torn_write:N` — the `N`-th record appended through a WAL handle
///   (1-based) reaches the file only as a prefix, as if the process died
///   mid-`write`, and the handle goes dead;
/// * `short_read:N` — the recovery scan treats the `N`-th log record as
///   cut off by end-of-file, exercising truncation of an incomplete tail;
/// * `fsync_fail:N` — the `N`-th explicit durability sync on a WAL handle
///   reports an IO error;
/// * `crash_after_record:N` — after `N` records were appended through a
///   WAL handle, every further append fails, simulating a process that
///   loses its log mid-run but keeps executing in memory.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Global index of the task that panics.
    pub panic_task: Option<usize>,
    /// 1-based global round that fails at its boundary.
    pub fail_round: Option<usize>,
    /// Microseconds slept at each probe-level check.
    pub slow_probe: Option<u64>,
    /// 1-based WAL record whose append is cut short (IO fault).
    pub torn_write: Option<usize>,
    /// 1-based WAL record the recovery scan sees as truncated (IO fault).
    pub short_read: Option<usize>,
    /// 1-based durability sync that reports an IO error (IO fault).
    pub fsync_fail: Option<usize>,
    /// Appended records after which the WAL handle rejects writes (IO
    /// fault).
    pub crash_after_record: Option<usize>,
}

impl FaultPlan {
    /// Parses a `FUNDB_FAULT`-style spec (`"panic_task:3,slow_probe:500"`).
    /// Unknown or malformed knobs are skipped with a one-line warning on
    /// stderr: fault injection must never turn a production run into a
    /// parse error, but a typo in a test matrix must not silently disarm
    /// the fault either.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for knob in spec.split(',') {
            if knob.trim().is_empty() {
                continue;
            }
            let Some((kind, n)) = knob.split_once(':') else {
                eprintln!(
                    "warning: FUNDB_FAULT knob `{}` has no `:value`; skipped",
                    knob.trim()
                );
                continue;
            };
            match (kind.trim(), n.trim().parse::<u64>()) {
                ("panic_task", Ok(n)) => plan.panic_task = Some(n as usize),
                ("fail_round", Ok(n)) => plan.fail_round = Some(n as usize),
                ("slow_probe", Ok(n)) => plan.slow_probe = Some(n),
                ("torn_write", Ok(n)) => plan.torn_write = Some(n as usize),
                ("short_read", Ok(n)) => plan.short_read = Some(n as usize),
                ("fsync_fail", Ok(n)) => plan.fsync_fail = Some(n as usize),
                ("crash_after_record", Ok(n)) => plan.crash_after_record = Some(n as usize),
                (kind, Err(_)) => {
                    eprintln!(
                        "warning: FUNDB_FAULT knob `{kind}` has a malformed count `{}`; skipped",
                        n.trim()
                    );
                }
                (kind, Ok(_)) => {
                    eprintln!("warning: FUNDB_FAULT knob `{kind}` is unknown; skipped");
                }
            }
        }
        plan
    }

    /// The process-wide plan from the `FUNDB_FAULT` environment variable,
    /// read once and cached (the default for every governor).
    pub fn from_env() -> &'static FaultPlan {
        static PLAN: OnceLock<FaultPlan> = OnceLock::new();
        PLAN.get_or_init(|| {
            std::env::var("FUNDB_FAULT")
                .map(|v| FaultPlan::parse(&v))
                .unwrap_or_default()
        })
    }

    /// True when no fault is armed.
    pub fn is_inert(&self) -> bool {
        *self == FaultPlan::default()
    }
}

#[derive(Debug)]
struct GovInner {
    budget: Budget,
    cancel: CancelToken,
    fault: FaultPlan,
    /// Armed at the first governed run, so `max_millis` spans a whole
    /// multi-run computation (e.g. every local fixpoint of one engine
    /// solve) rather than restarting per run.
    deadline: OnceLock<Instant>,
    /// Derived rows committed so far, across runs sharing this governor.
    rows: AtomicUsize,
    /// Fixpoint rounds started so far, across runs sharing this governor.
    rounds: AtomicUsize,
    /// Next deterministic global task index (advanced per round by the
    /// coordinating thread, never by workers).
    task_base: AtomicUsize,
}

/// The shared execution-governor handle threaded through every evaluation
/// loop. Clones share all state (an `Arc`), so one governor can bound a
/// whole multi-fixpoint computation and one `cancel` stops all of it.
#[derive(Clone, Debug)]
pub struct Governor {
    inner: Arc<GovInner>,
}

impl Default for Governor {
    fn default() -> Self {
        Governor::new(Budget::unlimited())
    }
}

impl Governor {
    /// A governor enforcing `budget`, with a fresh cancel token and the
    /// process-wide (`FUNDB_FAULT`) fault plan.
    pub fn new(budget: Budget) -> Governor {
        Governor {
            inner: Arc::new(GovInner {
                budget,
                cancel: CancelToken::new(),
                fault: *FaultPlan::from_env(),
                deadline: OnceLock::new(),
                rows: AtomicUsize::new(0),
                rounds: AtomicUsize::new(0),
                task_base: AtomicUsize::new(0),
            }),
        }
    }

    /// Replaces the cancel token (e.g. with one a signal handler owns).
    /// Builder form; must be called before the governor is shared.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Governor {
        Arc::get_mut(&mut self.inner)
            .expect("with_cancel_token before the governor is shared")
            .cancel = token;
        self
    }

    /// Replaces the fault plan (tests). Builder form; must be called before
    /// the governor is shared.
    pub fn with_faults(mut self, fault: FaultPlan) -> Governor {
        Arc::get_mut(&mut self.inner)
            .expect("with_faults before the governor is shared")
            .fault = fault;
        self
    }

    /// The budget this governor enforces.
    pub fn budget(&self) -> &Budget {
        &self.inner.budget
    }

    /// A clone of the cancel token, for handing to other threads or signal
    /// handlers.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Requests cancellation of every evaluation this governor governs.
    pub fn cancel(&self) {
        self.inner.cancel.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancel.is_cancelled()
    }

    /// Derived rows committed under this governor so far.
    pub fn rows_used(&self) -> usize {
        self.inner.rows.load(Ordering::Relaxed)
    }

    /// Fixpoint rounds started under this governor so far.
    pub fn rounds_used(&self) -> usize {
        self.inner.rounds.load(Ordering::Relaxed)
    }

    /// Lightweight cancellation/deadline gate for governed *read-side* work
    /// (spec freezing, batch answering) that is not organized in fixpoint
    /// rounds. Checks, in order, cancellation then the wall-clock deadline
    /// (arming it on first use, like any governed run), and advances no row
    /// or round counters. Callers poll this at chunk boundaries.
    pub fn checkpoint(&self) -> Result<(), Resource> {
        if self.inner.cancel.is_cancelled() {
            return Err(Resource::Cancelled);
        }
        if let Some(deadline) = self.deadline() {
            if Instant::now() >= deadline {
                return Err(Resource::Time);
            }
        }
        Ok(())
    }

    /// The wall-clock deadline, armed on first call (i.e. when the first
    /// governed run starts).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        let ms = self.inner.budget.max_millis?;
        Some(
            *self
                .inner
                .deadline
                .get_or_init(|| Instant::now() + Duration::from_millis(ms)),
        )
    }

    /// The active fault plan.
    pub(crate) fn fault(&self) -> &FaultPlan {
        &self.inner.fault
    }

    /// The byte ceiling, if any (the evaluator supplies the measurement —
    /// the governor does not know about databases).
    pub(crate) fn max_bytes(&self) -> Option<usize> {
        self.inner.budget.max_bytes
    }

    /// Round-boundary gate: called by the coordinating thread before each
    /// fixpoint round, while the database is consistent. Advances the
    /// shared round counter and reports, in a fixed order (fault,
    /// cancellation, deadline, round budget) so the tripping resource is
    /// deterministic, whether the next round may start.
    pub(crate) fn begin_round(&self) -> Result<(), Resource> {
        let started = self.inner.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.fault.fail_round == Some(started) {
            return Err(Resource::Fault);
        }
        if self.inner.cancel.is_cancelled() {
            return Err(Resource::Cancelled);
        }
        if let Some(deadline) = self.deadline() {
            // Amortized clock read: round 1 and every 8th boundary after.
            // Micro-round workloads (E4-style, thousands of sub-millisecond
            // rounds) pay measurably for a per-round `Instant::now()`, while
            // long rounds are already bounded by the exact probe-level
            // checks, so an 8-round poll stride keeps deadline response
            // tight at ~1/8 the cost.
            if started & (DEADLINE_ROUND_STRIDE - 1) == 1 && Instant::now() >= deadline {
                return Err(Resource::Time);
            }
        }
        if let Some(max) = self.inner.budget.max_rounds {
            if started > max {
                return Err(Resource::Rounds);
            }
        }
        Ok(())
    }

    /// Rolls the round counter back when a gated round never ran (the gate
    /// itself failed), so [`rounds_used`](Self::rounds_used) counts rounds
    /// that actually started.
    pub(crate) fn abort_round(&self) {
        self.inner.rounds.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reserves `n` deterministic global task indexes for a round and
    /// returns the first (coordinator only).
    pub(crate) fn reserve_tasks(&self, n: usize) -> usize {
        self.inner.task_base.fetch_add(n, Ordering::Relaxed)
    }

    /// Records one committed derived row; `false` means the row budget is
    /// now exhausted (this row was the last one allowed) and the merge must
    /// stop (coordinator only, so the cut point is deterministic).
    pub(crate) fn note_row(&self) -> bool {
        let used = self.inner.rows.fetch_add(1, Ordering::Relaxed) + 1;
        match self.inner.budget.max_rows {
            None => true,
            Some(max) => used < max,
        }
    }

    /// The per-round probe-check context workers poll from the inner join
    /// loop.
    pub(crate) fn probe_guard<'a>(&'a self, abort: Option<&'a AtomicBool>) -> ProbeGuard<'a> {
        ProbeGuard {
            cancel: &self.inner.cancel,
            abort,
            deadline: self.deadline(),
            slow_probe: self.inner.fault.slow_probe,
        }
    }
}

/// Per-round view of the governor polled inside compiled join execution
/// (every [`PROBE_CHECK_INTERVAL`] probes): deadline, cancellation, and the
/// round's shared abort flag (set when a sibling worker already failed).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProbeGuard<'a> {
    cancel: &'a CancelToken,
    /// The round's poison flag under parallel execution: when a sibling
    /// task fails, everyone else stops at the next check instead of
    /// finishing work whose round is already doomed.
    abort: Option<&'a AtomicBool>,
    deadline: Option<Instant>,
    slow_probe: Option<u64>,
}

impl ProbeGuard<'_> {
    /// The probe-level check. `Err` aborts the current task; the round's
    /// buffer is then discarded by the evaluator, so a mid-round trip
    /// leaves the database in the last completed round.
    #[cold]
    pub(crate) fn check(&self) -> Result<(), Resource> {
        if let Some(us) = self.slow_probe {
            std::thread::sleep(Duration::from_micros(us));
        }
        if self.cancel.is_cancelled() {
            return Err(Resource::Cancelled);
        }
        if let Some(abort) = self.abort {
            if abort.load(Ordering::Relaxed) {
                // A sibling already failed; the specific resource is
                // recorded by whoever tripped first.
                return Err(Resource::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Resource::Time);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_knobs_and_ignores_junk() {
        let plan = FaultPlan::parse("panic_task:3, fail_round:2 ,slow_probe:1000");
        assert_eq!(plan.panic_task, Some(3));
        assert_eq!(plan.fail_round, Some(2));
        assert_eq!(plan.slow_probe, Some(1000));
        assert!(FaultPlan::parse("").is_inert());
        assert!(FaultPlan::parse("nonsense").is_inert());
        assert!(FaultPlan::parse("panic_task:notanumber").is_inert());
        assert!(FaultPlan::parse("unknown_knob:7").is_inert());
    }

    #[test]
    fn fault_plan_parses_io_knobs() {
        let plan =
            FaultPlan::parse("torn_write:4,short_read:2, fsync_fail:1 ,crash_after_record:9");
        assert_eq!(plan.torn_write, Some(4));
        assert_eq!(plan.short_read, Some(2));
        assert_eq!(plan.fsync_fail, Some(1));
        assert_eq!(plan.crash_after_record, Some(9));
        assert!(plan.panic_task.is_none());
    }

    #[test]
    fn fault_plan_parse_edge_cases_skip_without_disarming_the_rest() {
        // A malformed knob in the middle must not swallow its neighbours.
        let plan = FaultPlan::parse("torn_write:abc,fail_round:2,:,7,fsync_fail:-1,short_read:3");
        assert_eq!(plan.fail_round, Some(2));
        assert_eq!(plan.short_read, Some(3));
        assert!(plan.torn_write.is_none(), "non-numeric count is skipped");
        assert!(plan.fsync_fail.is_none(), "negative count is skipped");
        // Empty fragments (trailing commas) are not worth a warning.
        assert_eq!(
            FaultPlan::parse("slow_probe:5,,").slow_probe,
            Some(5),
            "empty fragments are ignored"
        );
        // Whitespace-heavy but well-formed input still parses.
        assert_eq!(
            FaultPlan::parse("  crash_after_record : 12  ").crash_after_record,
            Some(12)
        );
    }

    #[test]
    fn cancel_token_is_shared_through_clones() {
        let gov = Governor::default();
        let token = gov.cancel_token();
        let clone = gov.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.clear();
        assert!(!gov.is_cancelled());
    }

    #[test]
    fn round_gate_orders_resources_deterministically() {
        let gov =
            Governor::new(Budget::unlimited().with_max_rounds(2)).with_faults(FaultPlan::default());
        assert_eq!(gov.begin_round(), Ok(()));
        assert_eq!(gov.begin_round(), Ok(()));
        assert_eq!(gov.begin_round(), Err(Resource::Rounds));
        // Cancellation outranks the round budget.
        gov.cancel();
        assert_eq!(gov.begin_round(), Err(Resource::Cancelled));
    }

    #[test]
    fn fail_round_fault_trips_exactly_once_at_its_round() {
        let gov = Governor::default().with_faults(FaultPlan::parse("fail_round:2"));
        assert_eq!(gov.begin_round(), Ok(()));
        assert_eq!(gov.begin_round(), Err(Resource::Fault));
        assert_eq!(gov.begin_round(), Ok(()));
    }

    #[test]
    fn row_budget_counts_across_runs() {
        let gov = Governor::new(Budget::unlimited().with_max_rows(3));
        assert!(gov.note_row());
        assert!(gov.note_row());
        assert!(!gov.note_row()); // the third row consumes the budget
        assert_eq!(gov.rows_used(), 3);
    }

    #[test]
    fn deadline_arms_once_and_trips() {
        let gov = Governor::new(Budget::unlimited().with_max_millis(0));
        let d1 = gov.deadline().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(gov.deadline(), Some(d1), "deadline must not re-arm");
        assert_eq!(gov.begin_round(), Err(Resource::Time));
    }

    #[test]
    fn errors_render_for_humans() {
        let e = EvalError::BudgetExhausted {
            resource: Resource::Rows,
            partial: EvalStats {
                rounds: 2,
                derived: 10,
                ..EvalStats::default()
            },
        };
        assert_eq!(
            e.to_string(),
            "evaluation truncated by derived-row budget after 10 derived row(s) in 2 round(s)"
        );
        let p = EvalError::WorkerPanicked {
            task: 7,
            payload: "boom".into(),
        };
        assert_eq!(p.to_string(), "evaluation task 7 panicked: boom");
    }
}
