//! Incremental retraction: delete/update as a first-class operation.
//!
//! [`Database::retract_fact`] removes one asserted (base) fact and repairs
//! every derived consequence in work proportional to the affected
//! derivation cone, not the database. The algorithm is the classic
//! delete-and-rederive (DRed) split, specialized per stratum:
//!
//! 1. **Over-delete.** Starting from the target row, a worklist pass finds
//!    every derived row with at least one derivation through an
//!    already-marked row. The pass reuses the forward evaluator's
//!    *delta-outermost* compiled programs verbatim — each BFS wave of
//!    marked rows is grouped by predicate and fed through
//!    [`JoinProgram::execute_rows`] as one batched negative delta at each
//!    body position that can consume it — over the *pre-deletion*
//!    database, so the marked set is the standard DRed over-approximation.
//!    Rows whose asserted bit is set are never marked: a base fact
//!    supports itself. Nothing is mutated until discovery completes; then
//!    every marked row is tombstoned in discovery order (RowIds survive,
//!    see [`Relation`] tombstoning).
//! 2. **Re-derive.** Marked rows are revisited bottom-up by stratum
//!    (Tarjan SCCs of the predicate dependency graph, emitted
//!    dependencies-first) and restored — same arena slot, same RowId — if
//!    an alternative derivation survives in the now-live database. The
//!    check is a *head-bound* body match: the deleted tuple binds the
//!    rule head, and the bindings flow through the body via indexed
//!    selects — the same demand-driven bounding the magic-set rewrite
//!    performs, specialized to a fully-bound head, so the pass touches
//!    only the cone. Non-recursive strata get the counting treatment
//!    (exact surviving-support counts, one pass suffices because lower
//!    strata are already settled); recursive SCCs use an existence check
//!    inside a fixpoint loop, because support counts are unsound under
//!    recursion (two tombstoned rows can count each other as support).
//!
//! Determinism: both passes run sequentially on the calling thread and
//! consult only deterministic state, so the deleted/restored sequences —
//! and with them RowIds, stats, and dumps — are byte-identical at any
//! thread count. A retract-then-resolve database dumps identically to one
//! built from scratch without the fact (the differential oracle in
//! `tests/fuzz_scenarios.rs`).
//!
//! Governance: both passes poll [`Governor::checkpoint`] (cancellation +
//! deadline) at probe granularity. A trip rolls the retraction back —
//! every still-tombstoned row is revived in place and the target's
//! asserted bit is restored — so an aborted retraction leaves the
//! database exactly as it was: the completed-round prefix contract,
//! where the "round" is the whole retraction.

use crate::engine::{DeltaPlan, EvalStats, IncrementalEval};
use crate::governor::{EvalError, Governor, Resource};
use crate::program::HeadSlot;
use crate::rel::{Database, RowId};
use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, FxHashSet, Pred, Var};

/// Poll stride for [`Governor::checkpoint`] inside the retraction passes.
const RETRACT_CHECK_MASK: usize = 0x3FF;

/// What one [`Database::retract_fact`] call did.
#[derive(Clone, Debug, Default)]
pub struct RetractOutcome {
    /// Whether the target was present as an asserted fact. `false` means
    /// the database was not touched (retracting a derived-only row is
    /// refused: rules, not assertions, maintain it).
    pub found: bool,
    /// Every tombstoned row — the target first, then the over-deleted
    /// cone in discovery order. Rows later restored by the re-derive pass
    /// still appear here; the WAL replays both lists to reproduce RowIds.
    pub deleted: Vec<(Pred, Box<[Cst]>)>,
    /// Rows the re-derive pass restored (an alternative derivation
    /// survived), in restoration order.
    pub restored: Vec<(Pred, Box<[Cst]>)>,
    /// Work counters: `retractions` = tombstoned rows, `rederived` =
    /// restored rows, plus the probes both passes performed.
    pub stats: EvalStats,
}

impl RetractOutcome {
    /// The rows that are gone for good: `deleted` minus `restored`, in
    /// deletion order. This is the recomputed cone the serving layer's
    /// cache patcher inspects.
    pub fn net_deleted(&self) -> Vec<(Pred, &[Cst])> {
        let restored: FxHashSet<(Pred, &[Cst])> = self
            .restored
            .iter()
            .map(|(p, t)| (*p, t.as_ref()))
            .collect();
        self.deleted
            .iter()
            .map(|(p, t)| (*p, t.as_ref()))
            .filter(|k| !restored.contains(k))
            .collect()
    }
}

/// One tombstoned row, tracked with its (stable) id for restore/rollback.
struct DeletedRow {
    pred: Pred,
    id: RowId,
    tuple: Box<[Cst]>,
    restored: bool,
}

impl Database {
    /// Retracts the asserted fact `p(t)` and incrementally repairs every
    /// derived consequence (see the module docs). The database must be at
    /// the fixpoint of `rules`, and `plan` must be the [`DeltaPlan`] it
    /// was evaluated under; on return it is at the fixpoint of `rules`
    /// over the remaining asserted facts.
    pub fn retract_fact(
        &mut self,
        p: Pred,
        t: &[Cst],
        rules: &[Rule],
        plan: &DeltaPlan,
    ) -> RetractOutcome {
        self.retract_fact_governed(p, t, rules, plan, &Governor::default())
            .expect("ungoverned retraction cannot trip a budget")
    }

    /// [`Database::retract_fact`] under a [`Governor`]: cancellation and
    /// the wall-clock deadline are polled throughout both passes. On
    /// `Err` the retraction has been rolled back whole — every tombstone
    /// revived in place, the target's asserted bit restored — so the
    /// database is byte-identical to the pre-call state.
    pub fn retract_fact_governed(
        &mut self,
        p: Pred,
        t: &[Cst],
        rules: &[Rule],
        plan: &DeltaPlan,
        gov: &Governor,
    ) -> Result<RetractOutcome, EvalError> {
        let mut stats = EvalStats::default();
        let Some(rel) = self.relation(p) else {
            return Ok(RetractOutcome::default());
        };
        let Some(target) = rel.find(t) else {
            return Ok(RetractOutcome::default());
        };
        if !rel.is_asserted(target) {
            return Ok(RetractOutcome::default());
        }

        // Composite indexes the over-delete programs will probe. The
        // discovery pass then reads the database immutably, so the
        // indexes stay current for its whole duration.
        plan.ensure_indexes(self);

        // --- Pass 1: over-delete discovery (no mutation). --------------
        // `queue` doubles as the marked set's insertion order; `marked`
        // is the membership test. The queue is consumed in BFS *waves*:
        // each wave's rows are grouped by predicate and fed through the
        // delta-outermost programs as one batched negative delta per
        // (rule, position) — one `execute_rows` call per group instead of
        // one per marked row, which is where the per-row version spent
        // its time (register-file setup and program entry dominate a
        // one-row delta). Wave order + first-appearance grouping keeps
        // the discovery order deterministic and hash-map independent.
        let mut queue: Vec<(Pred, u32)> = vec![(p, target.0)];
        let mut marked: FxHashMap<Pred, FxHashSet<u32>> = FxHashMap::default();
        marked.entry(p).or_default().insert(target.0);
        let mut probes = 0usize;
        let mut candidates: Vec<(Pred, Box<[Cst]>)> = Vec::new();
        let mut by_pred: Vec<(Pred, Vec<u32>)> = Vec::new();
        let mut wave_start = 0usize;
        while wave_start < queue.len() {
            let wave_end = queue.len();
            if let Err(resource) = gov.checkpoint() {
                return Err(EvalError::BudgetExhausted {
                    resource,
                    partial: EvalStats::default(),
                });
            }
            for slot in by_pred.iter_mut() {
                slot.1.clear();
            }
            let mut live_groups = 0usize;
            for &(qp, qid) in &queue[wave_start..wave_end] {
                match by_pred[..live_groups].iter_mut().find(|(gp, _)| *gp == qp) {
                    Some((_, ids)) => ids.push(qid),
                    None => {
                        if live_groups < by_pred.len() {
                            by_pred[live_groups].0 = qp;
                            by_pred[live_groups].1.push(qid);
                        } else {
                            by_pred.push((qp, vec![qid]));
                        }
                        live_groups += 1;
                    }
                }
            }
            candidates.clear();
            for (qp, ids) in by_pred[..live_groups].iter() {
                for &(ri, ai) in plan.positions(*qp) {
                    let head_pred = rules[ri as usize].head.pred;
                    let prog = plan.program(ri, Some(ai));
                    let mut regs = crate::program::register_file_sized(prog.register_count());
                    let guard = gov.probe_guard(None);
                    let run = prog.execute_rows(
                        self,
                        ids,
                        &mut regs,
                        &guard,
                        &mut stats,
                        &mut |head: &[HeadSlot], regs: &[Cst]| {
                            let row: Box<[Cst]> = head
                                .iter()
                                .map(|s| match s {
                                    HeadSlot::Const(c) => *c,
                                    HeadSlot::Reg(r) => regs[*r as usize],
                                    HeadSlot::Unbound => {
                                        panic!("unsafe rule: head variable unbound")
                                    }
                                })
                                .collect();
                            candidates.push((head_pred, row));
                        },
                    );
                    if let Err(resource) = run {
                        return Err(EvalError::BudgetExhausted {
                            resource,
                            partial: EvalStats::default(),
                        });
                    }
                }
            }
            for (hp, ht) in candidates.drain(..) {
                let Some(hrel) = self.relation(hp) else {
                    continue;
                };
                let Some(hid) = hrel.find(&ht) else {
                    continue;
                };
                // A base fact supports itself: the assertion, not the
                // derivation we just invalidated, keeps it alive.
                if hrel.is_asserted(hid) {
                    continue;
                }
                if marked.entry(hp).or_default().insert(hid.0) {
                    queue.push((hp, hid.0));
                }
            }
            wave_start = wave_end;
        }

        // --- Tombstone the marked cone, in discovery order. -------------
        // From here on any early return must roll back; discovery alone
        // left the database untouched.
        let mut deleted: Vec<DeletedRow> = Vec::with_capacity(queue.len());
        {
            let rel = self.relation_mut(p, t.len());
            rel.set_asserted(target, false);
        }
        for &(dp, did) in &queue {
            let arity = self.relation(dp).map_or(0, |r| r.arity());
            let rel = self.relation_mut(dp, arity);
            let id = RowId(did);
            let tuple: Box<[Cst]> = rel.row(id).into();
            rel.retract_row(id);
            deleted.push(DeletedRow {
                pred: dp,
                id,
                tuple,
                restored: false,
            });
        }
        stats.retractions = deleted.len();
        let touched: Vec<Pred> = {
            let mut ps: Vec<Pred> = deleted.iter().map(|d| d.pred).collect();
            ps.dedup();
            ps
        };

        // --- Pass 2: re-derive, bottom-up by stratum. -------------------
        let graph = PredGraph::new(rules);
        let mut by_scc: Vec<Vec<usize>> = vec![Vec::new(); graph.sccs.len()];
        for (di, d) in deleted.iter().enumerate() {
            if let Some(&n) = graph.node.get(&d.pred) {
                by_scc[graph.scc_of[n]].push(di);
            }
            // Predicates no rule derives cannot be re-derived: the
            // target of a pure-EDB retraction simply stays deleted.
        }
        let mut heads: FxHashMap<Pred, Vec<usize>> = FxHashMap::default();
        for (ri, rule) in rules.iter().enumerate() {
            heads.entry(rule.head.pred).or_default().push(ri);
        }
        let empty_rules: Vec<usize> = Vec::new();
        let mut restore_seq: Vec<usize> = Vec::new();
        for (si, entries) in by_scc.iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            // Counting is only sound without recursion: in a cycle, two
            // tombstoned rows may each count the other's (dead)
            // derivation as support. Recursive SCCs therefore use an
            // existence check and loop to fixpoint — each restore can
            // re-enable a sibling.
            let recursive = graph.is_recursive(si);
            loop {
                let mut changed = false;
                for &di in entries {
                    if deleted[di].restored {
                        continue;
                    }
                    let d = &deleted[di];
                    let rs = heads.get(&d.pred).unwrap_or(&empty_rules);
                    let support = match support_count(
                        self,
                        rules,
                        rs,
                        &d.tuple,
                        !recursive,
                        gov,
                        &mut probes,
                        &mut stats,
                    ) {
                        Ok(n) => n,
                        Err(resource) => {
                            rollback(self, &deleted, p, t, target);
                            return Err(EvalError::BudgetExhausted {
                                resource,
                                partial: EvalStats::default(),
                            });
                        }
                    };
                    if support > 0 {
                        let arity = d.tuple.len();
                        let (dp, id) = (d.pred, d.id);
                        self.relation_mut(dp, arity).restore_row(id);
                        deleted[di].restored = true;
                        restore_seq.push(di);
                        changed = true;
                    }
                }
                if !recursive || !changed {
                    break;
                }
            }
        }

        // Skew statistics: deletion turned the insert-maintained
        // `max_bucket` high-water marks into upper bounds; re-derive them
        // exactly once tombstones pass the 25% threshold.
        for dp in touched {
            let arity = self.relation(dp).map_or(0, |r| r.arity());
            self.relation_mut(dp, arity).maybe_resketch();
        }

        let mut out = RetractOutcome {
            found: true,
            deleted: Vec::with_capacity(deleted.len()),
            restored: Vec::with_capacity(restore_seq.len()),
            stats,
        };
        // `restored` is in actual restoration order — the sequence the
        // WAL replays to revive the same slots.
        for di in restore_seq {
            out.restored
                .push((deleted[di].pred, deleted[di].tuple.clone()));
        }
        for d in deleted {
            out.deleted.push((d.pred, d.tuple));
        }
        out.stats.rederived = out.restored.len();
        Ok(out)
    }

    /// Replaces the asserted fact `p(old)` by `p(new)` in one maintenance
    /// step: retract `old` (with full DRed repair), then insert `new` and
    /// resume the fixpoint from just that one-row delta through `eval` —
    /// the evaluator's marks are primed at the post-retraction state, so
    /// the forward pass re-derives only the new fact's cone. `eval`'s
    /// governor budgets both halves; on `Err` from the retraction half
    /// the database is untouched, on `Err` from the forward half it holds
    /// the retraction plus a completed-round prefix of the re-derivation.
    pub fn update_fact(
        &mut self,
        p: Pred,
        old: &[Cst],
        new: &[Cst],
        rules: &[Rule],
        plan: &DeltaPlan,
        eval: &mut IncrementalEval,
    ) -> Result<RetractOutcome, EvalError> {
        let gov = eval.governor().clone();
        let mut out = self.retract_fact_governed(p, old, rules, plan, &gov)?;
        eval.prime_marks(self);
        self.insert(p, new);
        let forward = eval.run(self, rules, plan)?;
        out.stats.absorb(forward);
        Ok(out)
    }
}

/// Reverts a partially-applied retraction: revives every still-tombstoned
/// row of the cone in place and restores the target's asserted bit.
fn rollback(db: &mut Database, deleted: &[DeletedRow], p: Pred, t: &[Cst], target: RowId) {
    for d in deleted {
        if !d.restored {
            let arity = d.tuple.len();
            db.relation_mut(d.pred, arity).restore_row(d.id);
        }
    }
    db.relation_mut(p, t.len()).set_asserted(target, true);
}

/// How many derivations of `tuple` survive in the live database, via the
/// head-bound body match described in the module docs. `count_all = false`
/// stops at the first (existence check, for recursive SCCs).
#[allow(clippy::too_many_arguments)]
fn support_count(
    db: &Database,
    rules: &[Rule],
    head_rules: &[usize],
    tuple: &[Cst],
    count_all: bool,
    gov: &Governor,
    probes: &mut usize,
    stats: &mut EvalStats,
) -> Result<usize, Resource> {
    let mut total = 0usize;
    let mut subst: FxHashMap<Var, Cst> = FxHashMap::default();
    'rules: for &ri in head_rules {
        let rule = &rules[ri];
        if rule.head.args.len() != tuple.len() {
            continue;
        }
        subst.clear();
        for (arg, &c) in rule.head.args.iter().zip(tuple) {
            match arg {
                Term::Const(k) => {
                    if *k != c {
                        continue 'rules;
                    }
                }
                Term::Var(v) => match subst.get(v) {
                    Some(&b) if b != c => continue 'rules,
                    Some(_) => {}
                    None => {
                        subst.insert(*v, c);
                    }
                },
            }
        }
        debug_assert!(
            rule.body.len() < 64,
            "body atom count exceeds the match mask"
        );
        let all = (1u64 << rule.body.len()) - 1;
        total += match_body(
            db, &rule.body, all, &mut subst, count_all, gov, probes, stats,
        )?;
        if !count_all && total > 0 {
            return Ok(total);
        }
    }
    Ok(total)
}

/// Counts satisfying assignments of the atoms of `body` whose bit is set
/// in `remaining`, under `subst`, over the live database. Atoms are
/// matched cheapest-first: at every step the pass picks the remaining
/// atom with the smallest expected candidate set under the current
/// bindings — a fully-bound atom (O(1) dedup-hash membership) beats any
/// partially-bound one, and among those the shortest per-column index
/// bucket wins (ties broken by body position, so the order is
/// deterministic). Static body order would walk an O(chain)-long bucket
/// for the recursive atom of a linear rule before the selective EDB atom
/// bound it down to one row. Early-exits after the first assignment when
/// `count_all` is false.
#[allow(clippy::too_many_arguments)]
fn match_body(
    db: &Database,
    body: &[Atom],
    remaining: u64,
    subst: &mut FxHashMap<Var, Cst>,
    count_all: bool,
    gov: &Governor,
    probes: &mut usize,
    stats: &mut EvalStats,
) -> Result<usize, Resource> {
    if remaining == 0 {
        return Ok(1);
    }
    // Pick the cheapest remaining atom under the current bindings.
    let mut best_ai = usize::MAX;
    let mut best_cost = usize::MAX;
    let mut best_pattern: Vec<Option<Cst>> = Vec::new();
    let mut pattern: Vec<Option<Cst>> = Vec::new();
    let mut bits = remaining;
    while bits != 0 {
        let ai = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let atom = &body[ai];
        let Some(rel) = db.relation(atom.pred) else {
            // An atom over an absent relation can never match, so the
            // whole remainder has no assignment.
            return Ok(0);
        };
        if rel.arity() != atom.args.len() {
            return Ok(0);
        }
        pattern.clear();
        pattern.extend(atom.args.iter().map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => subst.get(v).copied(),
        }));
        let cost = if pattern.iter().all(Option::is_some) {
            0
        } else {
            let mut bucket = usize::MAX;
            for (col, slot) in pattern.iter().enumerate() {
                if let Some(c) = *slot {
                    bucket = bucket.min(rel.column_bucket(col, c).len());
                }
            }
            if bucket == usize::MAX {
                rel.live().max(1)
            } else {
                bucket.max(1)
            }
        };
        if cost < best_cost {
            best_cost = cost;
            best_ai = ai;
            std::mem::swap(&mut best_pattern, &mut pattern);
            if best_cost == 0 {
                break;
            }
        }
    }
    let atom = &body[best_ai];
    let rel = db.relation(atom.pred).expect("checked above");
    let rest = remaining & !(1u64 << best_ai);
    // Fully-bound atom: a dedup-hash membership check, not an
    // index-bucket walk.
    if best_cost == 0 {
        let key: Vec<Cst> = best_pattern.iter().map(|c| c.unwrap()).collect();
        *probes += 1;
        stats.join_probes += 1;
        if *probes & RETRACT_CHECK_MASK == 0 {
            gov.checkpoint()?;
        }
        if rel.contains(&key) {
            return match_body(db, body, rest, subst, count_all, gov, probes, stats);
        }
        return Ok(0);
    }
    let mut total = 0usize;
    let mut bound_here: Vec<Var> = Vec::new();
    for row in rel.select(&best_pattern) {
        *probes += 1;
        stats.join_probes += 1;
        if *probes & RETRACT_CHECK_MASK == 0 {
            gov.checkpoint()?;
        }
        bound_here.clear();
        let mut ok = true;
        for (arg, &c) in atom.args.iter().zip(row) {
            match arg {
                Term::Const(k) => {
                    if *k != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match subst.get(v) {
                    Some(&b) => {
                        if b != c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*v, c);
                        bound_here.push(*v);
                    }
                },
            }
        }
        if ok {
            total += match_body(db, body, rest, subst, count_all, gov, probes, stats)?;
        }
        for v in bound_here.drain(..) {
            subst.remove(&v);
        }
        if !count_all && total > 0 {
            return Ok(total);
        }
    }
    Ok(total)
}

/// The predicate dependency graph of a rule set (edge head → body pred),
/// with its Tarjan SCC condensation. SCCs are emitted dependencies-first
/// (Tarjan pops a component only after everything reachable from it), so
/// walking `sccs` in order is exactly the bottom-up stratum order the
/// re-derive pass needs. Node numbering follows first appearance in the
/// rule text, so the whole structure is deterministic.
struct PredGraph {
    node: FxHashMap<Pred, usize>,
    adj: Vec<Vec<usize>>,
    sccs: Vec<Vec<usize>>,
    scc_of: Vec<usize>,
}

impl PredGraph {
    fn new(rules: &[Rule]) -> PredGraph {
        let mut node: FxHashMap<Pred, usize> = FxHashMap::default();
        let mut order: Vec<Pred> = Vec::new();
        let mut intern = |p: Pred, order: &mut Vec<Pred>| -> usize {
            *node.entry(p).or_insert_with(|| {
                order.push(p);
                order.len() - 1
            })
        };
        let mut adj: Vec<Vec<usize>> = Vec::new();
        for rule in rules {
            let h = intern(rule.head.pred, &mut order);
            if adj.len() <= h {
                adj.resize_with(order.len(), Vec::new);
            }
            for atom in &rule.body {
                let b = intern(atom.pred, &mut order);
                if adj.len() < order.len() {
                    adj.resize_with(order.len(), Vec::new);
                }
                if !adj[h].contains(&b) {
                    adj[h].push(b);
                }
            }
        }
        adj.resize_with(order.len(), Vec::new);
        let (sccs, scc_of) = tarjan(&adj);
        PredGraph {
            node,
            adj,
            sccs,
            scc_of,
        }
    }

    /// Whether SCC `si` contains a cycle (size > 1, or a self-loop).
    fn is_recursive(&self, si: usize) -> bool {
        let scc = &self.sccs[si];
        scc.len() > 1 || scc.iter().any(|&n| self.adj[n].contains(&n))
    }
}

/// Iterative Tarjan over `adj`; returns the SCC list (emitted in reverse
/// topological order of the condensation: successors first) and each
/// node's SCC index.
fn tarjan(adj: &[Vec<usize>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    const UNSEEN: usize = usize::MAX;
    let n = adj.len();
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut counter = 0usize;
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == UNSEEN {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate;
    use crate::governor::Budget;
    use fundb_term::Interner;

    struct Fixture {
        i: Interner,
        edge: Pred,
        path: Pred,
        x: Var,
        y: Var,
        z: Var,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let z = Var(i.intern("z"));
        Fixture {
            i,
            edge,
            path,
            x,
            y,
            z,
        }
    }

    fn tc_rules(fx: &Fixture) -> Vec<Rule> {
        vec![
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])],
            ),
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.z)]),
                vec![
                    Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                    Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
                ],
            ),
        ]
    }

    fn nodes(fx: &mut Fixture, n: usize) -> Vec<Cst> {
        (0..=n)
            .map(|k| Cst(fx.i.intern(&format!("v{k}"))))
            .collect()
    }

    /// The differential oracle: retract-then-resolve must dump exactly
    /// like build-from-scratch-without-the-fact.
    fn assert_matches_rebuild(
        fx: &Fixture,
        rules: &[Rule],
        edges: &[(Cst, Cst)],
        gone: (Cst, Cst),
    ) {
        let plan = DeltaPlan::new(rules);
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert(fx.edge, &[a, b]);
        }
        evaluate(&mut db, rules).unwrap();
        let out = db.retract_fact(fx.edge, &[gone.0, gone.1], rules, &plan);
        assert!(out.found);
        assert_eq!(out.stats.retractions, out.deleted.len());
        assert_eq!(out.stats.rederived, out.restored.len());

        let mut scratch = Database::new();
        for &(a, b) in edges {
            if (a, b) != gone {
                scratch.insert(fx.edge, &[a, b]);
            }
        }
        evaluate(&mut scratch, rules).unwrap();
        assert_eq!(db.dump(&fx.i), scratch.dump(&fx.i));
    }

    #[test]
    fn retract_chain_edge_matches_rebuild() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let ns = nodes(&mut fx, 8);
        let edges: Vec<(Cst, Cst)> = ns.windows(2).map(|w| (w[0], w[1])).collect();
        // Severing the middle of the chain kills every path across it.
        let gone = edges[4];
        assert_matches_rebuild(&fx, &rules, &edges, gone);
    }

    #[test]
    fn alternative_derivation_survives_retraction() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 3);
        // a→b directly and a→c→b: Path(a,b) has two derivations.
        let (a, b, c) = (ns[0], ns[1], ns[2]);
        let edges = [(a, b), (a, c), (c, b)];
        let mut db = Database::new();
        for &(u, v) in &edges {
            db.insert(fx.edge, &[u, v]);
        }
        evaluate(&mut db, &rules).unwrap();
        let out = db.retract_fact(fx.edge, &[a, b], &rules, &plan);
        assert!(out.found);
        // Path(a,b) was over-deleted and re-derived through a→c→b.
        assert!(out.stats.rederived >= 1);
        assert!(db.relation(fx.path).unwrap().contains(&[a, b]));
        assert!(!db.relation(fx.edge).unwrap().contains(&[a, b]));
        assert_matches_rebuild(&fx, &rules, &edges, (a, b));
    }

    #[test]
    fn circular_support_dies_with_the_cycle() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let ns = nodes(&mut fx, 2);
        let (a, b) = (ns[0], ns[1]);
        // a→b→a: every Path pair is alive only through the cycle. DRed's
        // re-derive must not let Path(a,a)/Path(b,b) support each other
        // after Edge(a,b) goes — the counting shortcut would.
        let edges = [(a, b), (b, a)];
        assert_matches_rebuild(&fx, &rules, &edges, (a, b));
    }

    #[test]
    fn retracting_missing_or_derived_rows_is_refused() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 3);
        let mut db = Database::new();
        for w in ns.windows(2) {
            db.insert(fx.edge, &[w[0], w[1]]);
        }
        evaluate(&mut db, &rules).unwrap();
        let before = db.dump(&fx.i);
        // Absent fact.
        let out = db.retract_fact(fx.edge, &[ns[2], ns[0]], &rules, &plan);
        assert!(!out.found);
        // Derived-only row: rules maintain it, the assertion does not.
        let out = db.retract_fact(fx.path, &[ns[0], ns[2]], &rules, &plan);
        assert!(!out.found);
        assert_eq!(db.dump(&fx.i), before);
    }

    #[test]
    fn cancelled_retraction_leaves_database_untouched() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 6);
        let mut db = Database::new();
        for w in ns.windows(2) {
            db.insert(fx.edge, &[w[0], w[1]]);
        }
        evaluate(&mut db, &rules).unwrap();
        let before = db.dump(&fx.i);
        let gov = Governor::default();
        gov.cancel();
        let err = db
            .retract_fact_governed(fx.edge, &[ns[3], ns[4]], &rules, &plan, &gov)
            .unwrap_err();
        assert!(matches!(
            err,
            EvalError::BudgetExhausted {
                resource: Resource::Cancelled,
                ..
            }
        ));
        assert_eq!(db.dump(&fx.i), before);
    }

    #[test]
    fn deadline_mid_rederive_rolls_back_whole() {
        // Force the trip *after* tombstoning by arming a 0ms deadline:
        // discovery polls `checkpoint` per queue row, so the very first
        // poll trips — before any mutation — and the database must be
        // byte-identical afterwards. (The re-derive rollback path is
        // exercised through the public contract: pre-state restored.)
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 6);
        let mut db = Database::new();
        for w in ns.windows(2) {
            db.insert(fx.edge, &[w[0], w[1]]);
        }
        evaluate(&mut db, &rules).unwrap();
        let before = db.dump(&fx.i);
        let gov = Governor::new(Budget::unlimited().with_max_millis(0));
        let err = db
            .retract_fact_governed(fx.edge, &[ns[2], ns[3]], &rules, &plan, &gov)
            .unwrap_err();
        assert!(matches!(err, EvalError::BudgetExhausted { .. }));
        assert_eq!(db.dump(&fx.i), before);
    }

    #[test]
    fn update_fact_matches_rebuild() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 6);
        let mut db = Database::new();
        for w in ns.windows(2) {
            db.insert(fx.edge, &[w[0], w[1]]);
        }
        let mut eval = IncrementalEval::new();
        eval.run(&mut db, &rules, &plan).unwrap();
        // Re-route v2→v3 to v2→v5: the chain gains a shortcut and loses
        // a link.
        let out = db
            .update_fact(
                fx.edge,
                &[ns[2], ns[3]],
                &[ns[2], ns[5]],
                &rules,
                &plan,
                &mut eval,
            )
            .unwrap();
        assert!(out.found);

        let mut scratch = Database::new();
        for w in ns.windows(2) {
            if (w[0], w[1]) != (ns[2], ns[3]) {
                scratch.insert(fx.edge, &[w[0], w[1]]);
            }
        }
        scratch.insert(fx.edge, &[ns[2], ns[5]]);
        evaluate(&mut scratch, &rules).unwrap();
        assert_eq!(db.dump(&fx.i), scratch.dump(&fx.i));
    }

    #[test]
    fn repeated_churn_stays_consistent() {
        // Retract and re-insert the same edge repeatedly: slot reuse,
        // epoch bumps, and delta resumption must keep agreeing with a
        // from-scratch build at every step.
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 5);
        let mut db = Database::new();
        for w in ns.windows(2) {
            db.insert(fx.edge, &[w[0], w[1]]);
        }
        let mut eval = IncrementalEval::new();
        eval.run(&mut db, &rules, &plan).unwrap();
        for _ in 0..3 {
            let out = db.retract_fact(fx.edge, &[ns[2], ns[3]], &rules, &plan);
            assert!(out.found);
            db.insert(fx.edge, &[ns[2], ns[3]]);
            eval.run(&mut db, &rules, &plan).unwrap();
            let mut scratch = Database::new();
            for w in ns.windows(2) {
                scratch.insert(fx.edge, &[w[0], w[1]]);
            }
            evaluate(&mut scratch, &rules).unwrap();
            assert_eq!(db.dump(&fx.i), scratch.dump(&fx.i));
        }
    }

    #[test]
    fn retraction_is_thread_count_invariant() {
        // Retraction itself is sequential; this pins the surrounding
        // contract — same dumps and stats when the *forward* evaluation
        // ran at different thread counts before the retraction.
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 10);
        let mut reference: Option<(Vec<String>, usize, usize)> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut db = Database::new();
            for w in ns.windows(2) {
                db.insert(fx.edge, &[w[0], w[1]]);
            }
            IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1)
                .run(&mut db, &rules, &plan)
                .unwrap();
            let out = db.retract_fact(fx.edge, &[ns[5], ns[6]], &rules, &plan);
            let key = (db.dump(&fx.i), out.stats.retractions, out.stats.rederived);
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(*r, key, "threads={threads}"),
            }
        }
    }

    #[test]
    fn net_deleted_excludes_restored_rows() {
        let mut fx = fixture();
        let rules = tc_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let ns = nodes(&mut fx, 3);
        let (a, b, c) = (ns[0], ns[1], ns[2]);
        let mut db = Database::new();
        for &(u, v) in &[(a, b), (a, c), (c, b)] {
            db.insert(fx.edge, &[u, v]);
        }
        evaluate(&mut db, &rules).unwrap();
        let out = db.retract_fact(fx.edge, &[a, b], &rules, &plan);
        let net = out.net_deleted();
        assert!(net.contains(&(fx.edge, &[a, b][..])));
        assert!(!net.contains(&(fx.path, &[a, b][..])));
    }
}
